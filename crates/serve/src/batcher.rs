//! The generic micro-batching server: bounded queue, coalescing scheduler,
//! worker pool, per-request handles, backpressure and graceful shutdown.
//!
//! The data path is deliberately simple — one `Mutex<VecDeque>` plus two
//! `Condvar`s — because the expensive work (the batch computation itself)
//! happens outside the lock, on the worker that drained the batch. Requests
//! never reorder relative to their submission within a worker's batch, and
//! every request's result depends only on its own payload, so serving adds
//! latency policy (coalescing) without changing any numeric result.
//!
//! The pool is **supervised**: every worker carries a death watch, and a
//! supervisor thread resolves a dead worker's in-flight requests with
//! [`ServeError::WorkerDied`] and respawns the worker
//! ([`ServerStats::workers_respawned`]), so a single runaway batch can never
//! silently halve the pool or strand a handle. Engine panics are additionally
//! contained per batch by default ([`BatchConfig::contain_panics`]), in which
//! case the worker survives and only the panicking batch resolves with an
//! error.

use crate::{recover, ServeError, ServeResult};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum number of requests coalesced into one engine call.
    pub max_batch: usize,
    /// How long the scheduler waits after picking up the first pending request
    /// for more requests to arrive before dispatching a partial batch.
    /// `Duration::ZERO` dispatches immediately with whatever is queued.
    pub linger: Duration,
    /// Bounded submission-queue capacity. When full, [`Server::submit`] blocks
    /// and [`Server::try_submit`] returns [`TrySubmitError::Full`].
    pub queue_capacity: usize,
    /// Number of batch worker threads draining the queue. Each worker
    /// processes one batch at a time; the engine's own (frame/row) parallelism
    /// happens inside the batch call.
    pub workers: usize,
    /// Latency-priority mode: default per-request deadline applied by
    /// [`Server::submit`] / [`Server::try_submit`] (individual requests may
    /// override it via [`Server::submit_with_deadline`]). `None` (the
    /// default) disables deadlines entirely.
    ///
    /// A deadline bounds **time to dispatch**: the scheduler cuts a lingering
    /// batch early when the oldest queued request's slack runs out, and a
    /// request still queued when its deadline passes is dropped from its
    /// batch and resolved with [`ServeError::DeadlineExceeded`] instead of
    /// blocking younger requests. A request already handed to the engine
    /// always completes normally.
    pub deadline: Option<Duration>,
    /// Whether an engine panic is contained at the *batch* boundary (the
    /// default): the panicking batch resolves with
    /// [`ServeError::WorkerDied`] and the worker thread survives. With
    /// `false` the panic unwinds the worker instead, exercising the
    /// supervisor path: the dead worker's in-flight requests are resolved by
    /// the supervisor and the worker is respawned
    /// ([`ServerStats::workers_respawned`]).
    pub contain_panics: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            linger: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 1,
            deadline: None,
            contain_panics: true,
        }
    }
}

impl BatchConfig {
    /// Validates the configuration (all knobs must be ≥ 1 requests/workers).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> ServeResult<()> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig("queue_capacity must be >= 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be >= 1".into()));
        }
        Ok(())
    }
}

/// A pluggable batch computation for a [`Server`].
///
/// `process_batch` receives the coalesced requests in submission order and
/// must return exactly one result per request, in the same order. The engine
/// is shared by all workers, so it must be `Sync`; the beamformer engines in
/// [`crate::service`] satisfy this with plain immutable data.
pub trait BatchEngine: Send + Sync + 'static {
    /// Payload submitted per request (e.g. one `ChannelData` frame).
    type Request: Send + 'static;
    /// Result resolved per request (e.g. one `IqImage`).
    type Response: Send + 'static;

    /// Processes one coalesced batch, returning one result per request in
    /// request order.
    fn process_batch(&self, batch: Vec<Self::Request>) -> Vec<ServeResult<Self::Response>>;

    /// Hook invoked once per request dropped from a batch because its
    /// deadline expired before dispatch (the request's handle resolves with
    /// [`ServeError::DeadlineExceeded`] separately). The router feeds its
    /// load-shedding ladder from this signal. Must be cheap and non-blocking;
    /// a panic here is swallowed. The default does nothing.
    fn on_expired(&self, _request: &Self::Request) {}
}

/// Adapter implementing [`BatchEngine`] from a plain closure
/// (see [`Server::from_fn`]).
pub struct FnEngine<I, O, F> {
    f: F,
    _marker: std::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F> BatchEngine for FnEngine<I, O, F>
where
    I: Send + 'static,
    O: Send + 'static,
    F: Fn(Vec<I>) -> Vec<ServeResult<O>> + Send + Sync + 'static,
{
    type Request = I;
    type Response = O;

    fn process_batch(&self, batch: Vec<I>) -> Vec<ServeResult<O>> {
        (self.f)(batch)
    }
}

/// Fixed-bucket end-to-end latency histogram.
///
/// Bucket `i` counts requests whose submit→response latency fell in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 additionally absorbs sub-µs
/// latencies), so percentile estimates carry at most one octave of
/// quantisation error. The storage is a fixed inline array — recording is two
/// integer increments with **no allocation on the hot path** — and the top
/// bucket saturates at ≈ 71 minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; Self::NUM_BUCKETS],
    count: u64,
    total_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: [0; Self::NUM_BUCKETS], count: 0, total_micros: 0 }
    }
}

impl LatencyHistogram {
    /// Number of power-of-two-microsecond buckets.
    pub const NUM_BUCKETS: usize = 32;

    /// Records one request latency.
    pub fn record(&mut self, latency: Duration) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = if micros <= 1 { 0 } else { (63 - micros.leading_zeros()) as usize }.min(Self::NUM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_micros = self.total_micros.saturating_add(micros);
    }

    /// Number of recorded latencies.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean recorded latency ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.total_micros / self.count)
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 < q <= 1.0`): the upper
    /// edge of the bucket containing the rank-`⌈q·count⌉` latency. Returns
    /// [`Duration::ZERO`] when nothing was recorded.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        Duration::from_micros(1u64 << Self::NUM_BUCKETS)
    }

    /// Median latency estimate (see [`LatencyHistogram::percentile`]).
    pub fn p50(&self) -> Duration {
        self.percentile(0.50)
    }

    /// Losslessly folds another histogram into this one: afterwards every
    /// count/mean/percentile query answers as if each latency recorded in
    /// either histogram had been recorded here. The scenario benchmark
    /// harness merges the per-process histograms of independent load agents
    /// this way.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_micros = self.total_micros.saturating_add(other.total_micros);
    }

    /// The raw per-bucket counts, bucket `i` covering latencies in
    /// `(2^i, 2^(i+1)]` microseconds (bucket 0 also holds 0–1 µs, the last
    /// bucket everything above its lower edge).
    pub fn bucket_counts(&self) -> &[u64; Self::NUM_BUCKETS] {
        &self.buckets
    }

    /// Upper edge of bucket `i` as reported by [`LatencyHistogram::percentile`].
    pub fn bucket_upper_bound(index: usize) -> Duration {
        assert!(index < Self::NUM_BUCKETS, "bucket index out of range");
        Duration::from_micros(1u64 << (index + 1))
    }

    /// Iterates the non-empty buckets as `(upper_bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (Duration, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper_bound(i), n))
    }

    /// Total recorded microseconds (the numerator of
    /// [`LatencyHistogram::mean`]); exposed so a histogram can be shipped
    /// across a process boundary and rebuilt losslessly with
    /// [`LatencyHistogram::from_parts`].
    pub fn total_micros(&self) -> u64 {
        self.total_micros
    }

    /// Rebuilds a histogram from wire parts: per-bucket counts plus the
    /// total recorded microseconds. The count is recomputed from the
    /// buckets, so `from_parts(h.bucket_counts().clone(), h.total_micros())`
    /// equals `h` for any histogram `h`.
    pub fn from_parts(buckets: [u64; Self::NUM_BUCKETS], total_micros: u64) -> Self {
        let count = buckets.iter().sum();
        Self { buckets, count, total_micros }
    }

    /// 99th-percentile latency estimate (see
    /// [`LatencyHistogram::percentile`]).
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }
}

/// Counters describing what a server has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests whose handle has been fulfilled (success or error).
    pub completed: u64,
    /// Engine calls (coalesced batches) executed.
    pub batches: u64,
    /// Largest batch dispatched in one engine call.
    pub max_batch_observed: usize,
    /// Requests whose deadline expired while queued; they resolved with
    /// [`ServeError::DeadlineExceeded`] without reaching the engine (counted
    /// in [`ServerStats::completed`] too — their handles were fulfilled).
    pub deadline_expired: u64,
    /// End-to-end (submit → response) latency distribution of requests the
    /// engine actually served, including queueing, linger and engine time
    /// (deadline-expired requests are excluded).
    pub latency: LatencyHistogram,
    /// Workers that died mid-batch and were respawned by the supervisor
    /// (their in-flight requests resolved with [`ServeError::WorkerDied`]).
    pub workers_respawned: u64,
}

impl ServerStats {
    /// Mean requests per engine call so far (0 when no batch ran yet).
    /// Deadline-expired requests never reach an engine call, so they are
    /// excluded.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed - self.deadline_expired) as f64 / self.batches as f64
        }
    }
}

enum SlotState<O> {
    Pending,
    Done(ServeResult<O>),
    Taken,
}

struct Slot<O> {
    state: Mutex<SlotState<O>>,
    ready: Condvar,
}

impl<O> Slot<O> {
    fn new() -> Arc<Self> {
        Arc::new(Self { state: Mutex::new(SlotState::Pending), ready: Condvar::new() })
    }

    fn fulfill(&self, result: ServeResult<O>) {
        let mut state = recover(self.state.lock());
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Done(result);
            self.ready.notify_all();
        }
    }
}

/// The receiving end of one submitted request: a blocking future.
///
/// Obtained from [`Server::submit`] / [`Server::try_submit`]; resolves when
/// the worker that drained the request's batch finishes. Handles stay valid
/// across [`Server::shutdown`] — shutdown drains the queue, so every accepted
/// request is fulfilled before the workers exit.
pub struct ResponseHandle<O> {
    slot: Arc<Slot<O>>,
}

impl<O> ResponseHandle<O> {
    /// Blocks until the request completes and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the result was already consumed by a successful
    /// [`ResponseHandle::try_take`] — take a handle out of any polling sweep
    /// once `try_take` has returned `Some` for it.
    pub fn wait(self) -> ServeResult<O> {
        let mut state = recover(self.slot.state.lock());
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Done(result) => return result,
                SlotState::Taken => panic!("ResponseHandle polled after the result was taken"),
                SlotState::Pending => {
                    *state = SlotState::Pending;
                    // Waiting is sound: engine panics resolve the batch with
                    // an error (contained per batch or via the supervisor's
                    // WorkerDied sweep), and shutdown drains the queue before
                    // the pool exits, so every accepted request is eventually
                    // fulfilled.
                    state = recover(self.slot.ready.wait(state));
                }
            }
        }
    }

    /// Non-blocking probe: `Some(result)` the first time it is called after
    /// the request completed, `None` while the request is still queued or in
    /// flight — and `None` again once the result has been consumed, so
    /// polling a set of handles in a loop is safe after some have resolved.
    pub fn try_take(&self) -> Option<ServeResult<O>> {
        let mut state = recover(self.slot.state.lock());
        match std::mem::replace(&mut *state, SlotState::Taken) {
            SlotState::Done(result) => Some(result),
            SlotState::Pending => {
                *state = SlotState::Pending;
                None
            }
            SlotState::Taken => None,
        }
    }

    /// Whether a result is currently available to take (`false` while the
    /// request is in flight and after the result has been consumed).
    pub fn is_ready(&self) -> bool {
        matches!(*recover(self.slot.state.lock()), SlotState::Done(_))
    }
}

/// Rejection from [`Server::submit`] / [`Server::try_submit`]; returns the
/// request to the caller so it can be retried, re-routed or shed instead of
/// being dropped.
#[derive(Debug)]
pub enum TrySubmitError<I> {
    /// The bounded queue is at capacity — backpressure; retry later. Never
    /// produced by the blocking [`Server::submit`], which waits instead.
    Full(I),
    /// The server no longer accepts requests.
    ShuttingDown(I),
}

impl<I> fmt::Display for TrySubmitError<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_serve_error().fmt(f)
    }
}

impl<I: fmt::Debug> std::error::Error for TrySubmitError<I> {}

impl<I> TrySubmitError<I> {
    /// Recovers the rejected request.
    pub fn into_request(self) -> I {
        match self {
            Self::Full(request) | Self::ShuttingDown(request) => request,
        }
    }

    /// The equivalent [`ServeError`] (dropping the payload).
    pub fn as_serve_error(&self) -> ServeError {
        match self {
            Self::Full(_) => ServeError::QueueFull,
            Self::ShuttingDown(_) => ServeError::ShuttingDown,
        }
    }
}

/// One queued request: payload, response slot and its timing metadata.
struct Pending<I, O> {
    request: I,
    slot: Arc<Slot<O>>,
    submitted_at: Instant,
    /// Absolute dispatch deadline (`None` = never expires).
    deadline: Option<Instant>,
}

struct QueueState<I, O> {
    queue: VecDeque<Pending<I, O>>,
    shutting_down: bool,
    stats: ServerStats,
}

/// Earliest dispatch deadline among the queued requests, if any.
fn earliest_deadline<I, O>(queue: &VecDeque<Pending<I, O>>) -> Option<Instant> {
    queue.iter().filter_map(|p| p.deadline).min()
}

/// Worker-supervision bookkeeping: which workers are mid-batch with which
/// response slots, and which have died.
struct SupervisorPlane<O> {
    /// Per worker index: the response slots of the batch it is currently
    /// executing (`None` between batches). A worker that dies mid-batch
    /// leaves its entry set; the supervisor resolves those slots with
    /// [`ServeError::WorkerDied`].
    in_flight: Vec<Option<Vec<Arc<Slot<O>>>>>,
    /// Indices of workers whose death watch fired, awaiting the supervisor.
    dead: Vec<usize>,
    /// Set by [`Server::shutdown`] once the pool is fully joined; the
    /// supervisor exits after processing any remaining deaths.
    shutdown: bool,
}

struct Shared<I, O> {
    state: Mutex<QueueState<I, O>>,
    /// Signalled when a request is enqueued or shutdown begins (wakes workers).
    not_empty: Condvar,
    /// Signalled when queue space frees up (wakes blocked submitters).
    not_full: Condvar,
    supervisor: Mutex<SupervisorPlane<O>>,
    /// Signalled when a worker dies or supervisor shutdown begins.
    supervisor_wake: Condvar,
    /// Join handles of the live workers, indexed by worker; `None` while a
    /// slot's thread is being reaped/respawned (or after shutdown joined it).
    handles: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
}

/// Drop guard signalling the supervisor when a worker thread unwinds without
/// reaching its normal exit (`armed` is cleared on the normal path).
struct DeathWatch<I, O> {
    shared: Arc<Shared<I, O>>,
    index: usize,
    armed: bool,
}

impl<I, O> Drop for DeathWatch<I, O> {
    fn drop(&mut self) {
        if self.armed {
            recover(self.shared.supervisor.lock()).dead.push(self.index);
            self.shared.supervisor_wake.notify_all();
        }
    }
}

/// A synchronous streaming micro-batching server over a [`BatchEngine`].
///
/// See the [crate-level documentation](crate) for the architecture.
/// Construction spawns the worker pool; [`Server::shutdown`] (or dropping the
/// server) drains every accepted request and joins the workers.
///
/// ```
/// use serve::{BatchConfig, Server};
/// use std::time::Duration;
///
/// let server = Server::from_fn(
///     BatchConfig { max_batch: 4, linger: Duration::ZERO, ..BatchConfig::default() },
///     |batch: Vec<u32>| batch.into_iter().map(|v| Ok(v + 1)).collect(),
/// );
/// let handle = server.submit(9).unwrap();
/// assert_eq!(handle.wait(), Ok(10));
/// let stats = server.shutdown();
/// assert_eq!(stats.completed, 1);
/// ```
pub struct Server<E: BatchEngine> {
    shared: Arc<Shared<E::Request, E::Response>>,
    config: BatchConfig,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl<I, O, F> Server<FnEngine<I, O, F>>
where
    I: Send + 'static,
    O: Send + 'static,
    F: Fn(Vec<I>) -> Vec<ServeResult<O>> + Send + Sync + 'static,
{
    /// Builds a server whose engine is a plain closure mapping a batch of
    /// requests to one result per request (in order). Convenient for tests
    /// and custom pipelines; beamforming deployments use
    /// [`crate::service::BeamformEngine`].
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`BatchConfig`] (zero `max_batch`, capacity or
    /// workers).
    pub fn from_fn(config: BatchConfig, f: F) -> Self {
        Self::new(config, FnEngine { f, _marker: std::marker::PhantomData })
    }
}

impl<E: BatchEngine> Server<E> {
    /// Spawns the worker pool and returns the running server.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`BatchConfig`] (zero `max_batch`, capacity or
    /// workers).
    pub fn new(config: BatchConfig, engine: E) -> Self {
        config.validate().expect("invalid BatchConfig");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutting_down: false, stats: ServerStats::default() }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            supervisor: Mutex::new(SupervisorPlane {
                in_flight: (0..config.workers).map(|_| None).collect(),
                dead: Vec::new(),
                shutdown: false,
            }),
            supervisor_wake: Condvar::new(),
            handles: Mutex::new((0..config.workers).map(|_| None).collect()),
        });
        let engine = Arc::new(engine);
        {
            let mut handles = recover(shared.handles.lock());
            for index in 0..config.workers {
                handles[index] = Some(spawn_worker(&shared, &engine, &config, index));
            }
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            let engine = Arc::clone(&engine);
            let config = config.clone();
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared, &engine, &config))
                .expect("failed to spawn serve supervisor")
        };
        Self { shared, config, supervisor: Some(supervisor) }
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Submits a request, blocking while the bounded queue is full
    /// (backpressure). The request carries the configured default deadline
    /// ([`BatchConfig::deadline`]), if any.
    ///
    /// # Errors
    ///
    /// Returns [`TrySubmitError::ShuttingDown`] — carrying the request back to
    /// the caller for failover instead of dropping it — once
    /// [`Server::shutdown`] has begun.
    pub fn submit(&self, request: E::Request) -> Result<ResponseHandle<E::Response>, TrySubmitError<E::Request>> {
        self.enqueue(request, self.config.deadline, true)
    }

    /// [`Server::submit`] with an explicit per-request deadline overriding
    /// [`BatchConfig::deadline`]. The deadline is measured from submission:
    /// if the request is still queued `deadline` from now, it resolves with
    /// [`ServeError::DeadlineExceeded`] instead of being dispatched, and a
    /// lingering batch is cut early rather than letting the request's slack
    /// run out (see [`BatchConfig::deadline`] for the exact semantics).
    ///
    /// # Errors
    ///
    /// Same as [`Server::submit`].
    pub fn submit_with_deadline(
        &self,
        request: E::Request,
        deadline: Duration,
    ) -> Result<ResponseHandle<E::Response>, TrySubmitError<E::Request>> {
        self.enqueue(request, Some(deadline), true)
    }

    /// Non-blocking [`Server::submit`]: sheds load instead of waiting.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Full`] when the queue is at capacity,
    /// [`TrySubmitError::ShuttingDown`] after shutdown began — both return
    /// the request so the caller can retry or drop it.
    pub fn try_submit(&self, request: E::Request) -> Result<ResponseHandle<E::Response>, TrySubmitError<E::Request>> {
        self.enqueue(request, self.config.deadline, false)
    }

    /// Non-blocking [`Server::submit_with_deadline`].
    ///
    /// # Errors
    ///
    /// Same as [`Server::try_submit`].
    pub fn try_submit_with_deadline(
        &self,
        request: E::Request,
        deadline: Duration,
    ) -> Result<ResponseHandle<E::Response>, TrySubmitError<E::Request>> {
        self.enqueue(request, Some(deadline), false)
    }

    fn enqueue(
        &self,
        request: E::Request,
        deadline: Option<Duration>,
        block: bool,
    ) -> Result<ResponseHandle<E::Response>, TrySubmitError<E::Request>> {
        let mut state = recover(self.shared.state.lock());
        loop {
            if state.shutting_down {
                return Err(TrySubmitError::ShuttingDown(request));
            }
            if state.queue.len() < self.config.queue_capacity {
                break;
            }
            if !block {
                return Err(TrySubmitError::Full(request));
            }
            state = recover(self.shared.not_full.wait(state));
        }
        let slot = Slot::new();
        let submitted_at = Instant::now();
        state.queue.push_back(Pending {
            request,
            slot: Arc::clone(&slot),
            submitted_at,
            deadline: deadline.map(|d| submitted_at + d),
        });
        state.stats.submitted += 1;
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(ResponseHandle { slot })
    }

    /// Snapshot of the work counters.
    pub fn stats(&self) -> ServerStats {
        recover(self.shared.state.lock()).stats
    }

    /// Number of requests currently queued (not yet drained into a batch).
    pub fn queue_depth(&self) -> usize {
        recover(self.shared.state.lock()).queue.len()
    }

    /// Graceful shutdown: stops accepting new requests, lets the workers
    /// drain and fulfil every already-accepted request, joins the pool and
    /// returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        {
            let mut state = recover(self.shared.state.lock());
            state.shutting_down = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        // Join the pool. Loop through the handle table (instead of iterating
        // once) because the supervisor may still be reaping/respawning a
        // worker concurrently; a join failure is a worker death the
        // supervisor observes through the death watch, so it is not
        // propagated here.
        self.join_workers();
        // Pool drained; release the supervisor (it first finishes any death
        // still queued, resolving the dead worker's in-flight requests).
        {
            let mut plane = recover(self.shared.supervisor.lock());
            plane.shutdown = true;
        }
        self.shared.supervisor_wake.notify_all();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        // The supervisor may have respawned one last worker between the first
        // sweep and its exit; reap any straggler.
        self.join_workers();
        // Last resort: if the final worker died mid-drain with no supervisor
        // left to respawn it, its in-flight batch and the remaining queue
        // would strand their handles — resolve them with WorkerDied instead.
        let stranded: Vec<_> = {
            let mut plane = recover(self.shared.supervisor.lock());
            plane.in_flight.iter_mut().filter_map(Option::take).flatten().collect()
        };
        let queued: Vec<_> = recover(self.shared.state.lock()).queue.drain(..).collect();
        let resolved = (stranded.len() + queued.len()) as u64;
        for slot in &stranded {
            slot.fulfill(Err(ServeError::WorkerDied));
        }
        for pending in &queued {
            pending.slot.fulfill(Err(ServeError::WorkerDied));
        }
        if resolved > 0 {
            recover(self.shared.state.lock()).stats.completed += resolved;
        }
    }

    fn join_workers(&self) {
        loop {
            let handle = recover(self.shared.handles.lock()).iter_mut().find_map(Option::take);
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
    }
}

impl<E: BatchEngine> Drop for Server<E> {
    fn drop(&mut self) {
        if self.supervisor.is_some() && !std::thread::panicking() {
            self.stop();
        }
    }
}

fn spawn_worker<E: BatchEngine>(
    shared: &Arc<Shared<E::Request, E::Response>>,
    engine: &Arc<E>,
    config: &BatchConfig,
    index: usize,
) -> std::thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    let engine = Arc::clone(engine);
    let config = config.clone();
    std::thread::Builder::new()
        .name(format!("serve-worker-{index}"))
        .spawn(move || {
            let mut watch = DeathWatch { shared: Arc::clone(&shared), index, armed: true };
            worker_loop(&shared, engine.as_ref(), &config, index);
            watch.armed = false;
        })
        .expect("failed to spawn serve worker")
}

/// The supervisor: waits for worker deaths, resolves the dead worker's
/// in-flight requests with [`ServeError::WorkerDied`], reaps the thread and
/// respawns a replacement (unless the server is shutting down).
fn supervisor_loop<E: BatchEngine>(shared: &Arc<Shared<E::Request, E::Response>>, engine: &Arc<E>, config: &BatchConfig) {
    loop {
        let index = {
            let mut plane = recover(shared.supervisor.lock());
            loop {
                if let Some(index) = plane.dead.pop() {
                    break index;
                }
                if plane.shutdown {
                    return;
                }
                plane = recover(shared.supervisor_wake.wait(plane));
            }
        };
        // The worker died mid-batch (its normal exit disarms the watch):
        // resolve whatever it had in flight so no handle hangs.
        let orphans = recover(shared.supervisor.lock()).in_flight[index].take();
        if let Some(slots) = orphans {
            let count = slots.len() as u64;
            for slot in &slots {
                slot.fulfill(Err(ServeError::WorkerDied));
            }
            recover(shared.state.lock()).stats.completed += count;
        }
        // Reap the dead thread (shutdown may have raced us to the handle).
        let stale = recover(shared.handles.lock())[index].take();
        if let Some(handle) = stale {
            let _ = handle.join();
        }
        let shutting_down = recover(shared.state.lock()).shutting_down;
        if !shutting_down {
            let replacement = spawn_worker(shared, engine, config, index);
            recover(shared.handles.lock())[index] = Some(replacement);
            recover(shared.state.lock()).stats.workers_respawned += 1;
        }
    }
}

fn worker_loop<E: BatchEngine>(
    shared: &Shared<E::Request, E::Response>,
    engine: &E,
    config: &BatchConfig,
    index: usize,
) {
    loop {
        let (batch, expired) = {
            let mut state = recover(shared.state.lock());
            // Sleep until there is work or the server is shutting down.
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.shutting_down {
                    return;
                }
                state = recover(shared.not_empty.wait(state));
            }
            // Expiry reference point: a request times out only if its
            // deadline had already passed when this dispatch cycle began —
            // i.e. it spent a whole engine call (or longer) stuck in the
            // queue. A deadline that fires *during* the linger below cuts
            // the batch and the request dispatches immediately instead, so
            // the boundary between "cut early and serve" and "expire" is
            // never racy.
            let cycle_start = Instant::now();
            // Linger: give late arrivals a chance to coalesce into this batch.
            // Skipped once the batch is full, the queue is at capacity (no
            // further arrival is possible — submitters are parked on
            // `not_full`), or the server is draining for shutdown. In
            // latency-priority mode the wait is additionally capped by the
            // oldest queued request's deadline: once its slack runs out the
            // batch is cut early and dispatched with whatever coalesced.
            if !config.linger.is_zero() {
                let linger_until = Instant::now() + config.linger;
                while state.queue.len() < config.max_batch.min(config.queue_capacity) && !state.shutting_down {
                    let now = Instant::now();
                    let cut = earliest_deadline(&state.queue).map_or(linger_until, |d| d.min(linger_until));
                    if now >= cut {
                        break;
                    }
                    let (next, timeout) = recover(shared.not_empty.wait_timeout(state, cut - now));
                    state = next;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            // Drain up to max_batch live requests; requests whose deadline
            // passed before this cycle began are pulled aside to time out
            // instead of occupying batch slots.
            let mut batch = Vec::new();
            let mut expired = Vec::new();
            while batch.len() < config.max_batch {
                match state.queue.front() {
                    Some(p) if p.deadline.is_some_and(|d| cycle_start >= d) => {
                        expired.push(state.queue.pop_front().expect("front checked"));
                    }
                    Some(_) => batch.push(state.queue.pop_front().expect("front checked")),
                    None => break,
                }
            }
            if batch.is_empty() && expired.is_empty() {
                // Another worker drained the queue while this one lingered
                // (the linger wait releases the lock); go back to sleep
                // instead of dispatching an empty batch.
                continue;
            }
            if !batch.is_empty() {
                state.stats.batches += 1;
                state.stats.max_batch_observed = state.stats.max_batch_observed.max(batch.len());
            }
            state.stats.deadline_expired += expired.len() as u64;
            state.stats.completed += expired.len() as u64;
            (batch, expired)
        };
        shared.not_full.notify_all();
        for p in expired {
            // Feed the expiry signal to the engine (the router's ladder
            // listens here) before resolving the timeout; a panicking hook
            // must not take the worker down with it.
            let _ = catch_unwind(AssertUnwindSafe(|| engine.on_expired(&p.request)));
            p.slot.fulfill(Err(ServeError::DeadlineExceeded));
        }
        if batch.is_empty() {
            continue;
        }

        let mut requests = Vec::with_capacity(batch.len());
        let mut slots = Vec::with_capacity(batch.len());
        let mut submitted_at = Vec::with_capacity(batch.len());
        for p in batch {
            requests.push(p.request);
            slots.push(p.slot);
            submitted_at.push(p.submitted_at);
        }
        let count = requests.len();
        // Register the batch's slots with the supervisor: if this worker dies
        // inside the engine call, the supervisor resolves them with
        // WorkerDied and respawns the worker. The entry is cleared after the
        // slots are fulfilled (fulfil is idempotent, but clearing before the
        // stats bump keeps `completed` exactly-once: the only code that can
        // unwind runs inside the engine call, before fulfilment).
        recover(shared.supervisor.lock()).in_flight[index] = Some(slots.clone());
        // A panicking engine must not strand the batch. By default the panic
        // is contained here: the batch resolves with WorkerDied and the
        // worker lives on. With `contain_panics: false` the panic unwinds the
        // worker and the supervisor takes over (death-watch path).
        let mut results = if config.contain_panics {
            catch_unwind(AssertUnwindSafe(|| engine.process_batch(requests)))
                .unwrap_or_else(|_| (0..count).map(|_| Err(ServeError::WorkerDied)).collect())
        } else {
            engine.process_batch(requests)
        };
        if results.len() != count {
            let actual = results.len();
            results = (0..count).map(|_| Err(ServeError::BatchSizeMismatch { expected: count, actual })).collect();
        }
        for (slot, result) in slots.iter().zip(results) {
            slot.fulfill(result);
        }
        recover(shared.supervisor.lock()).in_flight[index] = None;
        let mut state = recover(shared.state.lock());
        state.stats.completed += count as u64;
        for at in &submitted_at {
            state.stats.latency.record(at.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_histogram_percentiles_bracket_recorded_values() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        // 99 fast requests (~100 µs) and one slow outlier (~50 ms).
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        // p50 sits in the [64, 128) µs bucket → upper bound 128 µs.
        assert_eq!(h.p50(), Duration::from_micros(128));
        // p99 is still a fast request; p100 must cover the outlier.
        assert_eq!(h.p99(), Duration::from_micros(128));
        assert!(h.percentile(1.0) >= Duration::from_millis(50));
        assert!(h.mean() >= Duration::from_micros(100));
    }

    #[test]
    fn latency_histogram_merge_is_lossless() {
        // Two disjoint recording sets, merged, must answer every query
        // exactly as one histogram that recorded both sets directly.
        let fast: Vec<Duration> = (0..97).map(|i| Duration::from_micros(40 + 7 * i)).collect();
        let slow: Vec<Duration> =
            (0..31).map(|i| Duration::from_millis(3 + i) + Duration::from_micros(13 * i as u64)).collect();
        let (mut a, mut b, mut combined) =
            (LatencyHistogram::default(), LatencyHistogram::default(), LatencyHistogram::default());
        for &d in &fast {
            a.record(d);
            combined.record(d);
        }
        for &d in &slow {
            b.record(d);
            combined.record(d);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.p50(), combined.p50());
        assert_eq!(a.p99(), combined.p99());
        assert_eq!(a.percentile(1.0), combined.percentile(1.0));
        assert_eq!(a.mean(), combined.mean());
        // Merging an empty histogram is the identity.
        let before = a;
        a.merge(&LatencyHistogram::default());
        assert_eq!(a, before);
    }

    #[test]
    fn latency_histogram_bucket_round_trip() {
        let mut h = LatencyHistogram::default();
        for i in 0..200u64 {
            h.record(Duration::from_micros(1 + i * 311));
        }
        let rebuilt = LatencyHistogram::from_parts(*h.bucket_counts(), h.total_micros());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.count(), h.count());
        // The iterator covers exactly the recorded mass, in bucket order.
        let total: u64 = h.buckets().map(|(_, n)| n).sum();
        assert_eq!(total, h.count());
        let mut last = Duration::ZERO;
        for (upper, _) in h.buckets() {
            assert!(upper > last);
            last = upper;
        }
    }

    #[test]
    fn latency_histogram_edge_cases_saturate() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::ZERO); // sub-µs → bucket 0
        h.record(Duration::from_secs(60 * 60 * 24)); // beyond the top bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.5), Duration::from_micros(2));
        assert!(h.percentile(1.0) >= Duration::from_micros(1 << 31));
    }

    #[test]
    fn expired_deadline_resolves_with_timeout_instead_of_blocking_the_batch() {
        // A slow engine call occupies the single worker; requests queued
        // behind it with a tiny deadline expire before the worker drains
        // them, while a deadline-free request in the same drain is served.
        use std::sync::atomic::{AtomicBool, Ordering};
        let entered = Arc::new(AtomicBool::new(false));
        let server = {
            let entered = Arc::clone(&entered);
            Server::from_fn(
                BatchConfig { max_batch: 4, linger: Duration::ZERO, ..BatchConfig::default() },
                move |batch: Vec<u32>| {
                    entered.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(40));
                    batch.into_iter().map(|v| Ok(v * 10)).collect()
                },
            )
        };
        let plug = server.submit(1).unwrap();
        // Only submit behind the worker once it is provably inside the engine,
        // so the doomed request cannot sneak into the first batch.
        while !entered.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let doomed = server.submit_with_deadline(2, Duration::from_millis(10)).unwrap();
        let survivor = server.submit(3).unwrap();
        assert_eq!(plug.wait(), Ok(10));
        assert_eq!(doomed.wait(), Err(ServeError::DeadlineExceeded));
        assert_eq!(survivor.wait(), Ok(30));
        let stats = server.shutdown();
        assert_eq!(stats.completed, 3, "expired requests still resolve their handles");
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.latency.count(), 2, "timed-out requests must not pollute the latency histogram");
        assert!(stats.mean_batch() <= 2.0);
    }

    #[test]
    fn deadline_cuts_a_lingering_batch_early() {
        // Linger is far longer than the request's slack: the scheduler must
        // dispatch when the slack runs out, not when the linger ends.
        let server = Server::from_fn(
            BatchConfig {
                max_batch: 64,
                linger: Duration::from_secs(5),
                deadline: Some(Duration::from_millis(30)),
                ..BatchConfig::default()
            },
            |batch: Vec<u32>| batch.into_iter().map(Ok).collect(),
        );
        let start = Instant::now();
        let handle = server.submit(7).unwrap();
        assert_eq!(handle.wait(), Ok(7), "the request must be served, not timed out");
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "batch must be cut at the ~30 ms deadline, not the 5 s linger (took {elapsed:?})"
        );
        let stats = server.shutdown();
        assert_eq!(stats.deadline_expired, 0);
    }

    #[test]
    fn config_default_deadline_applies_to_plain_submit() {
        let server = Server::from_fn(
            BatchConfig {
                max_batch: 1,
                linger: Duration::ZERO,
                deadline: Some(Duration::ZERO),
                ..BatchConfig::default()
            },
            |batch: Vec<u32>| {
                std::thread::sleep(Duration::from_millis(20));
                batch.into_iter().map(Ok).collect()
            },
        );
        // First request is picked up immediately (may be served before its
        // zero deadline is checked); everything queued behind the busy worker
        // has already expired by the next drain.
        let first = server.submit(0).unwrap();
        let rest: Vec<_> = (1..5).map(|v| server.submit(v).unwrap()).collect();
        let _ = first.wait();
        let timed_out =
            rest.into_iter().filter(|h| matches!(h.try_take(), Some(Err(ServeError::DeadlineExceeded)))).count();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 5);
        assert!(stats.deadline_expired >= timed_out as u64);
        assert!(stats.deadline_expired >= 3, "zero default deadline must expire queued requests");
    }

    #[test]
    fn server_records_one_latency_per_request() {
        let server = Server::from_fn(
            BatchConfig { max_batch: 4, linger: Duration::ZERO, ..BatchConfig::default() },
            |batch: Vec<u32>| {
                std::thread::sleep(Duration::from_millis(2));
                batch.into_iter().map(|v| Ok(v + 1)).collect()
            },
        );
        let handles: Vec<_> = (0..6).map(|v| server.submit(v).unwrap()).collect();
        for h in handles {
            h.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.latency.count(), 6);
        // Every request waited at least the 2 ms engine sleep.
        assert!(stats.latency.percentile(0.01) >= Duration::from_millis(2), "{:?}", stats.latency.percentile(0.01));
        assert!(stats.latency.p99() >= stats.latency.p50());
    }
}
