//! Ready-made batch engines wiring the [`crate::Server`] to the
//! workspace beamformers.
//!
//! [`BeamformEngine`] is the frame-level service: submit one
//! [`ChannelData`] acquisition per request, receive the beamformed
//! [`IqImage`]. A coalesced batch is executed through
//! [`Beamformer::beamform_batch_results`], so frames of the batch run
//! concurrently while each frame keeps its internal row parallelism, under
//! one bounded thread budget (see [`runtime::split_budget`]). Because every
//! frame's image depends only on that frame's data, an image served through
//! the batcher is bitwise identical to a serial `beamform` call.

use crate::batcher::{BatchConfig, BatchEngine, Server};
use crate::{ServeError, ServeResult};
use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::pipeline::Beamformer;
use beamforming::plan::FrameFormat;
use ultrasound::{ChannelData, LinearArray};

/// A [`BatchEngine`] that beamforms one [`ChannelData`] frame per request
/// through any [`Beamformer`] (DAS, MVDR, Tiny-VBF, …), sharing one probe,
/// grid and sound speed across the stream.
pub struct BeamformEngine<B> {
    beamformer: B,
    array: LinearArray,
    grid: ImagingGrid,
    sound_speed: f32,
    threads: usize,
}

impl<B: Beamformer + Send + 'static> BeamformEngine<B> {
    /// Builds an engine with the workspace-default total thread budget per
    /// batch (see [`runtime::default_threads`]).
    ///
    /// The budget applies *per engine call*: with
    /// [`BatchConfig::workers`](crate::BatchConfig) > 1 every worker executes
    /// its own call, so give each engine `default / workers` threads (as
    /// [`beamform_server`] does) to keep the server's total bounded.
    pub fn new(beamformer: B, array: LinearArray, grid: ImagingGrid, sound_speed: f32) -> Self {
        Self::with_threads(beamformer, array, grid, sound_speed, runtime::default_threads())
    }

    /// [`BeamformEngine::new`] with an explicit total thread budget per batch
    /// call (split across frames and per-frame rows by
    /// [`runtime::split_budget`]).
    pub fn with_threads(beamformer: B, array: LinearArray, grid: ImagingGrid, sound_speed: f32, threads: usize) -> Self {
        Self { beamformer, array, grid, sound_speed, threads: threads.max(1) }
    }

    /// The wrapped beamformer.
    pub fn beamformer(&self) -> &B {
        &self.beamformer
    }

    /// The imaging grid every served frame is reconstructed on.
    pub fn grid(&self) -> &ImagingGrid {
        &self.grid
    }

    /// Warms the beamformer's per-stream caches for frames of the given
    /// format (see [`Beamformer::prepare`]).
    ///
    /// For the planned beamformers ([`beamforming::plan::PlannedDas`],
    /// [`beamforming::plan::PlannedMvdr`]) this builds the
    /// [`beamforming::plan::BeamformPlan`] once at engine construction, so
    /// the stream's first frame doesn't pay the one-time delay-table setup.
    /// Best-effort: configuration errors surface on the first served frame.
    pub fn warm(&self, frame: &FrameFormat) {
        self.beamformer.prepare(&self.array, &self.grid, self.sound_speed, frame);
    }
}

impl<B: Beamformer + Send + 'static> BatchEngine for BeamformEngine<B> {
    type Request = ChannelData;
    type Response = IqImage;

    fn process_batch(&self, batch: Vec<ChannelData>) -> Vec<ServeResult<IqImage>> {
        // Per-frame results: one malformed frame fails alone instead of
        // poisoning its whole batch, with no second pass over the good frames.
        self.beamformer
            .beamform_batch_results(&batch, &self.array, &self.grid, self.sound_speed, self.threads)
            .into_iter()
            .map(|result| result.map_err(|e| ServeError::Engine(e.to_string())))
            .collect()
    }
}

/// A streaming beamforming server: frames in, IQ images out.
pub type BeamformServer<B> = Server<BeamformEngine<B>>;

/// Spawns a [`BeamformServer`] over `beamformer` for a fixed probe/grid.
///
/// The workspace-default thread budget is shared across the server's batch
/// workers (each engine call gets `default_threads / workers`, at least 1),
/// so raising [`BatchConfig::workers`](crate::BatchConfig) overlaps batches
/// without multiplying the total compute-thread count. Build the engine with
/// [`BeamformEngine::with_threads`] and [`crate::Server::new`] directly to
/// choose a different split. See `examples/serve_demo.rs` for an end-to-end
/// run.
pub fn beamform_server<B: Beamformer + Send + 'static>(
    config: BatchConfig,
    beamformer: B,
    array: LinearArray,
    grid: ImagingGrid,
    sound_speed: f32,
) -> BeamformServer<B> {
    let per_call = (runtime::default_threads() / config.workers.max(1)).max(1);
    let engine = BeamformEngine::with_threads(beamformer, array, grid, sound_speed, per_call);
    Server::new(config, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beamforming::pipeline::DelayAndSum;
    use ultrasound::{Medium, Phantom, PlaneWave, PlaneWaveSimulator};

    #[test]
    fn beamform_server_matches_serial_beamforming() {
        let array = LinearArray::small_test_array();
        let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.025);
        let phantom = Phantom::builder(0.01, 0.025).seed(3).add_point_target(0.0, 0.018, 1.0).build();
        let frames: Vec<ChannelData> = [-2.0f32, 0.0, 2.0]
            .iter()
            .map(|&deg| sim.simulate(&phantom, PlaneWave::from_degrees(deg)).unwrap())
            .collect();
        let grid = ImagingGrid::for_array(&array, 0.014, 0.008, 16, 8);
        let das = DelayAndSum::default();
        let serial: Vec<IqImage> =
            frames.iter().map(|f| das.beamform(f, &array, &grid, 1540.0).unwrap()).collect();

        let server = beamform_server(
            BatchConfig { max_batch: 2, ..BatchConfig::default() },
            das,
            array,
            grid,
            1540.0,
        );
        let handles: Vec<_> = frames.into_iter().map(|f| server.submit(f).unwrap()).collect();
        let served: Vec<IqImage> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
        assert_eq!(serial, served);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn bad_frame_fails_alone_in_a_mixed_batch() {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.014, 0.008, 8, 8);
        let good = ChannelData::zeros(256, array.num_elements(), array.sampling_frequency());
        let bad = ChannelData::zeros(256, 3, array.sampling_frequency()); // wrong channel count
        let engine = BeamformEngine::new(DelayAndSum::default(), array, grid, 1540.0);
        let results = engine.process_batch(vec![good.clone(), bad, good]);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ServeError::Engine(_))));
        assert!(results[2].is_ok());
    }
}
