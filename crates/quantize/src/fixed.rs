//! Signed, saturating fixed-point formats.

use crate::{QuantizeError, QuantizeResult};
use serde::{Deserialize, Serialize};

/// A signed two's-complement fixed-point format `Q(word_bits − frac_bits − 1).frac_bits`.
///
/// Values are represented on a uniform grid of step `2^-frac_bits`, clamped to the
/// representable range. Quantization here is *simulated*: values stay `f32` but are
/// rounded onto the grid, which is exactly what is needed to evaluate image-quality
/// degradation (Tables IV and V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedFormat {
    word_bits: u32,
    frac_bits: u32,
}

impl FixedFormat {
    /// Creates a format with `word_bits` total bits (including sign) and `frac_bits`
    /// fractional bits.
    ///
    /// # Panics
    ///
    /// Panics when `word_bits < 2`, `word_bits > 32` or `frac_bits >= word_bits`.
    pub fn new(word_bits: u32, frac_bits: u32) -> Self {
        Self::try_new(word_bits, frac_bits).expect("invalid fixed-point format")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::InvalidFormat`] for unusable bit widths.
    pub fn try_new(word_bits: u32, frac_bits: u32) -> QuantizeResult<Self> {
        if word_bits < 2 {
            return Err(QuantizeError::InvalidFormat { reason: "word bits must be at least 2".into() });
        }
        if word_bits > 32 {
            return Err(QuantizeError::InvalidFormat { reason: "word bits must not exceed 32".into() });
        }
        if frac_bits >= word_bits {
            return Err(QuantizeError::InvalidFormat { reason: "fractional bits must be smaller than word bits".into() });
        }
        Ok(Self { word_bits, frac_bits })
    }

    /// Total word length in bits (including the sign bit).
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Number of fractional bits.
    #[inline]
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Number of integer bits (excluding the sign bit).
    pub fn int_bits(&self) -> u32 {
        self.word_bits - self.frac_bits - 1
    }

    /// Quantization step (resolution).
    #[inline]
    pub fn resolution(&self) -> f32 {
        2.0f32.powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    #[inline]
    pub fn max_value(&self) -> f32 {
        let max_raw = (1i64 << (self.word_bits - 1)) - 1;
        max_raw as f32 * self.resolution()
    }

    /// Smallest (most negative) representable value.
    #[inline]
    pub fn min_value(&self) -> f32 {
        let min_raw = -(1i64 << (self.word_bits - 1));
        min_raw as f32 * self.resolution()
    }

    /// Raw integer code for a value (round-to-nearest, saturating).
    #[inline]
    pub fn to_raw(&self, value: f32) -> i64 {
        if value.is_nan() {
            return 0;
        }
        let max_raw = (1i64 << (self.word_bits - 1)) - 1;
        let min_raw = -(1i64 << (self.word_bits - 1));
        let scaled = (value / self.resolution()).round();
        if scaled >= max_raw as f32 {
            max_raw
        } else if scaled <= min_raw as f32 {
            min_raw
        } else {
            scaled as i64
        }
    }

    /// Value represented by a raw integer code.
    #[inline]
    pub fn from_raw(&self, raw: i64) -> f32 {
        raw as f32 * self.resolution()
    }

    /// Rounds a value onto the representable grid (saturating).
    #[inline]
    pub fn quantize(&self, value: f32) -> f32 {
        self.from_raw(self.to_raw(value))
    }

    /// Quantizes a slice in place.
    pub fn quantize_slice(&self, values: &mut [f32]) {
        for v in values.iter_mut() {
            *v = self.quantize(*v);
        }
    }

    /// Worst-case quantization error (half a step) for in-range values.
    pub fn max_rounding_error(&self) -> f32 {
        self.resolution() / 2.0
    }

    /// Largest raw code (`2^(word_bits-1) − 1`).
    #[inline]
    pub fn max_raw(&self) -> i64 {
        (1i64 << (self.word_bits - 1)) - 1
    }

    /// Smallest raw code (`−2^(word_bits-1)`).
    #[inline]
    pub fn min_raw(&self) -> i64 {
        -(1i64 << (self.word_bits - 1))
    }

    /// Raw code as `i32` (valid because `word_bits <= 32`). The working type
    /// of the integer kernels in `core::quantized`.
    #[inline]
    pub fn to_code(&self, value: f32) -> i32 {
        self.to_raw(value) as i32
    }

    /// Value of an `i32` code; exact for every representable code because
    /// `word_bits <= 24` formats fit in an f32 mantissa (wider formats keep
    /// the usual f32 rounding of [`Self::from_raw`]).
    #[inline]
    pub fn from_code(&self, code: i32) -> f32 {
        self.from_raw(code as i64)
    }

    /// Requantizes an exact integer accumulator from a grid with
    /// `from_frac_bits` fractional bits onto this format: round half away
    /// from zero (matching `f32::round`), then saturate to the code range.
    ///
    /// This is the integer-datapath equivalent of `quantize()` applied to the
    /// accumulator's real value, with one exactness caveat: an accumulator
    /// landing exactly halfway between grid steps rounds away from zero here,
    /// while the f32 simulation may not represent the halfway point at all.
    ///
    /// # Panics
    ///
    /// Debug-panics when `from_frac_bits` is smaller than this format's
    /// fractional bits (the shift would have to be negative).
    #[inline]
    pub fn requantize_i64(&self, acc: i64, from_frac_bits: u32) -> i32 {
        debug_assert!(from_frac_bits >= self.frac_bits, "requantize must narrow fractional bits");
        let shift = from_frac_bits - self.frac_bits;
        let rounded = if shift == 0 {
            acc
        } else {
            // Branchless round-half-away: fold to magnitude, round, restore the
            // sign. Equivalent to `if acc >= 0 { (acc + half) >> shift } else
            // { -((-acc + half) >> shift) }` but with no data-dependent branch,
            // which matters in the integer inference inner loops where the
            // accumulator sign is effectively random.
            let half = 1i64 << (shift - 1);
            let sign = acc >> 63; // 0 for non-negative, -1 for negative
            let magnitude = (acc ^ sign) - sign;
            (((magnitude + half) >> shift) ^ sign) - sign
        };
        rounded.clamp(self.min_raw(), self.max_raw()) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_accessors() {
        let f = FixedFormat::new(16, 12);
        assert_eq!(f.word_bits(), 16);
        assert_eq!(f.frac_bits(), 12);
        assert_eq!(f.int_bits(), 3);
        assert!((f.resolution() - 1.0 / 4096.0).abs() < 1e-12);
        assert!((f.max_value() - (32767.0 / 4096.0)).abs() < 1e-4);
        assert!((f.min_value() + 8.0).abs() < 1e-6);
        assert_eq!(f.max_rounding_error(), f.resolution() / 2.0);
    }

    #[test]
    fn invalid_formats_are_rejected() {
        assert!(FixedFormat::try_new(1, 0).is_err());
        assert!(FixedFormat::try_new(40, 8).is_err());
        assert!(FixedFormat::try_new(8, 8).is_err());
        assert!(FixedFormat::try_new(8, 9).is_err());
        assert!(FixedFormat::try_new(8, 6).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid fixed-point format")]
    fn new_panics_on_invalid() {
        let _ = FixedFormat::new(1, 0);
    }

    #[test]
    fn quantize_rounds_to_grid() {
        let q = FixedFormat::new(8, 6); // step 1/64
        assert_eq!(q.quantize(0.0), 0.0);
        assert_eq!(q.quantize(1.0 / 64.0), 1.0 / 64.0);
        assert_eq!(q.quantize(0.015), 1.0 / 64.0);
        // -0.0078 is within half a step of zero, so it rounds to zero.
        assert_eq!(q.quantize(-0.0078), 0.0);
        // -0.009 is closer to -1/64 than to zero.
        assert_eq!(q.quantize(-0.009), -1.0 / 64.0);
    }

    #[test]
    fn saturation_at_extremes() {
        let q = FixedFormat::new(8, 6);
        assert_eq!(q.quantize(100.0), q.max_value());
        assert_eq!(q.quantize(-100.0), q.min_value());
        assert_eq!(q.quantize(f32::NAN), 0.0);
        assert!((q.max_value() - 127.0 / 64.0).abs() < 1e-6);
        assert!((q.min_value() + 2.0).abs() < 1e-6);
    }

    #[test]
    fn raw_round_trip() {
        let q = FixedFormat::new(12, 8);
        for &v in &[0.0f32, 0.5, -0.25, 1.75, -3.0] {
            let raw = q.to_raw(v);
            assert_eq!(q.from_raw(raw), q.quantize(v));
        }
    }

    #[test]
    fn quantization_error_is_bounded_for_in_range_values() {
        let q = FixedFormat::new(16, 12);
        for k in -100..100 {
            let v = k as f32 * 0.013;
            if v < q.max_value() && v > q.min_value() {
                assert!((q.quantize(v) - v).abs() <= q.max_rounding_error() + 1e-7);
            }
        }
    }

    #[test]
    fn wider_formats_are_more_precise() {
        let coarse = FixedFormat::new(8, 6);
        let fine = FixedFormat::new(16, 14);
        let v = 0.123456;
        assert!((fine.quantize(v) - v).abs() < (coarse.quantize(v) - v).abs());
    }

    #[test]
    fn quantize_slice_applies_elementwise() {
        let q = FixedFormat::new(8, 6);
        let mut values = vec![0.013, -0.013, 5.0];
        q.quantize_slice(&mut values);
        assert_eq!(values[0], q.quantize(0.013));
        assert_eq!(values[2], q.max_value());
    }
}
