//! Fixed-point quantization for the Tiny-VBF FPGA deployment.
//!
//! The paper deploys Tiny-VBF on a ZCU104 FPGA under several quantization levels
//! (floating point, 24-bit, 20-bit and 16-bit fixed point) and two *hybrid* schemes that
//! mix an 8-bit weight representation with wider softmax and accumulator widths
//! (Table III). This crate provides:
//!
//! * [`fixed`] — a saturating signed fixed-point format and scalar/tensor rounding,
//! * [`scheme`] — the named quantization schemes of the paper,
//! * [`quantizer`] — tensor quantization helpers and SQNR error metrics.
//!
//! # Example
//!
//! ```
//! use quantize::fixed::FixedFormat;
//! let q8 = FixedFormat::new(8, 6);
//! // 8-bit two's complement with 6 fractional bits spans [-2, 2) in steps of 1/64.
//! assert_eq!(q8.quantize(0.26), 0.265625);
//! assert_eq!(q8.quantize(100.0), q8.max_value());
//! ```

#![deny(missing_docs)]

pub mod fixed;
pub mod quantizer;
pub mod scheme;

pub use fixed::FixedFormat;
pub use scheme::{QuantScheme, TensorRole};

use std::error::Error;
use std::fmt;

/// Errors produced by the quantization utilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantizeError {
    /// The fixed-point format parameters are invalid.
    InvalidFormat {
        /// Explanation of the violation.
        reason: String,
    },
}

impl fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantizeError::InvalidFormat { reason } => write!(f, "invalid fixed-point format: {reason}"),
        }
    }
}

impl Error for QuantizeError {}

/// Convenience result alias.
pub type QuantizeResult<T> = Result<T, QuantizeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_renders() {
        let e = QuantizeError::InvalidFormat { reason: "word bits must be at least 2".into() };
        assert!(e.to_string().contains("word bits"));
    }
}
