//! The paper's named quantization schemes (Table III).
//!
//! | Scheme   | Weights | Softmax | Mul/Add ops | Intermediate outputs |
//! |----------|---------|---------|-------------|----------------------|
//! | Float    | f32     | f32     | f32         | f32                  |
//! | 24 bits  | 24      | 24      | 24          | 24                   |
//! | 20 bits  | 20      | 20      | 20          | 20                   |
//! | 16 bits  | 16      | 16      | 16          | 16                   |
//! | Hybrid-1 | 8       | 24      | 20          | 20                   |
//! | Hybrid-2 | 8       | 24      | 16          | 16                   |

use crate::fixed::FixedFormat;
use serde::{Deserialize, Serialize};

/// Which kind of tensor a quantization decision applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorRole {
    /// Trained weights and biases.
    Weight,
    /// Softmax inputs/outputs inside the attention blocks.
    Softmax,
    /// Multiply/accumulate results (matmul outputs before they are written back).
    MacResult,
    /// Intermediate activations stored between layers.
    Intermediate,
}

/// A complete quantization scheme: one (optional) fixed-point format per tensor role.
/// `None` means the role stays in 32-bit floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantScheme {
    /// Scheme name as used in the paper's tables.
    pub name: &'static str,
    /// Format for weights/biases.
    pub weights: Option<FixedFormat>,
    /// Format for softmax computation.
    pub softmax: Option<FixedFormat>,
    /// Format for multiply/accumulate results.
    pub mac: Option<FixedFormat>,
    /// Format for intermediate (inter-layer) activations.
    pub intermediate: Option<FixedFormat>,
}

impl QuantScheme {
    /// Full floating-point inference (the paper's "Float" column).
    pub fn float() -> Self {
        Self { name: "Float", weights: None, softmax: None, mac: None, intermediate: None }
    }

    /// Uniform 24-bit fixed point.
    pub fn w24() -> Self {
        Self::uniform("24 bits", 24)
    }

    /// Uniform 20-bit fixed point.
    pub fn w20() -> Self {
        Self::uniform("20 bits", 20)
    }

    /// Uniform 16-bit fixed point (the paper reports visible degradation here).
    pub fn w16() -> Self {
        Self::uniform("16 bits", 16)
    }

    /// Hybrid-1: 8-bit weights, 24-bit softmax, 20-bit MAC/intermediate (Table III).
    pub fn hybrid1() -> Self {
        Self {
            name: "Hybrid-1",
            weights: Some(FixedFormat::new(8, 6)),
            softmax: Some(FixedFormat::new(24, 20)),
            mac: Some(FixedFormat::new(20, 14)),
            intermediate: Some(FixedFormat::new(20, 14)),
        }
    }

    /// Hybrid-2: 8-bit weights, 24-bit softmax, 16-bit MAC/intermediate (Table III).
    pub fn hybrid2() -> Self {
        Self {
            name: "Hybrid-2",
            weights: Some(FixedFormat::new(8, 6)),
            softmax: Some(FixedFormat::new(24, 20)),
            mac: Some(FixedFormat::new(16, 10)),
            intermediate: Some(FixedFormat::new(16, 10)),
        }
    }

    fn uniform(name: &'static str, bits: u32) -> Self {
        // Keep a handful of integer bits for accumulator headroom; weights are small so
        // they get more fractional bits.
        let activation = FixedFormat::new(bits, bits - 6);
        let weight = FixedFormat::new(bits.min(18), bits.min(18) - 2);
        Self {
            name,
            weights: Some(weight),
            softmax: Some(activation),
            mac: Some(activation),
            intermediate: Some(activation),
        }
    }

    /// Every scheme evaluated in the paper, in table order.
    pub fn all() -> Vec<QuantScheme> {
        vec![Self::float(), Self::w24(), Self::w20(), Self::w16(), Self::hybrid1(), Self::hybrid2()]
    }

    /// The serving-router backend label for this scheme.
    ///
    /// Each paper scheme maps 1:1 to a label a `serve::router` engine factory
    /// can register quantized Tiny-VBF backends under: `fp` is floating
    /// point, `fxN` the uniform N-bit schemes and `w8aN` the hybrids (8-bit
    /// weights, N-bit datapath). A custom scheme (any scheme not equal —
    /// formats included — to a named Table III constructor) reports
    /// `"tiny-vbf-custom"` and is not round-trippable through
    /// [`QuantScheme::from_backend_label`].
    ///
    /// ```
    /// use quantize::QuantScheme;
    ///
    /// assert_eq!(QuantScheme::float().backend_label(), "tiny-vbf-fp");
    /// assert_eq!(QuantScheme::w16().backend_label(), "tiny-vbf-fx16");
    /// assert_eq!(QuantScheme::hybrid2().backend_label(), "tiny-vbf-w8a16");
    /// ```
    pub fn backend_label(&self) -> &'static str {
        // Match the whole scheme, not just the name: a hand-built scheme
        // reusing a paper name must not silently serve under (and be rebuilt
        // from) the paper scheme's label.
        Self::labeled()
            .into_iter()
            .find(|(scheme, _)| scheme == self)
            .map_or("tiny-vbf-custom", |(_, label)| label)
    }

    /// Resolves a serving backend label back to its scheme — the inverse of
    /// [`QuantScheme::backend_label`] over the named Table III schemes.
    ///
    /// Returns `None` for labels no paper scheme claims, which an engine
    /// factory should surface as an unknown-backend error.
    ///
    /// ```
    /// use quantize::QuantScheme;
    ///
    /// let scheme = QuantScheme::from_backend_label("tiny-vbf-w8a20").unwrap();
    /// assert_eq!(scheme, QuantScheme::hybrid1());
    /// assert!(QuantScheme::from_backend_label("tiny-vbf-int4").is_none());
    /// ```
    pub fn from_backend_label(label: &str) -> Option<QuantScheme> {
        Self::labeled().into_iter().find(|(_, l)| *l == label).map(|(scheme, _)| scheme)
    }

    fn labeled() -> [(QuantScheme, &'static str); 6] {
        [
            (Self::float(), "tiny-vbf-fp"),
            (Self::w24(), "tiny-vbf-fx24"),
            (Self::w20(), "tiny-vbf-fx20"),
            (Self::w16(), "tiny-vbf-fx16"),
            (Self::hybrid1(), "tiny-vbf-w8a20"),
            (Self::hybrid2(), "tiny-vbf-w8a16"),
        ]
    }

    /// The format assigned to a tensor role (`None` = floating point).
    pub fn format_for(&self, role: TensorRole) -> Option<FixedFormat> {
        match role {
            TensorRole::Weight => self.weights,
            TensorRole::Softmax => self.softmax,
            TensorRole::MacResult => self.mac,
            TensorRole::Intermediate => self.intermediate,
        }
    }

    /// Quantizes a scalar according to the role's format (identity for float roles).
    pub fn quantize_value(&self, value: f32, role: TensorRole) -> f32 {
        match self.format_for(role) {
            Some(format) => format.quantize(value),
            None => value,
        }
    }

    /// Whether the scheme is pure floating point.
    pub fn is_float(&self) -> bool {
        self.weights.is_none() && self.softmax.is_none() && self.mac.is_none() && self.intermediate.is_none()
    }

    /// Weight word length in bits (32 for floating point) — used by the FPGA resource
    /// model.
    pub fn weight_bits(&self) -> u32 {
        self.weights.map_or(32, |f| f.word_bits())
    }

    /// MAC/datapath word length in bits (32 for floating point).
    pub fn datapath_bits(&self) -> u32 {
        self.mac.map_or(32, |f| f.word_bits())
    }

    /// Softmax unit word length in bits (32 for floating point).
    pub fn softmax_bits(&self) -> u32 {
        self.softmax.map_or(32, |f| f.word_bits())
    }
}

impl Default for QuantScheme {
    fn default() -> Self {
        Self::float()
    }
}

impl std::fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_bit_widths() {
        let h1 = QuantScheme::hybrid1();
        assert_eq!(h1.weight_bits(), 8);
        assert_eq!(h1.softmax_bits(), 24);
        assert_eq!(h1.datapath_bits(), 20);
        assert_eq!(h1.format_for(TensorRole::Intermediate).unwrap().word_bits(), 20);

        let h2 = QuantScheme::hybrid2();
        assert_eq!(h2.weight_bits(), 8);
        assert_eq!(h2.softmax_bits(), 24);
        assert_eq!(h2.datapath_bits(), 16);
        assert_eq!(h2.format_for(TensorRole::Intermediate).unwrap().word_bits(), 16);
    }

    #[test]
    fn float_scheme_is_identity() {
        let f = QuantScheme::float();
        assert!(f.is_float());
        assert_eq!(f.quantize_value(0.12345678, TensorRole::Weight), 0.12345678);
        assert_eq!(f.weight_bits(), 32);
        assert_eq!(f.datapath_bits(), 32);
        assert_eq!(f.softmax_bits(), 32);
    }

    #[test]
    fn all_contains_six_schemes_in_table_order() {
        let all = QuantScheme::all();
        assert_eq!(all.len(), 6);
        let names: Vec<&str> = all.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["Float", "24 bits", "20 bits", "16 bits", "Hybrid-1", "Hybrid-2"]);
        assert_eq!(all[0], QuantScheme::default());
    }

    #[test]
    fn uniform_schemes_get_finer_with_more_bits() {
        let e16 = QuantScheme::w16().format_for(TensorRole::Intermediate).unwrap().resolution();
        let e20 = QuantScheme::w20().format_for(TensorRole::Intermediate).unwrap().resolution();
        let e24 = QuantScheme::w24().format_for(TensorRole::Intermediate).unwrap().resolution();
        assert!(e24 < e20 && e20 < e16);
    }

    #[test]
    fn quantize_value_respects_role() {
        let h2 = QuantScheme::hybrid2();
        let x = 0.333333;
        let weight_q = h2.quantize_value(x, TensorRole::Weight);
        let softmax_q = h2.quantize_value(x, TensorRole::Softmax);
        // Softmax keeps far more fractional bits than the 8-bit weights.
        assert!((softmax_q - x).abs() < (weight_q - x).abs());
    }

    #[test]
    fn backend_labels_round_trip_for_every_paper_scheme() {
        for scheme in QuantScheme::all() {
            let label = scheme.backend_label();
            assert!(label.starts_with("tiny-vbf-"), "{label}");
            assert_ne!(label, "tiny-vbf-custom", "{}: named schemes need distinct labels", scheme.name);
            assert_eq!(QuantScheme::from_backend_label(label), Some(scheme));
        }
        // Labels are distinct (1:1 mapping).
        let labels: Vec<&str> = QuantScheme::all().iter().map(|s| s.backend_label()).collect();
        let mut deduped = labels.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), labels.len());
        // Unknown labels and hand-built schemes fall out of the mapping.
        assert_eq!(QuantScheme::from_backend_label("das"), None);
        let custom = QuantScheme { name: "bespoke", ..QuantScheme::hybrid1() };
        assert_eq!(custom.backend_label(), "tiny-vbf-custom");
        assert_eq!(QuantScheme::from_backend_label("tiny-vbf-custom"), None);
        // A paper name over non-paper formats must not claim the paper label.
        let impostor = QuantScheme { name: "Float", ..QuantScheme::w16() };
        assert_eq!(impostor.backend_label(), "tiny-vbf-custom");
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(QuantScheme::hybrid1().to_string(), "Hybrid-1");
        assert_eq!(QuantScheme::w20().to_string(), "20 bits");
    }
}
