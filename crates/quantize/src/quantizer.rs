//! Tensor quantization helpers and error metrics.

use crate::fixed::FixedFormat;
use crate::scheme::{QuantScheme, TensorRole};
use neural::tensor::Tensor;

/// Returns a copy of the tensor rounded onto the format's grid.
pub fn quantize_tensor(tensor: &Tensor, format: FixedFormat) -> Tensor {
    tensor.map(|v| format.quantize(v))
}

/// Quantizes a tensor according to the scheme's format for the given role (identity for
/// float roles).
pub fn quantize_for_role(tensor: &Tensor, scheme: &QuantScheme, role: TensorRole) -> Tensor {
    match scheme.format_for(role) {
        Some(format) => quantize_tensor(tensor, format),
        None => tensor.clone(),
    }
}

/// Signal-to-quantization-noise ratio in dB between an original tensor and its quantized
/// version. Returns `f32::INFINITY` when the tensors are identical.
///
/// # Panics
///
/// Panics when the shapes differ.
pub fn sqnr_db(original: &Tensor, quantized: &Tensor) -> f32 {
    assert_eq!(original.shape(), quantized.shape(), "sqnr_db: shape mismatch");
    let signal: f32 = original.sum_squares();
    let noise: f32 = original
        .as_slice()
        .iter()
        .zip(quantized.as_slice())
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    if noise <= 0.0 {
        return f32::INFINITY;
    }
    10.0 * (signal / noise).log10()
}

/// Fraction of elements that saturated (hit the format's min or max code).
pub fn saturation_fraction(tensor: &Tensor, format: FixedFormat) -> f32 {
    let max = format.max_value();
    let min = format.min_value();
    let saturated = tensor
        .as_slice()
        .iter()
        .filter(|&&v| v >= max || v <= min)
        .count();
    saturated as f32 / tensor.numel() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::init::normal;

    #[test]
    fn quantize_tensor_rounds_every_element() {
        let format = FixedFormat::new(8, 6);
        let t = Tensor::from_vec(vec![0.013, -0.009, 3.0], &[3]).unwrap();
        let q = quantize_tensor(&t, format);
        assert_eq!(q.as_slice()[0], format.quantize(0.013));
        assert_eq!(q.as_slice()[2], format.max_value());
    }

    #[test]
    fn role_quantization_is_identity_for_float() {
        let t = normal(&[4, 4], 1.0, 3);
        let q = quantize_for_role(&t, &QuantScheme::float(), TensorRole::Weight);
        assert_eq!(t, q);
        let q2 = quantize_for_role(&t, &QuantScheme::hybrid2(), TensorRole::Weight);
        assert_ne!(t, q2);
    }

    #[test]
    fn sqnr_improves_with_word_length() {
        let t = normal(&[64, 8], 0.4, 9);
        let q8 = quantize_tensor(&t, FixedFormat::new(8, 6));
        let q16 = quantize_tensor(&t, FixedFormat::new(16, 14));
        let q24 = quantize_tensor(&t, FixedFormat::new(24, 22));
        let s8 = sqnr_db(&t, &q8);
        let s16 = sqnr_db(&t, &q16);
        let s24 = sqnr_db(&t, &q24);
        assert!(s16 > s8 + 20.0, "s8 {s8} s16 {s16}");
        assert!(s24 > s16 + 20.0, "s16 {s16} s24 {s24}");
    }

    #[test]
    fn sqnr_of_identical_tensors_is_infinite() {
        let t = Tensor::full(&[4], 0.5);
        assert!(sqnr_db(&t, &t).is_infinite());
    }

    #[test]
    fn saturation_fraction_detects_clipping() {
        let format = FixedFormat::new(8, 6); // range [-2, ~1.98]
        let ok = Tensor::from_vec(vec![0.1, -0.5, 1.0, -1.5], &[4]).unwrap();
        assert_eq!(saturation_fraction(&ok, format), 0.0);
        let clipped = Tensor::from_vec(vec![5.0, -3.0, 0.0, 1.0], &[4]).unwrap();
        assert_eq!(saturation_fraction(&clipped, format), 0.5);
    }

    #[test]
    fn expected_sqnr_magnitude_for_8_bit_weights() {
        // Rule of thumb: ~6 dB per bit. 8-bit quantization of unit-scale data should land
        // in the 30-55 dB range.
        let t = normal(&[256, 4], 0.5, 21);
        let q = quantize_tensor(&t, FixedFormat::new(8, 6));
        let s = sqnr_db(&t, &q);
        assert!(s > 25.0 && s < 60.0, "sqnr {s}");
    }
}
