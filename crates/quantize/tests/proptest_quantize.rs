//! Property-based tests for the fixed-point quantization substrate.

use proptest::prelude::*;
use quantize::fixed::FixedFormat;
use quantize::quantizer::{quantize_tensor, saturation_fraction, sqnr_db};
use quantize::{QuantScheme, TensorRole};
use neural::tensor::Tensor;

fn valid_format() -> impl Strategy<Value = FixedFormat> {
    (2u32..=32).prop_flat_map(|word| (Just(word), 0u32..word)).prop_map(|(word, frac)| FixedFormat::new(word, frac))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantization_is_idempotent(format in valid_format(), value in -1.0e4f32..1.0e4) {
        let once = format.quantize(value);
        let twice = format.quantize(once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn quantized_values_stay_in_range(format in valid_format(), value in -1.0e6f32..1.0e6) {
        let q = format.quantize(value);
        prop_assert!(q <= format.max_value() + 1e-6);
        prop_assert!(q >= format.min_value() - 1e-6);
    }

    #[test]
    fn in_range_error_is_bounded_by_half_a_step(format in valid_format(), unit in -0.95f32..0.95) {
        // Pick a value safely inside the representable range.
        let value = unit * format.max_value().min(1.0e6);
        let q = format.quantize(value);
        prop_assert!((q - value).abs() <= format.max_rounding_error() + format.resolution() * 1e-3,
            "value {value} q {q} step {}", format.resolution());
    }

    #[test]
    fn quantization_is_monotone(format in valid_format(), a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(format.quantize(lo) <= format.quantize(hi) + 1e-6);
    }

    #[test]
    fn raw_codes_round_trip(format in valid_format(), value in -1.0e3f32..1.0e3) {
        let raw = format.to_raw(value);
        prop_assert_eq!(format.from_raw(raw), format.quantize(value));
    }

    #[test]
    fn wider_words_never_hurt_sqnr(values in prop::collection::vec(-1.0f32..1.0, 16..128)) {
        let len = values.len();
        let t = Tensor::from_vec(values, &[len]).unwrap();
        let narrow = quantize_tensor(&t, FixedFormat::new(8, 6));
        let wide = quantize_tensor(&t, FixedFormat::new(16, 14));
        let s_narrow = sqnr_db(&t, &narrow);
        let s_wide = sqnr_db(&t, &wide);
        prop_assert!(s_wide >= s_narrow - 1e-3, "narrow {s_narrow} wide {s_wide}");
    }

    #[test]
    fn float_scheme_never_saturates_or_changes_values(values in prop::collection::vec(-1.0e3f32..1.0e3, 1..64)) {
        let len = values.len();
        let t = Tensor::from_vec(values, &[len]).unwrap();
        let scheme = QuantScheme::float();
        for role in [TensorRole::Weight, TensorRole::Softmax, TensorRole::MacResult, TensorRole::Intermediate] {
            prop_assert_eq!(scheme.format_for(role), None);
            for &v in t.as_slice() {
                prop_assert_eq!(scheme.quantize_value(v, role), v);
            }
        }
    }

    #[test]
    fn saturation_fraction_is_a_fraction(values in prop::collection::vec(-10.0f32..10.0, 1..64), format in valid_format()) {
        let len = values.len();
        let t = Tensor::from_vec(values, &[len]).unwrap();
        let f = saturation_fraction(&t, format);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn every_paper_scheme_quantizes_weights_more_coarsely_than_softmax(value in -0.9f32..0.9) {
        for scheme in [QuantScheme::hybrid1(), QuantScheme::hybrid2()] {
            let weight_error = (scheme.quantize_value(value, TensorRole::Weight) - value).abs();
            let softmax_error = (scheme.quantize_value(value, TensorRole::Softmax) - value).abs();
            prop_assert!(softmax_error <= weight_error + 1e-7);
        }
    }
}
