//! Radix-2 fast Fourier transform.
//!
//! The transforms here are used by the [Hilbert transform](crate::hilbert) (envelope
//! detection of beamformed RF) and by the FIR design routines. Signals whose length is
//! not a power of two are handled by zero-padding helpers ([`next_pow2`], [`fft_padded`]).

use crate::complex::Complex32;
use crate::{DspError, DspResult};
use std::f32::consts::PI;

/// Returns the smallest power of two that is `>= n` (and at least 1).
///
/// ```
/// assert_eq!(usdsp::fft::next_pow2(0), 1);
/// assert_eq!(usdsp::fft::next_pow2(5), 8);
/// assert_eq!(usdsp::fft::next_pow2(8), 8);
/// ```
pub fn next_pow2(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let mut p = 1usize;
    while p < n {
        p <<= 1;
    }
    p
}

/// Returns `true` when `n` is a power of two (and nonzero).
pub fn is_pow2(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

fn bit_reverse_permute(data: &mut [Complex32]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// In-place radix-2 decimation-in-time FFT.
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] when the length is not a power of two, and
/// [`DspError::EmptyInput`] when it is empty.
pub fn fft_in_place(data: &mut [Complex32], inverse: bool) -> DspResult<()> {
    let n = data.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !is_pow2(n) {
        return Err(DspError::InvalidLength { actual: n, requirement: "FFT length must be a power of two" });
    }
    if n == 1 {
        return Ok(());
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f32;
        let wlen = Complex32::cis(ang);
        let half = len / 2;
        let mut start = 0usize;
        while start < n {
            let mut w = Complex32::ONE;
            for k in 0..half {
                let u = data[start + k];
                let v = data[start + k + half] * w;
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                w *= wlen;
            }
            start += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f32;
        for x in data.iter_mut() {
            *x = x.scale(inv_n);
        }
    }
    Ok(())
}

/// Forward FFT of a power-of-two-length complex signal.
///
/// # Panics
///
/// Panics when the input length is zero or not a power of two; use [`fft_padded`] for
/// arbitrary lengths.
pub fn fft(input: &[Complex32]) -> Vec<Complex32> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, false).expect("fft: input length must be a nonzero power of two");
    data
}

/// Inverse FFT of a power-of-two-length spectrum (includes the `1/N` normalisation).
///
/// # Panics
///
/// Panics when the input length is zero or not a power of two.
pub fn ifft(input: &[Complex32]) -> Vec<Complex32> {
    let mut data = input.to_vec();
    fft_in_place(&mut data, true).expect("ifft: input length must be a nonzero power of two");
    data
}

/// Forward FFT of an arbitrary-length signal, zero-padded to the next power of two.
///
/// Returns the padded spectrum together with the padded length.
pub fn fft_padded(input: &[Complex32]) -> DspResult<Vec<Complex32>> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = next_pow2(input.len());
    let mut data = Vec::with_capacity(n);
    data.extend_from_slice(input);
    data.resize(n, Complex32::ZERO);
    fft_in_place(&mut data, false)?;
    Ok(data)
}

/// Forward FFT of a real signal (converted to complex, zero-padded to a power of two).
pub fn rfft(input: &[f32]) -> DspResult<Vec<Complex32>> {
    if input.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let complex: Vec<Complex32> = input.iter().map(|&x| Complex32::from_real(x)).collect();
    fft_padded(&complex)
}

/// Frequency (in cycles/sample) associated with FFT bin `k` of an `n`-point transform.
///
/// Bins above `n/2` map to negative frequencies, matching the usual `fftfreq` layout.
pub fn bin_frequency(k: usize, n: usize) -> f32 {
    assert!(n > 0, "bin_frequency: n must be nonzero");
    let k = k % n;
    if k <= n / 2 {
        k as f32 / n as f32
    } else {
        (k as f32 - n as f32) / n as f32
    }
}

/// Circular convolution of two equal-length power-of-two sequences via the FFT.
///
/// # Errors
///
/// Returns an error when the lengths differ, are empty, or are not powers of two.
pub fn circular_convolve(a: &[Complex32], b: &[Complex32]) -> DspResult<Vec<Complex32>> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if a.len() != b.len() {
        return Err(DspError::InvalidLength { actual: b.len(), requirement: "circular convolution requires equal lengths" });
    }
    if !is_pow2(a.len()) {
        return Err(DspError::InvalidLength { actual: a.len(), requirement: "circular convolution requires a power-of-two length" });
    }
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    fft_in_place(&mut fa, false)?;
    fft_in_place(&mut fb, false)?;
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x *= *y;
    }
    fft_in_place(&mut fa, true)?;
    Ok(fa)
}

/// Power spectrum (squared magnitude per bin) of a real signal.
pub fn power_spectrum(input: &[f32]) -> DspResult<Vec<f32>> {
    Ok(rfft(input)?.iter().map(|c| c.norm_sqr()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex32, b: Complex32, tol: f32) {
        assert!((a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol, "{a:?} != {b:?}");
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex32::ZERO; 16];
        x[0] = Complex32::ONE;
        let spec = fft(&x);
        for bin in spec {
            assert_close(bin, Complex32::ONE, 1e-5);
        }
    }

    #[test]
    fn fft_of_dc_concentrates_in_bin_zero() {
        let x = vec![Complex32::ONE; 32];
        let spec = fft(&x);
        assert_close(spec[0], Complex32::from_real(32.0), 1e-4);
        for bin in &spec[1..] {
            assert!(bin.abs() < 1e-3);
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_expected_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex32> = (0..n)
            .map(|i| Complex32::cis(2.0 * PI * k0 as f32 * i as f32 / n as f32))
            .collect();
        let spec = fft(&x);
        let (max_bin, _) = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert_eq!(max_bin, k0);
        assert!((spec[k0].abs() - n as f32).abs() < 1e-2);
    }

    #[test]
    fn ifft_round_trip() {
        let x: Vec<Complex32> = (0..128)
            .map(|i| Complex32::new((i as f32 * 0.3).sin(), (i as f32 * 0.17).cos()))
            .collect();
        let spec = fft(&x);
        let back = ifft(&spec);
        for (a, b) in x.iter().zip(back.iter()) {
            assert_close(*a, *b, 1e-4);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex32> = (0..256)
            .map(|i| Complex32::new((i as f32 * 0.05).sin(), 0.0))
            .collect();
        let spec = fft(&x);
        let time_energy: f32 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / x.len() as f32;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex32::ZERO; 12];
        let err = fft_in_place(&mut x, false).unwrap_err();
        assert!(matches!(err, DspError::InvalidLength { actual: 12, .. }));
    }

    #[test]
    fn rejects_empty() {
        let mut x: Vec<Complex32> = vec![];
        assert_eq!(fft_in_place(&mut x, false).unwrap_err(), DspError::EmptyInput);
        assert_eq!(rfft(&[]).unwrap_err(), DspError::EmptyInput);
    }

    #[test]
    fn padded_fft_handles_arbitrary_length() {
        let x: Vec<Complex32> = (0..100).map(|i| Complex32::from_real(i as f32)).collect();
        let spec = fft_padded(&x).unwrap();
        assert_eq!(spec.len(), 128);
    }

    #[test]
    fn bin_frequency_layout() {
        assert_eq!(bin_frequency(0, 8), 0.0);
        assert_eq!(bin_frequency(1, 8), 0.125);
        assert_eq!(bin_frequency(4, 8), 0.5);
        assert_eq!(bin_frequency(5, 8), -0.375);
        assert_eq!(bin_frequency(7, 8), -0.125);
    }

    #[test]
    fn circular_convolution_with_impulse_is_identity() {
        let x: Vec<Complex32> = (0..16).map(|i| Complex32::from_real(i as f32)).collect();
        let mut delta = vec![Complex32::ZERO; 16];
        delta[0] = Complex32::ONE;
        let y = circular_convolve(&x, &delta).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert_close(*a, *b, 1e-3);
        }
    }

    #[test]
    fn circular_convolution_shift() {
        // Convolving with a shifted impulse rotates the sequence.
        let x: Vec<Complex32> = (0..8).map(|i| Complex32::from_real(i as f32)).collect();
        let mut delta = vec![Complex32::ZERO; 8];
        delta[1] = Complex32::ONE;
        let y = circular_convolve(&x, &delta).unwrap();
        assert_close(y[0], Complex32::from_real(7.0), 1e-3);
        assert_close(y[1], Complex32::from_real(0.0), 1e-3);
        assert_close(y[7], Complex32::from_real(6.0), 1e-3);
    }

    #[test]
    fn power_spectrum_is_nonnegative() {
        let x: Vec<f32> = (0..50).map(|i| (i as f32 * 0.2).sin()).collect();
        for p in power_spectrum(&x).unwrap() {
            assert!(p >= 0.0);
        }
    }
}
