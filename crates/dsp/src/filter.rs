//! FIR filter design and application.
//!
//! The ultrasound receive chain band-limits the RF channel data and the IQ demodulator
//! low-pass filters the mixed-down signal. Both use windowed-sinc FIR filters designed
//! here.

use crate::window::Window;
use crate::{DspError, DspResult};
use std::f32::consts::PI;

/// Normalized sinc function `sin(pi x) / (pi x)`.
pub fn sinc(x: f32) -> f32 {
    if x.abs() < 1e-6 {
        1.0
    } else {
        (PI * x).sin() / (PI * x)
    }
}

/// Designs a low-pass windowed-sinc FIR filter.
///
/// * `cutoff` — cut-off frequency in cycles/sample, in `(0, 0.5)`.
/// * `taps` — number of coefficients (forced to be odd so the filter has a symmetric,
///   linear-phase impulse response centred on an integer delay).
/// * `window` — tapering window applied to the sinc.
///
/// The coefficients are normalized to unit DC gain.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `cutoff` is outside `(0, 0.5)` or
/// `taps == 0`.
pub fn design_lowpass(cutoff: f32, taps: usize, window: Window) -> DspResult<Vec<f32>> {
    if !(cutoff > 0.0 && cutoff < 0.5) {
        return Err(DspError::InvalidParameter { name: "cutoff", reason: "must lie in (0, 0.5) cycles/sample" });
    }
    if taps == 0 {
        return Err(DspError::InvalidParameter { name: "taps", reason: "must be nonzero" });
    }
    let taps = if taps % 2 == 0 { taps + 1 } else { taps };
    let mid = (taps / 2) as f32;
    let win = window.coefficients(taps);
    let mut h: Vec<f32> = (0..taps)
        .map(|i| 2.0 * cutoff * sinc(2.0 * cutoff * (i as f32 - mid)) * win[i])
        .collect();
    let gain: f32 = h.iter().sum();
    if gain.abs() > 1e-12 {
        for c in h.iter_mut() {
            *c /= gain;
        }
    }
    Ok(h)
}

/// Designs a band-pass windowed-sinc FIR filter from two low-pass prototypes.
///
/// * `low`, `high` — band edges in cycles/sample with `0 < low < high < 0.5`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when the band edges are invalid.
pub fn design_bandpass(low: f32, high: f32, taps: usize, window: Window) -> DspResult<Vec<f32>> {
    if !(low > 0.0 && high < 0.5 && low < high) {
        return Err(DspError::InvalidParameter { name: "band", reason: "need 0 < low < high < 0.5" });
    }
    let hp_of_low = design_lowpass(low, taps, window)?;
    let lp_of_high = design_lowpass(high, taps, window)?;
    // band-pass = lowpass(high) - lowpass(low)
    Ok(lp_of_high.iter().zip(hp_of_low.iter()).map(|(a, b)| a - b).collect())
}

/// Full linear convolution of `signal` with `kernel` (output length `n + m - 1`).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn convolve(signal: &[f32], kernel: &[f32]) -> DspResult<Vec<f32>> {
    if signal.is_empty() || kernel.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = signal.len();
    let m = kernel.len();
    let mut out = vec![0.0f32; n + m - 1];
    for (i, &s) in signal.iter().enumerate() {
        if s == 0.0 {
            continue;
        }
        // out[i + j] += s * kernel[j]: the SIMD axpy keeps the identical
        // per-element multiply-add, just eight lanes at a time.
        runtime::simd::axpy(&mut out[i..i + m], s, kernel);
    }
    Ok(out)
}

/// "Same"-length filtering: convolves and returns the centre `signal.len()` samples,
/// compensating for the filter's group delay.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn filter_same(signal: &[f32], kernel: &[f32]) -> DspResult<Vec<f32>> {
    let full = convolve(signal, kernel)?;
    let start = (kernel.len() - 1) / 2;
    Ok(full[start..start + signal.len()].to_vec())
}

/// Zero-phase filtering (forward-backward application of the kernel).
///
/// Doubles the magnitude response in dB but cancels the phase delay; useful for
/// envelope smoothing where phase distortion is undesirable.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when either input is empty.
pub fn filtfilt(signal: &[f32], kernel: &[f32]) -> DspResult<Vec<f32>> {
    let forward = filter_same(signal, kernel)?;
    let mut reversed: Vec<f32> = forward.into_iter().rev().collect();
    reversed = filter_same(&reversed, kernel)?;
    reversed.reverse();
    Ok(reversed)
}

/// Frequency response magnitude of an FIR filter at a normalized frequency
/// (cycles/sample).
pub fn frequency_response(kernel: &[f32], f: f32) -> f32 {
    let mut re = 0.0f32;
    let mut im = 0.0f32;
    for (n, &h) in kernel.iter().enumerate() {
        let phase = -2.0 * PI * f * n as f32;
        re += h * phase.cos();
        im += h * phase.sin();
    }
    (re * re + im * im).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-6);
        assert!(sinc(2.0).abs() < 1e-6);
        assert!((sinc(0.5) - 2.0 / PI).abs() < 1e-5);
    }

    #[test]
    fn lowpass_has_unit_dc_gain() {
        let h = design_lowpass(0.2, 31, Window::Hamming).unwrap();
        let dc: f32 = h.iter().sum();
        assert!((dc - 1.0).abs() < 1e-5);
        assert_eq!(h.len(), 31);
    }

    #[test]
    fn lowpass_passes_low_and_stops_high() {
        let h = design_lowpass(0.1, 63, Window::Hamming).unwrap();
        assert!((frequency_response(&h, 0.01) - 1.0).abs() < 0.05);
        assert!(frequency_response(&h, 0.3) < 0.01);
    }

    #[test]
    fn lowpass_forces_odd_taps() {
        let h = design_lowpass(0.25, 10, Window::Hann).unwrap();
        assert_eq!(h.len(), 11);
    }

    #[test]
    fn lowpass_rejects_bad_cutoff() {
        assert!(design_lowpass(0.0, 11, Window::Hann).is_err());
        assert!(design_lowpass(0.5, 11, Window::Hann).is_err());
        assert!(design_lowpass(0.2, 0, Window::Hann).is_err());
    }

    #[test]
    fn bandpass_passes_centre_and_rejects_edges() {
        let h = design_bandpass(0.15, 0.35, 101, Window::Hamming).unwrap();
        assert!(frequency_response(&h, 0.25) > 0.9);
        assert!(frequency_response(&h, 0.02) < 0.05);
        assert!(frequency_response(&h, 0.48) < 0.05);
    }

    #[test]
    fn bandpass_rejects_inverted_edges() {
        assert!(design_bandpass(0.3, 0.2, 31, Window::Hann).is_err());
    }

    #[test]
    fn convolution_with_delta_is_identity() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = convolve(&x, &[1.0]).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn convolution_length_and_values() {
        let y = convolve(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(y, vec![3.0, 10.0, 8.0]);
    }

    #[test]
    fn convolution_rejects_empty() {
        assert!(convolve(&[], &[1.0]).is_err());
        assert!(convolve(&[1.0], &[]).is_err());
    }

    #[test]
    fn filter_same_preserves_length_and_dc() {
        let x = vec![1.0f32; 64];
        let h = design_lowpass(0.2, 21, Window::Hamming).unwrap();
        let y = filter_same(&x, &h).unwrap();
        assert_eq!(y.len(), 64);
        // In the interior the DC signal should pass unchanged.
        assert!((y[32] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn filtfilt_has_no_phase_shift() {
        // A slow sine filtered by a lowpass with plenty of margin should come out nearly
        // identical (no delay) with filtfilt.
        let n = 256;
        let x: Vec<f32> = (0..n).map(|i| (2.0 * PI * 4.0 * i as f32 / n as f32).sin()).collect();
        let h = design_lowpass(0.2, 31, Window::Hamming).unwrap();
        let y = filtfilt(&x, &h).unwrap();
        for i in 40..n - 40 {
            assert!((x[i] - y[i]).abs() < 0.02, "sample {i}");
        }
    }
}
