//! Signal-processing substrate for the Tiny-VBF ultrasound beamforming reproduction.
//!
//! The crate provides the numeric building blocks that the ultrasound simulator,
//! the classical beamformers (DAS / MVDR) and the IQ demodulation stage rely on:
//!
//! * [`Complex32`] — a small complex number type (the RF/IQ sample type),
//! * [`fft`] — an iterative radix-2 FFT / inverse FFT,
//! * [`hilbert`] — analytic-signal computation used for envelope detection,
//! * [`window`] — apodization / tapering windows,
//! * [`filter`] — FIR design and convolution used by the IQ demodulator,
//! * [`interp`] — fractional-delay interpolation used by time-of-flight correction,
//! * [`resample`] — up/down-sampling helpers,
//! * [`stats`] — mean / variance / percentile / histogram helpers used by the
//!   image-quality metrics.
//!
//! # Example
//!
//! ```
//! use usdsp::{fft, Complex32};
//!
//! // Round-trip a short signal through the FFT.
//! let signal: Vec<Complex32> = (0..8).map(|i| Complex32::new(i as f32, 0.0)).collect();
//! let spectrum = fft::fft(&signal);
//! let back = fft::ifft(&spectrum);
//! for (a, b) in signal.iter().zip(back.iter()) {
//!     assert!((a.re - b.re).abs() < 1e-4);
//! }
//! ```

#![deny(missing_docs)]

pub mod complex;
pub mod fft;
pub mod filter;
pub mod hilbert;
pub mod interp;
pub mod resample;
pub mod stats;
pub mod window;

pub use complex::Complex32;
pub use window::Window;

use std::error::Error;
use std::fmt;

/// Errors produced by the DSP routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// The input length was empty or otherwise unusable for the operation.
    EmptyInput,
    /// The requested length is not supported (for example a non-power-of-two FFT size
    /// when an explicit power-of-two transform was requested).
    InvalidLength {
        /// Length supplied by the caller.
        actual: usize,
        /// Human-readable constraint description.
        requirement: &'static str,
    },
    /// A parameter was outside its valid domain (cut-off frequencies, taps, factors …).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: &'static str,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input signal is empty"),
            DspError::InvalidLength { actual, requirement } => {
                write!(f, "invalid length {actual}: {requirement}")
            }
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for DspError {}

/// Convenience result alias used across the crate.
pub type DspResult<T> = Result<T, DspError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            DspError::EmptyInput,
            DspError::InvalidLength { actual: 3, requirement: "must be a power of two" },
            DspError::InvalidParameter { name: "cutoff", reason: "must be in (0, 0.5)" },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
