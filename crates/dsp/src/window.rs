//! Tapering / apodization windows.
//!
//! Receive apodization in the DAS beamformer and FIR filter design both use these
//! windows. The [`Window`] enum names the supported shapes; [`Window::coefficients`]
//! samples a window of a given length.

use std::f32::consts::PI;

/// Supported window shapes.
///
/// ```
/// use usdsp::Window;
/// let w = Window::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0] < 1e-6 && (w[4] - 0.95).abs() < 0.06);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Window {
    /// All-ones window (no tapering). The paper's DAS uses data-independent boxcar
    /// apodization.
    #[default]
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
    /// Tukey (tapered cosine) window; the parameter is the taper fraction in `[0, 1]`.
    Tukey(f32),
    /// Triangular (Bartlett) window.
    Triangular,
}

impl Window {
    /// Samples the window at `len` points.
    ///
    /// A zero-length request returns an empty vector; a single point returns `[1.0]`.
    pub fn coefficients(self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        if len == 1 {
            return vec![1.0];
        }
        let n = len as f32;
        (0..len).map(|i| self.sample(i as f32 / (n - 1.0))).collect()
    }

    /// Evaluates the window at a normalized position `u` in `[0, 1]`.
    ///
    /// Positions outside the interval are clamped.
    pub fn sample(self, u: f32) -> f32 {
        let u = u.clamp(0.0, 1.0);
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (2.0 * PI * u).cos(),
            Window::Hamming => 0.54 - 0.46 * (2.0 * PI * u).cos(),
            Window::Blackman => 0.42 - 0.5 * (2.0 * PI * u).cos() + 0.08 * (4.0 * PI * u).cos(),
            Window::Tukey(alpha) => {
                let alpha = alpha.clamp(0.0, 1.0);
                if alpha <= f32::EPSILON {
                    return 1.0;
                }
                if u < alpha / 2.0 {
                    0.5 * (1.0 + (PI * (2.0 * u / alpha - 1.0)).cos())
                } else if u > 1.0 - alpha / 2.0 {
                    0.5 * (1.0 + (PI * (2.0 * (1.0 - u) / alpha - 1.0)).cos())
                } else {
                    1.0
                }
            }
            Window::Triangular => 1.0 - (2.0 * u - 1.0).abs(),
        }
    }

    /// Coherent gain of the window (mean coefficient value) for a given length.
    pub fn coherent_gain(self, len: usize) -> f32 {
        if len == 0 {
            return 0.0;
        }
        let coeffs = self.coefficients(len);
        coeffs.iter().sum::<f32>() / len as f32
    }
}

/// Applies a window in place to a signal, element by element.
///
/// # Panics
///
/// Panics when the window and signal lengths differ.
pub fn apply_window(signal: &mut [f32], window: &[f32]) {
    assert_eq!(signal.len(), window.len(), "apply_window: length mismatch");
    for (s, w) in signal.iter_mut().zip(window.iter()) {
        *s *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular.coefficients(16).iter().all(|&w| w == 1.0));
    }

    #[test]
    fn hann_endpoints_are_zero_and_symmetric() {
        let w = Window::Hann.coefficients(33);
        assert!(w[0].abs() < 1e-6);
        assert!(w[32].abs() < 1e-6);
        assert!((w[16] - 1.0).abs() < 1e-6);
        for i in 0..33 {
            assert!((w[i] - w[32 - i]).abs() < 1e-5);
        }
    }

    #[test]
    fn hamming_endpoints_are_correct() {
        let w = Window::Hamming.coefficients(21);
        assert!((w[0] - 0.08).abs() < 1e-5);
        assert!((w[10] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn blackman_is_nonnegative() {
        for w in Window::Blackman.coefficients(65) {
            assert!(w >= -1e-6);
        }
    }

    #[test]
    fn tukey_limits() {
        // alpha = 0 -> rectangular; alpha = 1 -> Hann.
        let rect = Window::Tukey(0.0).coefficients(17);
        assert!(rect.iter().all(|&w| (w - 1.0).abs() < 1e-6));
        let hann_like = Window::Tukey(1.0).coefficients(17);
        let hann = Window::Hann.coefficients(17);
        for (a, b) in hann_like.iter().zip(hann.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn triangular_peak_in_the_middle() {
        let w = Window::Triangular.coefficients(11);
        assert!((w[5] - 1.0).abs() < 1e-6);
        assert!(w[0].abs() < 1e-6);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
    }

    #[test]
    fn coherent_gain_ordering() {
        // Rectangular has the largest coherent gain, Blackman the smallest of these.
        let rect = Window::Rectangular.coherent_gain(64);
        let hann = Window::Hann.coherent_gain(64);
        let blackman = Window::Blackman.coherent_gain(64);
        assert!(rect > hann && hann > blackman);
        assert!((rect - 1.0).abs() < 1e-6);
    }

    #[test]
    fn apply_window_multiplies() {
        let mut s = vec![2.0, 2.0, 2.0];
        apply_window(&mut s, &[0.0, 0.5, 1.0]);
        assert_eq!(s, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_window_panics_on_mismatch() {
        let mut s = vec![1.0; 3];
        apply_window(&mut s, &[1.0; 4]);
    }

    #[test]
    fn sample_clamps_out_of_range() {
        assert_eq!(Window::Hann.sample(-0.5), Window::Hann.sample(0.0));
        assert_eq!(Window::Hann.sample(1.5), Window::Hann.sample(1.0));
    }
}
