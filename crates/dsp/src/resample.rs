//! Integer-factor resampling.
//!
//! The simulator produces finely sampled waveforms that are decimated down to the
//! acquisition sampling rate (31.25 MHz for the L11-5v setup); image post-processing
//! occasionally upsamples envelope profiles for display.

use crate::filter::{design_lowpass, filter_same};
use crate::interp::{sample_at, InterpMethod};
use crate::window::Window;
use crate::{DspError, DspResult};

/// Decimates a signal by an integer factor after anti-alias low-pass filtering.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `factor == 0` and
/// [`DspError::EmptyInput`] when the signal is empty.
pub fn decimate(signal: &[f32], factor: usize) -> DspResult<Vec<f32>> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if factor == 0 {
        return Err(DspError::InvalidParameter { name: "factor", reason: "must be nonzero" });
    }
    if factor == 1 {
        return Ok(signal.to_vec());
    }
    let cutoff = 0.45 / factor as f32;
    let taps = (8 * factor + 1).min(129);
    let h = design_lowpass(cutoff, taps, Window::Hamming)?;
    let filtered = filter_same(signal, &h)?;
    Ok(filtered.iter().step_by(factor).copied().collect())
}

/// Upsamples a signal by an integer factor using linear interpolation.
///
/// The output has `(len - 1) * factor + 1` samples so the original samples are preserved
/// at multiples of `factor`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `factor == 0` and
/// [`DspError::EmptyInput`] when the signal is empty.
pub fn upsample_linear(signal: &[f32], factor: usize) -> DspResult<Vec<f32>> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if factor == 0 {
        return Err(DspError::InvalidParameter { name: "factor", reason: "must be nonzero" });
    }
    if factor == 1 || signal.len() == 1 {
        return Ok(signal.to_vec());
    }
    let out_len = (signal.len() - 1) * factor + 1;
    Ok((0..out_len)
        .map(|i| sample_at(signal, i as f32 / factor as f32, InterpMethod::Linear))
        .collect())
}

/// Resamples a signal to an arbitrary new length with linear interpolation.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::InvalidParameter`] when `new_len == 0`.
pub fn resample_to(signal: &[f32], new_len: usize) -> DspResult<Vec<f32>> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if new_len == 0 {
        return Err(DspError::InvalidParameter { name: "new_len", reason: "must be nonzero" });
    }
    if signal.len() == 1 {
        return Ok(vec![signal[0]; new_len]);
    }
    let scale = (signal.len() - 1) as f32 / (new_len - 1).max(1) as f32;
    Ok((0..new_len)
        .map(|i| sample_at(signal, i as f32 * scale, InterpMethod::Linear))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimate_by_one_is_identity() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(decimate(&x, 1).unwrap(), x);
    }

    #[test]
    fn decimate_reduces_length() {
        let x: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let y = decimate(&x, 4).unwrap();
        assert_eq!(y.len(), 25);
    }

    #[test]
    fn decimate_preserves_slow_content() {
        // A very slow ramp should survive decimation nearly unchanged (away from edges).
        let x: Vec<f32> = (0..400).map(|i| i as f32 / 400.0).collect();
        let y = decimate(&x, 4).unwrap();
        for k in 20..80 {
            let expected = (k * 4) as f32 / 400.0;
            assert!((y[k] - expected).abs() < 0.01, "k={k} {} vs {}", y[k], expected);
        }
    }

    #[test]
    fn decimate_attenuates_high_frequency() {
        // A tone right at the original Nyquist should mostly vanish after decimate-by-2.
        let x: Vec<f32> = (0..512).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let y = decimate(&x, 2).unwrap();
        let rms: f32 = (y[50..200].iter().map(|v| v * v).sum::<f32>() / 150.0).sqrt();
        assert!(rms < 0.05, "rms {rms}");
    }

    #[test]
    fn decimate_rejects_bad_input() {
        assert!(decimate(&[], 2).is_err());
        assert!(decimate(&[1.0], 0).is_err());
    }

    #[test]
    fn upsample_preserves_original_samples() {
        let x = vec![0.0, 1.0, 4.0];
        let y = upsample_linear(&x, 4).unwrap();
        assert_eq!(y.len(), 9);
        assert_eq!(y[0], 0.0);
        assert_eq!(y[4], 1.0);
        assert_eq!(y[8], 4.0);
        assert_eq!(y[2], 0.5);
    }

    #[test]
    fn upsample_degenerate_cases() {
        assert_eq!(upsample_linear(&[5.0], 3).unwrap(), vec![5.0]);
        assert!(upsample_linear(&[], 2).is_err());
        assert!(upsample_linear(&[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn resample_to_exact_lengths() {
        let x = vec![0.0, 1.0, 2.0, 3.0];
        assert_eq!(resample_to(&x, 4).unwrap(), x);
        let y = resample_to(&x, 7).unwrap();
        assert_eq!(y.len(), 7);
        assert_eq!(y[0], 0.0);
        assert_eq!(y[6], 3.0);
        assert!((y[3] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn resample_single_sample_repeats() {
        assert_eq!(resample_to(&[2.5], 3).unwrap(), vec![2.5, 2.5, 2.5]);
    }

    #[test]
    fn resample_rejects_bad_input() {
        assert!(resample_to(&[], 4).is_err());
        assert!(resample_to(&[1.0], 0).is_err());
    }
}
