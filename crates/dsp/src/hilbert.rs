//! Analytic-signal computation (Hilbert transform) and envelope detection.
//!
//! The Tiny-CNN baseline and the classical DAS/MVDR beamformers produce beamformed RF
//! lines; the B-mode image is the log-compressed *envelope* of those lines. The paper's
//! pipeline (and ours) obtains the envelope from the analytic signal
//! `x_a(t) = x(t) + i * H{x}(t)`, computed here with the FFT method.

use crate::complex::Complex32;
use crate::fft::{fft_in_place, next_pow2};
use crate::{DspError, DspResult};

/// Computes the analytic signal of a real-valued sequence using the FFT method.
///
/// The output has the same length as the input: the signal is zero-padded to a power of
/// two internally and truncated after the inverse transform.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `signal` is empty.
///
/// ```
/// use usdsp::hilbert::analytic_signal;
/// let t: Vec<f32> = (0..256).map(|i| i as f32 * 0.1).collect();
/// let x: Vec<f32> = t.iter().map(|t| t.cos()).collect();
/// let a = analytic_signal(&x)?;
/// // The envelope of a unit-amplitude cosine is ~1 away from the edges.
/// assert!((a[128].abs() - 1.0).abs() < 0.05);
/// # Ok::<(), usdsp::DspError>(())
/// ```
pub fn analytic_signal(signal: &[f32]) -> DspResult<Vec<Complex32>> {
    let mut scratch = Vec::new();
    analytic_signal_scratch(signal, &mut scratch)?;
    scratch.truncate(signal.len());
    Ok(scratch)
}

/// Core of [`analytic_signal`] writing into a caller-provided scratch buffer.
///
/// On success `scratch` holds the analytic signal in its first `signal.len()`
/// elements (the tail up to the padded FFT length is scratch space). Reusing
/// one buffer across many same-length signals amortises the FFT allocation —
/// this is what [`analytic_signal_batch`] does per worker thread.
fn analytic_signal_scratch(signal: &[f32], scratch: &mut Vec<Complex32>) -> DspResult<()> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = next_pow2(signal.len());
    scratch.clear();
    scratch.reserve(n);
    scratch.extend(signal.iter().map(|&x| Complex32::from_real(x)));
    scratch.resize(n, Complex32::ZERO);
    fft_in_place(scratch, false)?;

    // One-sided spectrum weighting: keep DC and Nyquist, double positive
    // frequencies, zero negative frequencies. `n` is a power of two, so the
    // bands are the contiguous ranges 1..half (doubled, component-wise over
    // the interleaved floats — bitwise `scale(2.0)`) and half+1..n (zeroed).
    let half = n / 2;
    if n > 1 {
        runtime::simd::scale(crate::complex::as_float_slice_mut(&mut scratch[1..half]), 2.0);
        scratch[half + 1..].fill(Complex32::ZERO);
    }
    fft_in_place(scratch, true)?;
    Ok(())
}

/// Analytic signal of many real-valued sequences at once, parallelised over
/// signals via the shared `runtime` thread pool.
///
/// Each worker reuses one FFT scratch buffer across all the signals of its
/// chunk, so a batch of equal-length signals (e.g. the receive channels of one
/// acquisition, or the columns of a beamformed RF image) pays one allocation
/// per worker instead of one per signal. Every output is **bitwise identical**
/// to [`analytic_signal`] on the same input, for every `num_threads`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when any signal is empty (checked up
/// front; no partial results).
///
/// ```
/// use usdsp::hilbert::{analytic_signal, analytic_signal_batch};
/// let signals: Vec<Vec<f32>> = (0..4)
///     .map(|s| (0..64).map(|i| ((s + i) as f32 * 0.3).sin()).collect())
///     .collect();
/// let batch = analytic_signal_batch(&signals, 2)?;
/// assert_eq!(batch[3], analytic_signal(&signals[3])?);
/// # Ok::<(), usdsp::DspError>(())
/// ```
pub fn analytic_signal_batch(signals: &[Vec<f32>], num_threads: usize) -> DspResult<Vec<Vec<Complex32>>> {
    if signals.iter().any(|s| s.is_empty()) {
        return Err(DspError::EmptyInput);
    }
    let mut out: Vec<Vec<Complex32>> = vec![Vec::new(); signals.len()];
    runtime::par_map_rows(&mut out, 1, num_threads, |offset, chunk| {
        let mut scratch: Vec<Complex32> = Vec::new();
        for (i, slot) in chunk.iter_mut().enumerate() {
            let signal = &signals[offset + i];
            analytic_signal_scratch(signal, &mut scratch)
                .expect("analytic_signal_batch: inputs validated non-empty");
            *slot = scratch[..signal.len()].to_vec();
        }
    });
    Ok(out)
}

/// Hilbert transform of a real sequence (the imaginary part of the analytic signal).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `signal` is empty.
pub fn hilbert(signal: &[f32]) -> DspResult<Vec<f32>> {
    Ok(analytic_signal(signal)?.into_iter().map(|c| c.im).collect())
}

/// Envelope (instantaneous amplitude) of a real RF sequence.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `signal` is empty.
pub fn envelope(signal: &[f32]) -> DspResult<Vec<f32>> {
    Ok(analytic_signal(signal)?.into_iter().map(|c| c.abs()).collect())
}

/// Envelope of an already-complex IQ sequence (simple magnitude).
pub fn envelope_iq(signal: &[Complex32]) -> Vec<f32> {
    signal.iter().map(|c| c.abs()).collect()
}

/// Instantaneous phase of a real RF sequence, in radians.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `signal` is empty.
pub fn instantaneous_phase(signal: &[f32]) -> DspResult<Vec<f32>> {
    Ok(analytic_signal(signal)?.into_iter().map(|c| c.arg()).collect())
}

/// Demodulates a real RF sequence to complex baseband IQ.
///
/// Multiplies by `exp(-i 2π f0 t)` and low-pass filters with a moving-average of
/// `smooth_len` samples (a cheap but adequate stand-in for the paper's IQ demodulation,
/// which happens before the MSE loss / log compression).
///
/// * `f0_normalized` — demodulation frequency in cycles per sample (`f0 / fs`).
/// * `smooth_len` — moving-average length; `0` or `1` disables smoothing.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] when `signal` is empty and
/// [`DspError::InvalidParameter`] when the normalized frequency is outside `[0, 0.5]`.
pub fn demodulate_iq(signal: &[f32], f0_normalized: f32, smooth_len: usize) -> DspResult<Vec<Complex32>> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(0.0..=0.5).contains(&f0_normalized) {
        return Err(DspError::InvalidParameter {
            name: "f0_normalized",
            reason: "must lie in [0, 0.5] cycles/sample",
        });
    }
    let analytic = analytic_signal(signal)?;
    let mut mixed: Vec<Complex32> = analytic
        .iter()
        .enumerate()
        .map(|(i, &a)| a * Complex32::cis(-2.0 * std::f32::consts::PI * f0_normalized * i as f32))
        .collect();
    if smooth_len > 1 {
        mixed = moving_average_complex(&mixed, smooth_len);
    }
    Ok(mixed)
}

fn moving_average_complex(x: &[Complex32], len: usize) -> Vec<Complex32> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    let half = len / 2;
    for i in 0..n {
        let start = i.saturating_sub(half);
        let end = (i + half + 1).min(n);
        let sum: Complex32 = x[start..end].iter().sum();
        out.push(sum / (end - start) as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::PI;

    #[test]
    fn envelope_of_modulated_tone_tracks_carrier_amplitude() {
        // 5 MHz tone sampled at 31.25 MHz with a slowly varying Gaussian amplitude.
        let fs = 31.25e6;
        let f0 = 5.0e6;
        let n = 512;
        let sigma = 60.0;
        let x: Vec<f32> = (0..n)
            .map(|i| {
                let t = i as f32;
                let amp = (-((t - 256.0) / sigma).powi(2)).exp();
                amp * (2.0 * PI * f0 / fs * t).sin()
            })
            .collect();
        let env = envelope(&x).unwrap();
        // Peak of the envelope should be near the Gaussian centre with amplitude ~1.
        let (imax, &vmax) = env
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((imax as i64 - 256).abs() < 8, "peak at {imax}");
        assert!((vmax - 1.0).abs() < 0.05, "peak {vmax}");
        // Far from the pulse the envelope should be tiny.
        assert!(env[10] < 0.02);
    }

    #[test]
    fn hilbert_of_cosine_is_sine() {
        let n = 256;
        let x: Vec<f32> = (0..n).map(|i| (2.0 * PI * 16.0 * i as f32 / n as f32).cos()).collect();
        let h = hilbert(&x).unwrap();
        let expected: Vec<f32> = (0..n).map(|i| (2.0 * PI * 16.0 * i as f32 / n as f32).sin()).collect();
        // Interior samples (skip edges where the periodic assumption matters least here
        // because the tone is exactly periodic, so compare everywhere).
        for i in 0..n {
            assert!((h[i] - expected[i]).abs() < 1e-2, "sample {i}: {} vs {}", h[i], expected[i]);
        }
    }

    #[test]
    fn analytic_signal_preserves_real_part() {
        let x: Vec<f32> = (0..100).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let a = analytic_signal(&x).unwrap();
        assert_eq!(a.len(), x.len());
        for (orig, anal) in x.iter().zip(a.iter()) {
            assert!((orig - anal.re).abs() < 1e-3);
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(analytic_signal(&[]).unwrap_err(), DspError::EmptyInput);
        assert_eq!(envelope(&[]).unwrap_err(), DspError::EmptyInput);
        assert_eq!(hilbert(&[]).unwrap_err(), DspError::EmptyInput);
    }

    #[test]
    fn batch_is_bitwise_identical_to_serial_for_every_thread_count() {
        // Mixed lengths (different FFT paddings) exercise the scratch reuse.
        let signals: Vec<Vec<f32>> = [33usize, 128, 100, 7, 512, 33]
            .iter()
            .enumerate()
            .map(|(s, &len)| (0..len).map(|i| ((s * 31 + i) as f32 * 0.17).sin() * (i as f32 * 0.03).cos()).collect())
            .collect();
        let serial: Vec<Vec<Complex32>> = signals.iter().map(|s| analytic_signal(s).unwrap()).collect();
        for threads in [1, 2, 3, 8] {
            let batch = analytic_signal_batch(&signals, threads).unwrap();
            for (i, (a, b)) in serial.iter().zip(batch.iter()).enumerate() {
                assert_eq!(a.len(), b.len(), "threads {threads}, signal {i}");
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits(), "threads {threads}, signal {i}");
                    assert_eq!(x.im.to_bits(), y.im.to_bits(), "threads {threads}, signal {i}");
                }
            }
        }
    }

    #[test]
    fn batch_rejects_any_empty_signal() {
        let signals = vec![vec![1.0f32, 2.0], Vec::new()];
        assert_eq!(analytic_signal_batch(&signals, 4).unwrap_err(), DspError::EmptyInput);
        assert!(analytic_signal_batch(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn envelope_is_nonnegative_and_bounds_signal() {
        let x: Vec<f32> = (0..300).map(|i| (i as f32 * 0.37).sin() * (i as f32 * 0.011).cos()).collect();
        let env = envelope(&x).unwrap();
        for (e, s) in env.iter().zip(x.iter()) {
            assert!(*e >= 0.0);
            // The envelope should dominate the instantaneous signal value up to FFT edge
            // effects.
            assert!(*e + 5e-2 >= s.abs());
        }
    }

    #[test]
    fn demodulation_produces_near_dc_baseband() {
        let fs = 31.25e6_f32;
        let f0 = 7.6e6_f32;
        let n = 1024;
        let x: Vec<f32> = (0..n).map(|i| (2.0 * PI * f0 / fs * i as f32).cos()).collect();
        let iq = demodulate_iq(&x, f0 / fs, 8).unwrap();
        // After mixing down, the phase should rotate very slowly: successive samples stay
        // close to each other.
        let mut max_step = 0.0f32;
        for w in iq[100..900].windows(2) {
            max_step = max_step.max((w[1] - w[0]).abs());
        }
        assert!(max_step < 0.05, "max step {max_step}");
    }

    #[test]
    fn demodulation_rejects_bad_frequency() {
        let x = vec![0.0f32; 16];
        assert!(matches!(
            demodulate_iq(&x, 0.7, 4).unwrap_err(),
            DspError::InvalidParameter { name: "f0_normalized", .. }
        ));
    }

    #[test]
    fn envelope_iq_is_magnitude() {
        let iq = vec![Complex32::new(3.0, 4.0), Complex32::ZERO];
        assert_eq!(envelope_iq(&iq), vec![5.0, 0.0]);
    }

    #[test]
    fn instantaneous_phase_is_bounded() {
        let x: Vec<f32> = (0..128).map(|i| (i as f32 * 0.3).sin()).collect();
        for p in instantaneous_phase(&x).unwrap() {
            assert!(p <= PI && p >= -PI);
        }
    }
}
