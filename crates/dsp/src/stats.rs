//! Descriptive statistics and histograms.
//!
//! The contrast metrics (CR, CNR, GCNR) reduce pixel populations inside/outside a cyst
//! to means, variances and histogram overlaps; those primitives live here.

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population variance (divides by `n`). Returns `0.0` for an empty slice.
pub fn variance(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32
}

/// Population standard deviation.
pub fn std_dev(values: &[f32]) -> f32 {
    variance(values).sqrt()
}

/// Minimum value; `None` for an empty slice. NaNs are ignored.
pub fn min(values: &[f32]) -> Option<f32> {
    values.iter().copied().filter(|v| !v.is_nan()).fold(None, |acc, v| match acc {
        None => Some(v),
        Some(m) => Some(m.min(v)),
    })
}

/// Maximum value; `None` for an empty slice. NaNs are ignored.
pub fn max(values: &[f32]) -> Option<f32> {
    values.iter().copied().filter(|v| !v.is_nan()).fold(None, |acc, v| match acc {
        None => Some(v),
        Some(m) => Some(m.max(v)),
    })
}

/// Root-mean-square of a slice. Returns `0.0` for an empty slice.
pub fn rms(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v * v).sum::<f32>() / values.len() as f32).sqrt()
}

/// `p`-th percentile (0–100) using linear interpolation between order statistics.
///
/// Returns `None` for an empty slice; `p` is clamped to `[0, 100]`.
pub fn percentile(values: &[f32], p: f32) -> Option<f32> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f32> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p = p.clamp(0.0, 100.0) / 100.0;
    let idx = p * (sorted.len() - 1) as f32;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f32;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile).
pub fn median(values: &[f32]) -> Option<f32> {
    percentile(values, 50.0)
}

/// A fixed-bin histogram over a closed range.
///
/// ```
/// use usdsp::stats::Histogram;
/// let h = Histogram::from_values(&[0.1, 0.2, 0.9], 10, 0.0, 1.0);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    lo: f32,
    hi: f32,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` bins covering `[lo, hi]`.
    ///
    /// Values outside the range are clamped into the edge bins; NaNs are skipped.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0` or `hi <= lo`.
    pub fn from_values(values: &[f32], bins: usize, lo: f32, hi: f32) -> Self {
        assert!(bins > 0, "Histogram: bins must be nonzero");
        assert!(hi > lo, "Histogram: hi must exceed lo");
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f32;
        for &v in values {
            if v.is_nan() {
                continue;
            }
            let idx = (((v - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1;
        }
        Self { counts, lo, hi }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of counted samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Normalized bin probabilities (empty histogram yields all zeros).
    pub fn probabilities(&self) -> Vec<f32> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f32 / total as f32).collect()
    }

    /// Lower edge of the histogram range.
    pub fn low(&self) -> f32 {
        self.lo
    }

    /// Upper edge of the histogram range.
    pub fn high(&self) -> f32 {
        self.hi
    }

    /// Overlap coefficient `sum_k min(p_k, q_k)` between two histograms with identical
    /// binning. This is the quantity behind the GCNR metric
    /// (`GCNR = 1 - overlap`).
    ///
    /// # Panics
    ///
    /// Panics when the histograms have different bin counts or ranges.
    pub fn overlap(&self, other: &Histogram) -> f32 {
        assert_eq!(self.counts.len(), other.counts.len(), "Histogram::overlap: bin count mismatch");
        assert!(
            (self.lo - other.lo).abs() < 1e-6 && (self.hi - other.hi).abs() < 1e-6,
            "Histogram::overlap: range mismatch"
        );
        let p = self.probabilities();
        let q = other.probabilities();
        p.iter().zip(q.iter()).map(|(a, b)| a.min(*b)).sum()
    }
}

/// Converts a linear amplitude to decibels (`20 log10`), clamping tiny values to avoid
/// `-inf`.
pub fn amplitude_to_db(value: f32) -> f32 {
    20.0 * value.max(1e-12).log10()
}

/// Converts a power ratio to decibels (`10 log10`), clamping tiny values.
pub fn power_to_db(value: f32) -> f32 {
    10.0 * value.max(1e-12).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn min_max_rms() {
        let xs = [3.0, -1.0, 4.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(4.0));
        assert_eq!(min(&[]), None);
        assert!((rms(&[3.0, 4.0]) - (12.5f32).sqrt()).abs() < 1e-6);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn nan_handling_in_extrema() {
        let xs = [f32::NAN, 1.0, 2.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(2.0));
    }

    #[test]
    fn percentiles_and_median() {
        let xs: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
        assert!((median(&xs).unwrap() - 50.5).abs() < 1e-4);
        assert_eq!(percentile(&[], 50.0), None);
        // clamping
        assert_eq!(percentile(&xs, -5.0), Some(1.0));
        assert_eq!(percentile(&xs, 150.0), Some(100.0));
    }

    #[test]
    fn histogram_counts_and_probabilities() {
        let h = Histogram::from_values(&[0.05, 0.15, 0.15, 0.95, 2.0, -1.0], 10, 0.0, 1.0);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 2); // 0.05 and the clamped -1.0
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 0.95 and the clamped 2.0
        let p = h.probabilities();
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(h.bins(), 10);
        assert_eq!(h.low(), 0.0);
        assert_eq!(h.high(), 1.0);
    }

    #[test]
    fn histogram_overlap_identical_is_one_disjoint_is_zero() {
        let a = Histogram::from_values(&[0.1, 0.2, 0.3], 10, 0.0, 1.0);
        let b = Histogram::from_values(&[0.1, 0.2, 0.3], 10, 0.0, 1.0);
        assert!((a.overlap(&b) - 1.0).abs() < 1e-6);
        let c = Histogram::from_values(&[0.7, 0.8, 0.9], 10, 0.0, 1.0);
        assert!(a.overlap(&c) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn histogram_overlap_requires_same_bins() {
        let a = Histogram::from_values(&[0.1], 10, 0.0, 1.0);
        let b = Histogram::from_values(&[0.1], 5, 0.0, 1.0);
        let _ = a.overlap(&b);
    }

    #[test]
    fn empty_histogram_probabilities_are_zero() {
        let h = Histogram::from_values(&[], 4, 0.0, 1.0);
        assert_eq!(h.total(), 0);
        assert!(h.probabilities().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn db_conversions() {
        assert!((amplitude_to_db(1.0)).abs() < 1e-6);
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-5);
        assert!((power_to_db(100.0) - 20.0).abs() < 1e-5);
        assert!(amplitude_to_db(0.0).is_finite());
    }
}
