//! Fractional-sample interpolation.
//!
//! Time-of-flight correction resamples each receive channel at non-integer delays; the
//! interpolators here are what the beamformers use to read "the sample at delay τ".

use crate::complex::Complex32;

/// Interpolation method used when sampling a discrete signal at fractional indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpMethod {
    /// Nearest-neighbour (round to the closest sample).
    Nearest,
    /// Linear interpolation between the two bracketing samples (the usual choice in
    /// software beamformers and what we use for ToF correction).
    #[default]
    Linear,
    /// Catmull-Rom cubic interpolation over four neighbouring samples.
    Cubic,
}

/// Samples a real signal at a fractional index.
///
/// Out-of-range indices return `0.0` (ultrasound samples outside the acquisition window
/// contribute nothing), which mirrors how hardware beamformers zero out-of-window taps.
///
/// ```
/// use usdsp::interp::{sample_at, InterpMethod};
/// let x = [0.0, 1.0, 2.0, 3.0];
/// assert_eq!(sample_at(&x, 1.5, InterpMethod::Linear), 1.5);
/// assert_eq!(sample_at(&x, -0.2, InterpMethod::Linear), 0.0);
/// ```
#[inline]
pub fn sample_at(signal: &[f32], index: f32, method: InterpMethod) -> f32 {
    if signal.is_empty() || !index.is_finite() {
        return 0.0;
    }
    let n = signal.len();
    if index < 0.0 || index > (n - 1) as f32 {
        return 0.0;
    }
    match method {
        InterpMethod::Nearest => {
            let i = index.round() as usize;
            signal[i.min(n - 1)]
        }
        InterpMethod::Linear => {
            let i0 = index.floor() as usize;
            let frac = index - i0 as f32;
            if i0 + 1 >= n {
                signal[n - 1]
            } else {
                signal[i0] * (1.0 - frac) + signal[i0 + 1] * frac
            }
        }
        InterpMethod::Cubic => {
            let i1 = index.floor() as isize;
            let t = index - i1 as f32;
            let get = |i: isize| -> f32 {
                if i < 0 || i as usize >= n {
                    0.0
                } else {
                    signal[i as usize]
                }
            };
            let p0 = get(i1 - 1);
            let p1 = get(i1);
            let p2 = get(i1 + 1);
            let p3 = get(i1 + 2);
            catmull_rom(p0, p1, p2, p3, t)
        }
    }
}

/// Samples a complex signal at a fractional index (component-wise interpolation).
#[inline]
pub fn sample_at_complex(signal: &[Complex32], index: f32, method: InterpMethod) -> Complex32 {
    if signal.is_empty() || !index.is_finite() {
        return Complex32::ZERO;
    }
    let n = signal.len();
    if index < 0.0 || index > (n - 1) as f32 {
        return Complex32::ZERO;
    }
    match method {
        InterpMethod::Nearest => {
            let i = index.round() as usize;
            signal[i.min(n - 1)]
        }
        InterpMethod::Linear => {
            let i0 = index.floor() as usize;
            let frac = index - i0 as f32;
            if i0 + 1 >= n {
                signal[n - 1]
            } else {
                signal[i0].scale(1.0 - frac) + signal[i0 + 1].scale(frac)
            }
        }
        InterpMethod::Cubic => {
            let re: Vec<f32> = signal.iter().map(|c| c.re).collect();
            let im: Vec<f32> = signal.iter().map(|c| c.im).collect();
            Complex32::new(sample_at(&re, index, method), sample_at(&im, index, method))
        }
    }
}

/// Catmull-Rom cubic interpolation kernel over four neighbouring samples at
/// fractional position `t ∈ [0, 1)` between `p1` and `p2`.
///
/// Exposed so that precomputed-plan gather kernels (see the `beamforming`
/// crate) can reproduce [`sample_at`]'s cubic path bit-for-bit: the arithmetic
/// (order of operations) here is the single source of truth.
#[inline]
pub fn catmull_rom(p0: f32, p1: f32, p2: f32, p3: f32, t: f32) -> f32 {
    let t2 = t * t;
    let t3 = t2 * t;
    0.5 * ((2.0 * p1)
        + (-p0 + p2) * t
        + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2
        + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t3)
}

/// Resamples a whole signal onto arbitrary fractional indices.
pub fn sample_many(signal: &[f32], indices: &[f32], method: InterpMethod) -> Vec<f32> {
    indices.iter().map(|&i| sample_at(signal, i, method)).collect()
}

/// Linearly interpolates `y(x)` given monotonically increasing sample positions `xs`.
///
/// Values outside the domain are clamped to the endpoint values. Returns `None` when the
/// arrays are empty or have mismatched lengths.
pub fn interp1(xs: &[f32], ys: &[f32], x: f32) -> Option<f32> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    if x <= xs[0] {
        return Some(ys[0]);
    }
    if x >= xs[xs.len() - 1] {
        return Some(ys[ys.len() - 1]);
    }
    // binary search for the bracketing interval
    let mut lo = 0usize;
    let mut hi = xs.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    Some(ys[lo] * (1.0 - t) + ys[hi] * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolation_between_samples() {
        let x = [0.0, 10.0, 20.0];
        assert_eq!(sample_at(&x, 0.25, InterpMethod::Linear), 2.5);
        assert_eq!(sample_at(&x, 1.5, InterpMethod::Linear), 15.0);
    }

    #[test]
    fn exact_indices_return_exact_samples() {
        let x = [3.0, -1.0, 4.0, -1.5];
        for method in [InterpMethod::Nearest, InterpMethod::Linear, InterpMethod::Cubic] {
            for (i, &v) in x.iter().enumerate() {
                assert!((sample_at(&x, i as f32, method) - v).abs() < 1e-6, "{method:?} idx {i}");
            }
        }
    }

    #[test]
    fn out_of_range_returns_zero() {
        let x = [1.0, 2.0];
        for method in [InterpMethod::Nearest, InterpMethod::Linear, InterpMethod::Cubic] {
            assert_eq!(sample_at(&x, -0.01, method), 0.0);
            assert_eq!(sample_at(&x, 1.01, method), 0.0);
            assert_eq!(sample_at(&x, f32::NAN, method), 0.0);
        }
        assert_eq!(sample_at(&[], 0.0, InterpMethod::Linear), 0.0);
    }

    #[test]
    fn nearest_rounds() {
        let x = [0.0, 1.0, 2.0];
        assert_eq!(sample_at(&x, 0.4, InterpMethod::Nearest), 0.0);
        assert_eq!(sample_at(&x, 0.6, InterpMethod::Nearest), 1.0);
    }

    #[test]
    fn cubic_reproduces_linear_ramps() {
        let x: Vec<f32> = (0..10).map(|i| 2.0 * i as f32).collect();
        for k in 2..7 {
            let idx = k as f32 + 0.37;
            let expected = 2.0 * idx;
            assert!((sample_at(&x, idx, InterpMethod::Cubic) - expected).abs() < 1e-4);
        }
    }

    #[test]
    fn cubic_is_smoother_than_linear_on_sine() {
        let n = 64;
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.5).sin()).collect();
        let mut err_lin = 0.0;
        let mut err_cub = 0.0;
        for k in 8..(n - 8) * 4 {
            let idx = k as f32 / 4.0;
            if idx.fract() == 0.0 {
                continue;
            }
            let truth = (idx * 0.5).sin();
            err_lin += (sample_at(&x, idx, InterpMethod::Linear) - truth).abs();
            err_cub += (sample_at(&x, idx, InterpMethod::Cubic) - truth).abs();
        }
        assert!(err_cub < err_lin);
    }

    #[test]
    fn complex_interpolation_matches_componentwise() {
        let sig: Vec<Complex32> = (0..8).map(|i| Complex32::new(i as f32, -2.0 * i as f32)).collect();
        let v = sample_at_complex(&sig, 2.5, InterpMethod::Linear);
        assert!((v.re - 2.5).abs() < 1e-6);
        assert!((v.im + 5.0).abs() < 1e-6);
        assert_eq!(sample_at_complex(&sig, -1.0, InterpMethod::Linear), Complex32::ZERO);
        assert_eq!(sample_at_complex(&[], 0.0, InterpMethod::Cubic), Complex32::ZERO);
    }

    #[test]
    fn interp1_basic_and_clamping() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 10.0, 30.0];
        assert_eq!(interp1(&xs, &ys, 0.5), Some(5.0));
        assert_eq!(interp1(&xs, &ys, 2.0), Some(20.0));
        assert_eq!(interp1(&xs, &ys, -5.0), Some(0.0));
        assert_eq!(interp1(&xs, &ys, 99.0), Some(30.0));
        assert_eq!(interp1(&[], &[], 1.0), None);
        assert_eq!(interp1(&xs, &ys[..2], 1.0), None);
    }

    #[test]
    fn sample_many_maps_each_index() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let out = sample_many(&x, &[0.5, 2.5, 9.0], InterpMethod::Linear);
        assert_eq!(out, vec![0.5, 2.5, 0.0]);
    }
}
