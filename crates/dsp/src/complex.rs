//! A minimal single-precision complex number type.
//!
//! The ultrasound pipeline stores RF samples, IQ samples and MVDR covariance entries as
//! [`Complex32`]. Only the operations the pipeline needs are implemented; the type is
//! deliberately small and `Copy`.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A single-precision complex number.
///
/// ```
/// use usdsp::Complex32;
/// let a = Complex32::new(1.0, 2.0);
/// let b = Complex32::new(3.0, -1.0);
/// let c = a * b;
/// assert_eq!(c, Complex32::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

/// Views a complex slice as its interleaved `[re, im, re, im, ..]` floats.
///
/// Sound because [`Complex32`] is `#[repr(C)]` with exactly two `f32` fields:
/// its layout is two consecutive `f32`s at `f32` alignment. The SIMD kernels
/// use this to run component-wise complex arithmetic as plain float lanes.
pub fn as_float_slice(values: &[Complex32]) -> &[f32] {
    // SAFETY: see the doc comment — layout and alignment are guaranteed by
    // #[repr(C)], and the lifetime/borrow are inherited from `values`.
    unsafe { std::slice::from_raw_parts(values.as_ptr() as *const f32, values.len() * 2) }
}

/// Mutable variant of [`as_float_slice`].
pub fn as_float_slice_mut(values: &mut [Complex32]) -> &mut [f32] {
    // SAFETY: see `as_float_slice`; exclusive access is inherited from the
    // exclusive borrow of `values`.
    unsafe { std::slice::from_raw_parts_mut(values.as_mut_ptr() as *mut f32, values.len() * 2) }
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex32 = Complex32 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f32) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * exp(i * theta)`.
    #[inline]
    pub fn from_polar(r: f32, theta: f32) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Unit phasor `exp(i * theta)`.
    #[inline]
    pub fn cis(theta: f32) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Phase angle in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Self { re: self.re * k, im: self.im * k }
    }

    /// Multiplicative inverse. Returns `None` when the magnitude is zero.
    #[inline]
    pub fn inv(self) -> Option<Self> {
        let d = self.norm_sqr();
        if d == 0.0 {
            None
        } else {
            Some(Self { re: self.re / d, im: -self.im / d })
        }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f32> for Complex32 {
    fn from(re: f32) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: f32) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex32> for f32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        rhs.scale(self)
    }
}

impl Div for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl DivAssign for Complex32 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Div<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: f32) -> Self {
        Self { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex32 {
    fn sum<I: Iterator<Item = Complex32>>(iter: I) -> Self {
        iter.fold(Complex32::ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Complex32> for Complex32 {
    fn sum<I: Iterator<Item = &'a Complex32>>(iter: I) -> Self {
        iter.fold(Complex32::ZERO, |acc, x| acc + *x)
    }
}

impl std::fmt::Display for Complex32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex32, b: Complex32, tol: f32) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex32::new(2.5, -1.5);
        assert_eq!(a + Complex32::ZERO, a);
        assert_eq!(a * Complex32::ONE, a);
        assert_eq!(a - a, Complex32::ZERO);
        assert_eq!(-a + a, Complex32::ZERO);
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3 + 4i + 6i + 8i^2 = -5 + 10i
        assert_eq!(a * b, Complex32::new(-5.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex32::new(0.7, -2.3);
        let b = Complex32::new(-1.1, 0.4);
        let c = a * b;
        assert!(close(c / b, a, 1e-5));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex32::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex32::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let p = a * a.conj();
        assert!(close(p, Complex32::from_real(25.0), 1e-6));
    }

    #[test]
    fn polar_round_trip() {
        let a = Complex32::from_polar(2.0, 0.75);
        assert!((a.abs() - 2.0).abs() < 1e-6);
        assert!((a.arg() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(Complex32::ZERO.inv().is_none());
        let a = Complex32::new(0.5, -0.25);
        let inv = a.inv().expect("nonzero");
        assert!(close(a * inv, Complex32::ONE, 1e-6));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f32 * 0.39269908;
            assert!((Complex32::cis(theta).abs() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sum_over_iterator() {
        let xs = vec![Complex32::new(1.0, 1.0); 4];
        let s: Complex32 = xs.iter().sum();
        assert_eq!(s, Complex32::new(4.0, 4.0));
        let s2: Complex32 = xs.into_iter().sum();
        assert_eq!(s2, Complex32::new(4.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex32::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scalar_ops() {
        let a = Complex32::new(1.0, -2.0);
        assert_eq!(a * 2.0, Complex32::new(2.0, -4.0));
        assert_eq!(2.0 * a, Complex32::new(2.0, -4.0));
        assert_eq!(a / 2.0, Complex32::new(0.5, -1.0));
    }
}
