//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use usdsp::fft::{fft, ifft, is_pow2, next_pow2};
use usdsp::hilbert::{analytic_signal, envelope};
use usdsp::interp::{interp1, sample_at, InterpMethod};
use usdsp::stats::{mean, percentile, std_dev, Histogram};
use usdsp::{Complex32, Window};

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1.0e3f32..1.0e3f32).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_ifft_round_trip(values in prop::collection::vec(finite_f32(), 1..200)) {
        let n = next_pow2(values.len());
        let mut sig: Vec<Complex32> = values.iter().map(|&v| Complex32::from_real(v)).collect();
        sig.resize(n, Complex32::ZERO);
        let back = ifft(&fft(&sig));
        let scale = values.iter().map(|v| v.abs()).fold(1.0f32, f32::max);
        for (a, b) in sig.iter().zip(back.iter()) {
            prop_assert!((a.re - b.re).abs() <= 1e-3 * scale.max(1.0));
            prop_assert!((a.im - b.im).abs() <= 1e-3 * scale.max(1.0));
        }
    }

    #[test]
    fn fft_is_linear(a in prop::collection::vec(finite_f32(), 64), b in prop::collection::vec(finite_f32(), 64)) {
        let ca: Vec<Complex32> = a.iter().map(|&v| Complex32::from_real(v)).collect();
        let cb: Vec<Complex32> = b.iter().map(|&v| Complex32::from_real(v)).collect();
        let sum: Vec<Complex32> = ca.iter().zip(cb.iter()).map(|(x, y)| *x + *y).collect();
        let fa = fft(&ca);
        let fb = fft(&cb);
        let fsum = fft(&sum);
        let scale = a.iter().chain(b.iter()).map(|v| v.abs()).fold(1.0f32, f32::max);
        for k in 0..64 {
            let lin = fa[k] + fb[k];
            prop_assert!((lin.re - fsum[k].re).abs() <= 1e-2 * scale * 64.0_f32.sqrt());
            prop_assert!((lin.im - fsum[k].im).abs() <= 1e-2 * scale * 64.0_f32.sqrt());
        }
    }

    #[test]
    fn parseval_holds(values in prop::collection::vec(finite_f32(), 128)) {
        let sig: Vec<Complex32> = values.iter().map(|&v| Complex32::from_real(v)).collect();
        let spec = fft(&sig);
        let e_time: f32 = sig.iter().map(|c| c.norm_sqr()).sum();
        let e_freq: f32 = spec.iter().map(|c| c.norm_sqr()).sum::<f32>() / 128.0;
        prop_assert!((e_time - e_freq).abs() <= 1e-3 * e_time.max(1.0));
    }

    #[test]
    fn next_pow2_is_minimal_power(n in 1usize..100_000) {
        let p = next_pow2(n);
        prop_assert!(is_pow2(p));
        prop_assert!(p >= n);
        prop_assert!(p / 2 < n);
    }

    #[test]
    fn envelope_dominates_signal(values in prop::collection::vec(-100.0f32..100.0, 8..300)) {
        let env = envelope(&values).unwrap();
        let peak = values.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        for (e, s) in env.iter().zip(values.iter()) {
            // FFT edge effects allow a small violation proportional to the signal scale.
            prop_assert!(*e + 0.35 * peak.max(1.0) >= s.abs());
            prop_assert!(*e >= 0.0);
        }
    }

    #[test]
    fn analytic_signal_real_part_matches_input(values in prop::collection::vec(-50.0f32..50.0, 4..128)) {
        let a = analytic_signal(&values).unwrap();
        let peak = values.iter().map(|v| v.abs()).fold(1.0f32, f32::max);
        for (orig, anal) in values.iter().zip(a.iter()) {
            prop_assert!((orig - anal.re).abs() <= 2e-3 * peak);
        }
    }

    #[test]
    fn linear_interpolation_is_bounded_by_neighbours(
        values in prop::collection::vec(-10.0f32..10.0, 2..50),
        t in 0.0f32..1.0,
    ) {
        let max_idx = (values.len() - 1) as f32;
        let idx = t * max_idx;
        let v = sample_at(&values, idx, InterpMethod::Linear);
        let lo = values[idx.floor() as usize];
        let hi = values[(idx.ceil() as usize).min(values.len() - 1)];
        let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        prop_assert!(v >= a - 1e-4 && v <= b + 1e-4);
    }

    #[test]
    fn interp1_stays_within_range(
        ys in prop::collection::vec(-10.0f32..10.0, 2..20),
        x in -2.0f32..22.0,
    ) {
        let xs: Vec<f32> = (0..ys.len()).map(|i| i as f32).collect();
        let v = interp1(&xs, &ys, x).unwrap();
        let lo = ys.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = ys.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
    }

    #[test]
    fn window_values_lie_in_unit_interval(len in 1usize..200, alpha in 0.0f32..1.0) {
        for win in [Window::Rectangular, Window::Hann, Window::Hamming, Window::Blackman, Window::Tukey(alpha), Window::Triangular] {
            for w in win.coefficients(len) {
                prop_assert!(w >= -1e-4 && w <= 1.0 + 1e-4);
            }
        }
    }

    #[test]
    fn mean_is_between_min_and_max(values in prop::collection::vec(finite_f32(), 1..100)) {
        let m = mean(&values);
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(m >= lo - 1e-2 && m <= hi + 1e-2);
        prop_assert!(std_dev(&values) >= 0.0);
    }

    #[test]
    fn percentile_is_monotone(values in prop::collection::vec(finite_f32(), 1..100), p1 in 0.0f32..100.0, p2 in 0.0f32..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&values, lo).unwrap();
        let b = percentile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-4);
    }

    #[test]
    fn histogram_total_counts_all_samples(values in prop::collection::vec(-5.0f32..5.0, 0..200), bins in 1usize..64) {
        let h = Histogram::from_values(&values, bins, -5.0, 5.0);
        prop_assert_eq!(h.total(), values.len() as u64);
        let probs = h.probabilities();
        if !values.is_empty() {
            prop_assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn histogram_overlap_is_symmetric_and_bounded(
        a in prop::collection::vec(-1.0f32..1.0, 1..100),
        b in prop::collection::vec(-1.0f32..1.0, 1..100),
    ) {
        let ha = Histogram::from_values(&a, 32, -1.0, 1.0);
        let hb = Histogram::from_values(&b, 32, -1.0, 1.0);
        let o1 = ha.overlap(&hb);
        let o2 = hb.overlap(&ha);
        prop_assert!((o1 - o2).abs() < 1e-5);
        prop_assert!((0.0..=1.0 + 1e-5).contains(&o1));
    }
}
