//! Flat binary (de)serialisation of model weights.
//!
//! The trained Tiny-VBF weights need to move between the trainer, the quantizer and the
//! FPGA-accelerator model. The format is deliberately simple: a magic tag, the number of
//! tensors, and for each tensor its rank, shape and little-endian `f32` payload.

use crate::tensor::Tensor;
use crate::{NeuralError, NeuralResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x5456_4246; // "TVBF"

/// Serialises a list of tensors into a byte buffer.
pub fn tensors_to_bytes(tensors: &[&Tensor]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(tensors.len() as u32);
    for t in tensors {
        buf.put_u32_le(t.shape().len() as u32);
        for &d in t.shape() {
            buf.put_u32_le(d as u32);
        }
        for &v in t.as_slice() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Deserialises tensors previously written by [`tensors_to_bytes`].
///
/// # Errors
///
/// Returns [`NeuralError::DeserializeError`] when the buffer is truncated, the magic tag
/// is wrong, or a shape is invalid.
pub fn tensors_from_bytes(mut data: &[u8]) -> NeuralResult<Vec<Tensor>> {
    let need = |n: usize, what: &str, data: &[u8]| -> NeuralResult<()> {
        if data.remaining() < n {
            Err(NeuralError::DeserializeError(format!("truncated while reading {what}")))
        } else {
            Ok(())
        }
    };
    need(8, "header", data)?;
    let magic = data.get_u32_le();
    if magic != MAGIC {
        return Err(NeuralError::DeserializeError(format!("bad magic 0x{magic:08x}")));
    }
    let count = data.get_u32_le() as usize;
    let mut tensors = Vec::with_capacity(count);
    for i in 0..count {
        need(4, "tensor rank", data)?;
        let rank = data.get_u32_le() as usize;
        if rank == 0 || rank > 8 {
            return Err(NeuralError::DeserializeError(format!("tensor {i} has invalid rank {rank}")));
        }
        need(4 * rank, "tensor shape", data)?;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(data.get_u32_le() as usize);
        }
        let numel: usize = shape.iter().product();
        if numel == 0 {
            return Err(NeuralError::DeserializeError(format!("tensor {i} has a zero dimension")));
        }
        need(4 * numel, "tensor data", data)?;
        let mut values = Vec::with_capacity(numel);
        for _ in 0..numel {
            values.push(data.get_f32_le());
        }
        tensors.push(Tensor::from_vec(values, &shape)?);
    }
    Ok(tensors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_tensors() {
        let a = Tensor::from_vec(vec![1.0, -2.5, 3.25], &[3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|i| i as f32 * 0.1).collect(), &[3, 4]).unwrap();
        let bytes = tensors_to_bytes(&[&a, &b]);
        let restored = tensors_from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[0], a);
        assert_eq!(restored[1], b);
    }

    #[test]
    fn empty_list_round_trips() {
        let bytes = tensors_to_bytes(&[]);
        assert!(tensors_from_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut raw = tensors_to_bytes(&[]).to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(tensors_from_bytes(&raw), Err(NeuralError::DeserializeError(_))));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let a = Tensor::from_vec(vec![1.0; 16], &[4, 4]).unwrap();
        let bytes = tensors_to_bytes(&[&a]);
        for cut in [2usize, 9, 12, bytes.len() - 3] {
            assert!(tensors_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn garbage_rank_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(1);
        buf.put_u32_le(100); // absurd rank
        assert!(tensors_from_bytes(&buf.freeze()).is_err());
    }
}
