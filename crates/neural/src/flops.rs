//! Per-layer FLOP accounting.
//!
//! The paper's headline efficiency claim is operation counts per frame (Tiny-VBF
//! 0.34 GOPs vs Tiny-CNN 11.7 GOPs vs FCNN 1.4 GOPs). These helpers count the
//! multiply–accumulate work of each layer type; the model crates sum them over their
//! architecture and frame size.

/// Operations for a dense layer applied to `tokens` rows: `2 · tokens · in · out`
/// (multiply + add per MAC) plus the bias adds.
pub fn dense_ops(tokens: usize, in_features: usize, out_features: usize) -> u64 {
    (2 * tokens * in_features * out_features + tokens * out_features) as u64
}

/// Operations for multi-head self-attention over `tokens` tokens of width `model_dim`.
///
/// Counts the Q/K/V projections, the scaled dot-product scores, the softmax
/// (≈ 5 ops per score entry), the attention-weighted value sum and the output
/// projection.
pub fn attention_ops(tokens: usize, model_dim: usize, num_heads: usize) -> u64 {
    let head_dim = model_dim / num_heads.max(1);
    let projections = 3 * dense_ops(tokens, model_dim, model_dim);
    let scores = 2 * tokens * tokens * head_dim * num_heads;
    let softmax = 5 * tokens * tokens * num_heads;
    let weighted_values = 2 * tokens * tokens * head_dim * num_heads;
    let output = dense_ops(tokens, model_dim, model_dim);
    projections + (scores + softmax + weighted_values) as u64 + output
}

/// Operations for LayerNorm over `tokens × features`: ~8 ops per element (mean,
/// variance, normalize, scale/shift).
pub fn layernorm_ops(tokens: usize, features: usize) -> u64 {
    (8 * tokens * features) as u64
}

/// Operations for an element-wise activation.
pub fn activation_ops(elements: usize) -> u64 {
    elements as u64
}

/// Operations for a stride-1 "same" 2-D convolution on an `h × w` image.
pub fn conv2d_ops(h: usize, w: usize, in_channels: usize, out_channels: usize, kernel: usize) -> u64 {
    (2 * h * w * in_channels * out_channels * kernel * kernel) as u64
}

/// Converts an operation count to GOPs (10⁹ operations).
pub fn to_gops(ops: u64) -> f64 {
    ops as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ops_formula() {
        assert_eq!(dense_ops(1, 10, 20), 2 * 200 + 20);
        assert_eq!(dense_ops(5, 10, 20), 5 * (2 * 200 + 20));
    }

    #[test]
    fn attention_cost_grows_quadratically_with_tokens() {
        let a = attention_ops(64, 32, 4);
        let b = attention_ops(128, 32, 4);
        // Projection part is linear, score part quadratic: doubling tokens should give
        // between 2x and 4x.
        assert!(b > 2 * a && b < 4 * a, "a {a} b {b}");
    }

    #[test]
    fn conv_cost_matches_formula() {
        assert_eq!(conv2d_ops(8, 8, 3, 16, 3), 2 * 8 * 8 * 3 * 16 * 9);
    }

    #[test]
    fn layernorm_and_activation_are_linear() {
        assert_eq!(layernorm_ops(10, 4), 320);
        assert_eq!(activation_ops(100), 100);
    }

    #[test]
    fn gops_conversion() {
        assert!((to_gops(340_000_000) - 0.34).abs() < 1e-9);
    }
}
