//! 2-D convolution (for the Tiny-CNN baseline).
//!
//! The Tiny-CNN beamformer [7] predicts per-pixel apodization weights from a ToF-corrected
//! region with a small stack of convolutions. This layer implements "same"-padded,
//! stride-1 2-D convolution over a single `(height, width, in_channels)` sample stored
//! as a 3-D [`Tensor`].

use crate::init::he_uniform;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A stride-1, zero-padded ("same") 2-D convolution.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with a square `kernel × kernel` filter.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero or the kernel size is even (odd kernels keep
    /// the "same" padding symmetric).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "Conv2d dimensions must be nonzero");
        assert!(kernel % 2 == 1, "Conv2d kernel size must be odd");
        let fan_in = in_channels * kernel * kernel;
        let weight = he_uniform(fan_in, out_channels, seed);
        Self {
            in_channels,
            out_channels,
            kernel,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[1, out_channels])),
            cached_input: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    #[inline]
    fn weight_at(&self, ky: usize, kx: usize, ci: usize, co: usize) -> f32 {
        let row = (ky * self.kernel + kx) * self.in_channels + ci;
        self.weight.value.at(row, co)
    }

    fn compute(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        let (h, w, c) = (shape[0], shape[1], shape[2]);
        assert_eq!(c, self.in_channels, "Conv2d input channel mismatch");
        let pad = (self.kernel / 2) as isize;
        let mut out = Tensor::zeros(&[h, w, self.out_channels]);
        let in_data = input.as_slice();
        let out_data = out.as_mut_slice();
        for y in 0..h {
            for x in 0..w {
                for co in 0..self.out_channels {
                    let mut acc = self.bias.value.at(0, co);
                    for ky in 0..self.kernel {
                        let iy = y as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..self.kernel {
                            let ix = x as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let base = ((iy as usize) * w + ix as usize) * c;
                            for ci in 0..c {
                                acc += in_data[base + ci] * self.weight_at(ky, kx, ci, co);
                            }
                        }
                    }
                    out_data[(y * w + x) * self.out_channels + co] = acc;
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "Conv2d expects a (h, w, c) tensor");
        self.cached_input = Some(input.clone());
        self.compute(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Conv2d::backward called before forward");
        let shape = input.shape();
        let (h, w, c) = (shape[0], shape[1], shape[2]);
        assert_eq!(grad_output.shape(), &[h, w, self.out_channels], "Conv2d backward shape mismatch");
        let pad = (self.kernel / 2) as isize;

        let mut grad_weight = Tensor::zeros(self.weight.value.shape());
        let mut grad_bias = Tensor::zeros(&[1, self.out_channels]);
        let mut grad_input = Tensor::zeros(&[h, w, c]);
        let in_data = input.as_slice();
        let gout = grad_output.as_slice();

        for y in 0..h {
            for x in 0..w {
                for co in 0..self.out_channels {
                    let g = gout[(y * w + x) * self.out_channels + co];
                    if g == 0.0 {
                        continue;
                    }
                    *grad_bias.at_mut(0, co) += g;
                    for ky in 0..self.kernel {
                        let iy = y as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..self.kernel {
                            let ix = x as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let base = ((iy as usize) * w + ix as usize) * c;
                            for ci in 0..c {
                                let wrow = (ky * self.kernel + kx) * self.in_channels + ci;
                                *grad_weight.at_mut(wrow, co) += g * in_data[base + ci];
                                grad_input.as_mut_slice()[base + ci] += g * self.weight.value.at(wrow, co);
                            }
                        }
                    }
                }
            }
        }
        self.weight.grad = self.weight.grad.add(&grad_weight);
        self.bias.grad = self.bias.grad.add(&grad_bias);
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn infer(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "Conv2d expects a (h, w, c) tensor");
        self.compute(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn output_shape_preserves_spatial_dims() {
        let mut conv = Conv2d::new(3, 5, 3, 0);
        let x = crate::init::normal(&[6, 4, 3], 1.0, 1);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[6, 4, 5]);
        assert_eq!(conv.num_weights(), 3 * 3 * 3 * 5 + 5);
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 5);
        assert_eq!(conv.kernel_size(), 3);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with identity weights copies the single channel through.
        let mut conv = Conv2d::new(1, 1, 1, 0);
        {
            let mut params = conv.params_mut();
            params[0].value = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
            params[1].value = Tensor::zeros(&[1, 1]);
        }
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2, 1]).unwrap();
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
        assert_eq!(conv.infer(&x).as_slice(), x.as_slice());
    }

    #[test]
    fn averaging_kernel_smooths() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        {
            let mut params = conv.params_mut();
            params[0].value = Tensor::full(&[9, 1], 1.0 / 9.0);
            params[1].value = Tensor::zeros(&[1, 1]);
        }
        // An impulse in the middle of a 3x3 image spreads to all 9 outputs.
        let mut x = Tensor::zeros(&[3, 3, 1]);
        x.as_mut_slice()[4] = 9.0;
        let y = conv.forward(&x);
        for &v in y.as_slice() {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_match_numerical_estimates() {
        let conv = Conv2d::new(2, 3, 3, 4);
        let input = crate::init::normal(&[4, 3, 2], 0.7, 9);
        check_layer_gradients(&mut { conv }, &input, 1e-2, 3e-2);
    }

    #[test]
    #[should_panic(expected = "kernel size must be odd")]
    fn even_kernel_panics() {
        let _ = Conv2d::new(1, 1, 2, 0);
    }

    #[test]
    #[should_panic(expected = "expects a (h, w, c) tensor")]
    fn wrong_rank_panics() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        let _ = conv.forward(&Tensor::zeros(&[4, 4]));
    }
}
