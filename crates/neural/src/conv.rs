//! 2-D convolution (for the Tiny-CNN baseline).
//!
//! The Tiny-CNN beamformer \[7\] predicts per-pixel apodization weights from a ToF-corrected
//! region with a small stack of convolutions. This layer implements "same"-padded,
//! stride-1 2-D convolution over a single `(height, width, in_channels)` sample stored
//! as a 3-D [`Tensor`].
//!
//! The forward and backward passes are lowered onto the blocked matmul via
//! **im2col**: the padded receptive field of every output pixel becomes one row
//! of a `(h·w, k·k·c_in)` matrix, turning the convolution into a single matrix
//! product with the `(k·k·c_in, c_out)` weight matrix. The scalar
//! sample-by-sample implementation is kept as [`Conv2d::infer_direct`] for the
//! equivalence tests and benchmarks.

use crate::init::he_uniform;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A stride-1, zero-padded ("same") 2-D convolution.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    cached_cols: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with a square `kernel × kernel` filter.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero or the kernel size is even (odd kernels keep
    /// the "same" padding symmetric).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "Conv2d dimensions must be nonzero");
        assert!(kernel % 2 == 1, "Conv2d kernel size must be odd");
        let fan_in = in_channels * kernel * kernel;
        let weight = he_uniform(fan_in, out_channels, seed);
        Self {
            in_channels,
            out_channels,
            kernel,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[1, out_channels])),
            cached_input: None,
            cached_cols: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    #[inline]
    fn weight_at(&self, ky: usize, kx: usize, ci: usize, co: usize) -> f32 {
        let row = (ky * self.kernel + kx) * self.in_channels + ci;
        self.weight.value.at(row, co)
    }

    /// Lowers the "same"-padded input into its im2col matrix: row `y·w + x`
    /// holds the `kernel²·c_in` receptive-field samples of output pixel
    /// `(y, x)`, with out-of-image taps left at zero.
    fn im2col(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        let (h, w, c) = (shape[0], shape[1], shape[2]);
        let kernel = self.kernel;
        let pad = (kernel / 2) as isize;
        let patch = kernel * kernel * c;
        let mut cols = Tensor::zeros(&[h * w, patch]);
        let in_data = input.as_slice();
        // Each im2col row depends only on its own pixel coordinates, so rows can
        // be filled by disjoint workers.
        let threads = if h * w * patch < (1 << 16) { 1 } else { runtime::default_threads() };
        runtime::par_map_rows(cols.as_mut_slice(), patch, threads, |first_pixel, block| {
            for (local, row) in block.chunks_mut(patch).enumerate() {
                let pixel = first_pixel + local;
                let (y, x) = (pixel / w, pixel % w);
                for ky in 0..kernel {
                    let iy = y as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..kernel {
                        let ix = x as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let src = ((iy as usize) * w + ix as usize) * c;
                        let dst = (ky * kernel + kx) * c;
                        row[dst..dst + c].copy_from_slice(&in_data[src..src + c]);
                    }
                }
            }
        });
        cols
    }

    /// Scatter-adds an im2col-layout gradient matrix (`h·w × kernel²·c_in`)
    /// back onto input coordinates (the adjoint of [`Conv2d::im2col`]).
    fn col2im(&self, cols_grad: &Tensor, h: usize, w: usize) -> Tensor {
        let c = self.in_channels;
        let kernel = self.kernel;
        let pad = (kernel / 2) as isize;
        let patch = kernel * kernel * c;
        let mut grad_input = Tensor::zeros(&[h, w, c]);
        let g = cols_grad.as_slice();
        let out = grad_input.as_mut_slice();
        for pixel in 0..h * w {
            let (y, x) = (pixel / w, pixel % w);
            let row = &g[pixel * patch..(pixel + 1) * patch];
            for ky in 0..kernel {
                let iy = y as isize + ky as isize - pad;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for kx in 0..kernel {
                    let ix = x as isize + kx as isize - pad;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    let dst = ((iy as usize) * w + ix as usize) * c;
                    let src = (ky * kernel + kx) * c;
                    for ci in 0..c {
                        out[dst + ci] += row[src + ci];
                    }
                }
            }
        }
        grad_input
    }

    fn compute(&self, input: &Tensor) -> (Tensor, Tensor) {
        let shape = input.shape();
        let (h, w) = (shape[0], shape[1]);
        assert_eq!(shape[2], self.in_channels, "Conv2d input channel mismatch");
        let cols = self.im2col(input);
        let out = cols
            .matmul(&self.weight.value)
            .add_row_broadcast(&self.bias.value)
            .reshape(&[h, w, self.out_channels])
            .expect("conv output reshape cannot fail");
        (out, cols)
    }

    /// Reference sample-by-sample convolution (the pre-im2col implementation),
    /// kept for equivalence tests and before/after benchmarks.
    pub fn infer_direct(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        let (h, w, c) = (shape[0], shape[1], shape[2]);
        assert_eq!(c, self.in_channels, "Conv2d input channel mismatch");
        let pad = (self.kernel / 2) as isize;
        let mut out = Tensor::zeros(&[h, w, self.out_channels]);
        let in_data = input.as_slice();
        let out_data = out.as_mut_slice();
        for y in 0..h {
            for x in 0..w {
                for co in 0..self.out_channels {
                    let mut acc = self.bias.value.at(0, co);
                    for ky in 0..self.kernel {
                        let iy = y as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..self.kernel {
                            let ix = x as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let base = ((iy as usize) * w + ix as usize) * c;
                            for ci in 0..c {
                                acc += in_data[base + ci] * self.weight_at(ky, kx, ci, co);
                            }
                        }
                    }
                    out_data[(y * w + x) * self.out_channels + co] = acc;
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "Conv2d expects a (h, w, c) tensor");
        self.cached_input = Some(input.clone());
        let (out, cols) = self.compute(input);
        self.cached_cols = Some(cols);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Conv2d::backward called before forward");
        let cols = self.cached_cols.as_ref().expect("Conv2d::backward called before forward");
        let shape = input.shape();
        let (h, w) = (shape[0], shape[1]);
        assert_eq!(grad_output.shape(), &[h, w, self.out_channels], "Conv2d backward shape mismatch");

        // With y = im2col(x) · W + b: dW = im2col(x)ᵀ · dy, db = Σ_pixels dy,
        // dx = col2im(dy · Wᵀ).
        let gout = grad_output
            .reshape(&[h * w, self.out_channels])
            .expect("conv gradient reshape cannot fail");
        let grad_weight = cols.transpose().matmul(&gout);
        let grad_bias = gout.sum_rows();
        let grad_cols = gout.matmul(&self.weight.value.transpose());
        let grad_input = self.col2im(&grad_cols, h, w);

        self.weight.grad = self.weight.grad.add(&grad_weight);
        self.bias.grad = self.bias.grad.add(&grad_bias);
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn infer(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "Conv2d expects a (h, w, c) tensor");
        self.compute(input).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn output_shape_preserves_spatial_dims() {
        let mut conv = Conv2d::new(3, 5, 3, 0);
        let x = crate::init::normal(&[6, 4, 3], 1.0, 1);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[6, 4, 5]);
        assert_eq!(conv.num_weights(), 3 * 3 * 3 * 5 + 5);
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 5);
        assert_eq!(conv.kernel_size(), 3);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with identity weights copies the single channel through.
        let mut conv = Conv2d::new(1, 1, 1, 0);
        {
            let mut params = conv.params_mut();
            params[0].value = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
            params[1].value = Tensor::zeros(&[1, 1]);
        }
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2, 1]).unwrap();
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
        assert_eq!(conv.infer(&x).as_slice(), x.as_slice());
    }

    #[test]
    fn averaging_kernel_smooths() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        {
            let mut params = conv.params_mut();
            params[0].value = Tensor::full(&[9, 1], 1.0 / 9.0);
            params[1].value = Tensor::zeros(&[1, 1]);
        }
        // An impulse in the middle of a 3x3 image spreads to all 9 outputs.
        let mut x = Tensor::zeros(&[3, 3, 1]);
        x.as_mut_slice()[4] = 9.0;
        let y = conv.forward(&x);
        for &v in y.as_slice() {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_match_numerical_estimates() {
        let conv = Conv2d::new(2, 3, 3, 4);
        let input = crate::init::normal(&[4, 3, 2], 0.7, 9);
        check_layer_gradients(&mut { conv }, &input, 1e-2, 3e-2);
    }

    #[test]
    fn im2col_forward_matches_direct_convolution() {
        for (h, w, cin, cout, k, seed) in
            [(5, 4, 2, 3, 3, 1), (3, 7, 1, 2, 5, 2), (6, 6, 3, 4, 1, 3), (1, 1, 2, 2, 3, 4), (9, 2, 4, 1, 3, 5)]
        {
            let mut conv = Conv2d::new(cin, cout, k, seed);
            let x = crate::init::normal(&[h, w, cin], 1.0, seed + 10);
            let fast = conv.forward(&x);
            let direct = conv.infer_direct(&x);
            assert_eq!(fast.shape(), direct.shape());
            for (a, b) in fast.as_slice().iter().zip(direct.as_slice()) {
                assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "h{h} w{w} cin{cin} cout{cout} k{k}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "kernel size must be odd")]
    fn even_kernel_panics() {
        let _ = Conv2d::new(1, 1, 2, 0);
    }

    #[test]
    #[should_panic(expected = "expects a (h, w, c) tensor")]
    fn wrong_rank_panics() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        let _ = conv.forward(&Tensor::zeros(&[4, 4]));
    }
}
