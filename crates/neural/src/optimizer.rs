//! Optimizers (SGD and Adam).
//!
//! The paper optimises with Adam under a polynomial-decay learning-rate schedule;
//! [`Adam`] follows the standard bias-corrected update.

use crate::layer::Param;

/// Optimizer interface: consumes accumulated gradients and updates parameter values.
pub trait Optimizer {
    /// Applies one update step to the given parameters using their accumulated
    /// gradients, then zeroes the gradients.
    fn step(&mut self, params: Vec<&mut Param>);

    /// Sets the learning rate (used by the schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics when the learning rate is not positive or momentum is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "Sgd: momentum must be in [0, 1)");
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: Vec<&mut Param>) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        }
        for (param, velocity) in params.into_iter().zip(self.velocity.iter_mut()) {
            debug_assert_eq!(param.numel(), velocity.len());
            for ((value, grad), vel) in param
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(param.grad.as_slice().to_vec())
                .zip(velocity.iter_mut())
            {
                *vel = self.momentum * *vel - self.lr * grad;
                *value += *vel;
            }
            param.zero_grad();
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step_count: u64,
    first_moment: Vec<Vec<f32>>,
    second_moment: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the paper's defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics when the learning rate is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Number of optimisation steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: Vec<&mut Param>) {
        if self.first_moment.len() != params.len() {
            self.first_moment = params.iter().map(|p| vec![0.0; p.numel()]).collect();
            self.second_moment = params.iter().map(|p| vec![0.0; p.numel()]).collect();
            self.step_count = 0;
        }
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (idx, param) in params.into_iter().enumerate() {
            let m = &mut self.first_moment[idx];
            let v = &mut self.second_moment[idx];
            debug_assert_eq!(param.numel(), m.len());
            let grads = param.grad.as_slice().to_vec();
            for (i, value) in param.value.as_mut_slice().iter_mut().enumerate() {
                let g = grads[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                *value -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            param.zero_grad();
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn quadratic_param(start: f32) -> Param {
        Param::new(Tensor::from_vec(vec![start], &[1]).unwrap())
    }

    fn minimize<O: Optimizer>(optimizer: &mut O, start: f32, steps: usize) -> f32 {
        // Minimize f(x) = (x - 3)^2; grad = 2 (x - 3).
        let mut p = quadratic_param(start);
        for _ in 0..steps {
            let x = p.value.as_slice()[0];
            p.grad = Tensor::from_vec(vec![2.0 * (x - 3.0)], &[1]).unwrap();
            optimizer.step(vec![&mut p]);
        }
        p.value.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let x = minimize(&mut sgd, 10.0, 200);
        assert!((x - 3.0).abs() < 1e-3, "x {x}");
    }

    #[test]
    fn sgd_with_momentum_also_converges() {
        let mut sgd = Sgd::new(0.05, 0.9);
        let x = minimize(&mut sgd, -5.0, 400);
        assert!((x - 3.0).abs() < 1e-2, "x {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.2);
        let x = minimize(&mut adam, 10.0, 400);
        assert!((x - 3.0).abs() < 1e-2, "x {x}");
        assert_eq!(adam.steps_taken(), 400);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut adam = Adam::new(0.01);
        let mut p = quadratic_param(1.0);
        p.grad = Tensor::from_vec(vec![5.0], &[1]).unwrap();
        adam.step(vec![&mut p]);
        assert_eq!(p.grad.as_slice()[0], 0.0);
    }

    #[test]
    fn learning_rate_can_be_scheduled() {
        let mut adam = Adam::new(1e-4);
        assert!((adam.learning_rate() - 1e-4).abs() < 1e-12);
        adam.set_learning_rate(1e-6);
        assert!((adam.learning_rate() - 1e-6).abs() < 1e-12);
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.set_learning_rate(0.5);
        assert_eq!(sgd.learning_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn invalid_lr_panics() {
        let _ = Adam::new(0.0);
    }
}
