//! Parameter initialisation.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Glorot (Xavier) uniform initialisation for a weight matrix of shape
/// `[fan_in, fan_out]`.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], -limit, limit, seed)
}

/// He (Kaiming) uniform initialisation, appropriate before ReLU activations.
pub fn he_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let limit = (6.0 / fan_in as f32).sqrt();
    uniform(&[fan_in, fan_out], -limit, limit, seed)
}

/// Uniform random tensor in `[lo, hi)`.
///
/// # Panics
///
/// Panics when `hi <= lo` or the shape is invalid.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    assert!(hi > lo, "uniform: hi must exceed lo");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tensor::zeros(shape);
    for v in t.as_mut_slice() {
        *v = rng.gen_range(lo..hi);
    }
    t
}

/// Standard-normal random tensor scaled by `std`.
pub fn normal(shape: &[usize], std: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tensor::zeros(shape);
    for v in t.as_mut_slice() {
        let u1: f32 = rng.gen_range(1e-9..1.0f32);
        let u2: f32 = rng.gen_range(0.0..1.0f32);
        *v = std * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_respects_limit_and_seed() {
        let w = glorot_uniform(64, 32, 7);
        let limit = (6.0f32 / 96.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
        assert_eq!(w, glorot_uniform(64, 32, 7));
        assert_ne!(w, glorot_uniform(64, 32, 8));
        assert_eq!(w.shape(), &[64, 32]);
    }

    #[test]
    fn he_limit_is_larger_than_glorot_for_same_fan_in() {
        let he_limit = (6.0f32 / 64.0).sqrt();
        let w = he_uniform(64, 32, 3);
        assert!(w.as_slice().iter().all(|v| v.abs() <= he_limit));
    }

    #[test]
    fn normal_has_roughly_requested_std() {
        let t = normal(&[5000], 2.0, 11);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 5000.0;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn invalid_uniform_range_panics() {
        let _ = uniform(&[2], 1.0, 1.0, 0);
    }
}
