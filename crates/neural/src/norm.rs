//! Layer normalisation.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// LayerNorm over the last dimension of a `(tokens, features)` matrix, with learnable
/// per-feature scale (γ) and shift (β).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    epsilon: f32,
    cache: Option<NormCache>,
}

#[derive(Debug, Clone)]
struct NormCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a LayerNorm for `features`-wide rows with γ = 1, β = 0.
    ///
    /// # Panics
    ///
    /// Panics when `features == 0`.
    pub fn new(features: usize) -> Self {
        assert!(features > 0, "LayerNorm features must be nonzero");
        Self {
            gamma: Param::new(Tensor::full(&[1, features], 1.0)),
            beta: Param::new(Tensor::zeros(&[1, features])),
            epsilon: 1e-5,
            cache: None,
        }
    }

    /// Feature width this layer expects.
    pub fn features(&self) -> usize {
        self.gamma.value.shape()[1]
    }

    fn normalize(&self, input: &Tensor) -> (Tensor, Vec<f32>) {
        let (n, m) = (input.rows(), input.cols());
        let mut normalized = Tensor::zeros(&[n, m]);
        let mut inv_stds = Vec::with_capacity(n);
        for i in 0..n {
            let mean: f32 = (0..m).map(|j| input.at(i, j)).sum::<f32>() / m as f32;
            let var: f32 = (0..m).map(|j| (input.at(i, j) - mean).powi(2)).sum::<f32>() / m as f32;
            let inv_std = 1.0 / (var + self.epsilon).sqrt();
            inv_stds.push(inv_std);
            for j in 0..m {
                *normalized.at_mut(i, j) = (input.at(i, j) - mean) * inv_std;
            }
        }
        (normalized, inv_stds)
    }

    fn scale_shift(&self, normalized: &Tensor) -> Tensor {
        let (n, m) = (normalized.rows(), normalized.cols());
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..n {
            for j in 0..m {
                *out.at_mut(i, j) = normalized.at(i, j) * self.gamma.value.at(0, j) + self.beta.value.at(0, j);
            }
        }
        out
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.cols(), self.features(), "LayerNorm feature mismatch");
        let (normalized, inv_std) = self.normalize(input);
        let out = self.scale_shift(&normalized);
        self.cache = Some(NormCache { normalized, inv_std });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("LayerNorm::backward called before forward");
        let normalized = &cache.normalized;
        let (n, m) = (normalized.rows(), normalized.cols());
        assert_eq!(grad_output.shape(), normalized.shape(), "LayerNorm backward shape mismatch");

        // Parameter gradients.
        let mut grad_gamma = Tensor::zeros(&[1, m]);
        let mut grad_beta = Tensor::zeros(&[1, m]);
        for i in 0..n {
            for j in 0..m {
                *grad_gamma.at_mut(0, j) += grad_output.at(i, j) * normalized.at(i, j);
                *grad_beta.at_mut(0, j) += grad_output.at(i, j);
            }
        }
        self.gamma.grad = self.gamma.grad.add(&grad_gamma);
        self.beta.grad = self.beta.grad.add(&grad_beta);

        // Input gradient (standard LayerNorm backward):
        // dx = (1/σ) * (dxhat − mean(dxhat) − xhat·mean(dxhat ⊙ xhat))
        let mut grad_input = Tensor::zeros(&[n, m]);
        for i in 0..n {
            let inv_std = cache.inv_std[i];
            let mut mean_dxhat = 0.0f32;
            let mut mean_dxhat_xhat = 0.0f32;
            let mut dxhat = vec![0.0f32; m];
            for j in 0..m {
                dxhat[j] = grad_output.at(i, j) * self.gamma.value.at(0, j);
                mean_dxhat += dxhat[j];
                mean_dxhat_xhat += dxhat[j] * normalized.at(i, j);
            }
            mean_dxhat /= m as f32;
            mean_dxhat_xhat /= m as f32;
            for j in 0..m {
                *grad_input.at_mut(i, j) =
                    inv_std * (dxhat[j] - mean_dxhat - normalized.at(i, j) * mean_dxhat_xhat);
            }
        }
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn infer(&mut self, input: &Tensor) -> Tensor {
        let (normalized, _) = self.normalize(input);
        self.scale_shift(&normalized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn output_rows_have_zero_mean_unit_variance() {
        let mut ln = LayerNorm::new(8);
        let x = Tensor::from_vec((0..16).map(|i| i as f32 * 0.7 - 3.0).collect(), &[2, 8]).unwrap();
        let y = ln.forward(&x);
        for i in 0..2 {
            let mean: f32 = (0..8).map(|j| y.at(i, j)).sum::<f32>() / 8.0;
            let var: f32 = (0..8).map(|j| (y.at(i, j) - mean).powi(2)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn weight_count_is_two_per_feature() {
        let ln = LayerNorm::new(32);
        assert_eq!(ln.num_weights(), 64);
        assert_eq!(ln.features(), 32);
    }

    #[test]
    fn infer_matches_forward() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[1, 4]).unwrap();
        let a = ln.forward(&x);
        let b = ln.infer(&x);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_match_numerical_estimates() {
        let ln = LayerNorm::new(5);
        let input = Tensor::from_vec(vec![0.4, -0.9, 1.3, 0.2, -0.1, 0.8, 0.3, -1.2, 0.05, 0.6], &[2, 5]).unwrap();
        check_layer_gradients(&mut { ln }, &input, 1e-2, 3e-2);
    }

    #[test]
    fn constant_rows_are_handled_without_nan() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::full(&[2, 4], 3.0);
        let y = ln.forward(&x);
        assert!(y.is_finite());
        // With zero variance, the normalized output is ~0 so the result is beta (= 0).
        assert!(y.max_abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn wrong_width_panics() {
        let mut ln = LayerNorm::new(4);
        let _ = ln.forward(&Tensor::zeros(&[1, 5]));
    }
}
