//! Fully connected (dense) layers.

use crate::init::glorot_uniform;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A dense layer `y = x·W + b` operating on `(tokens, in_features)` matrices.
///
/// ```
/// use neural::{dense::Dense, layer::Layer, tensor::Tensor};
/// let mut layer = Dense::new(3, 2, 0);
/// let x = Tensor::zeros(&[4, 3]);
/// assert_eq!(layer.forward(&x).shape(), &[4, 2]);
/// assert_eq!(layer.num_weights(), 3 * 2 + 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Glorot-initialised weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0, "Dense dimensions must be nonzero");
        Self {
            weight: Param::new(glorot_uniform(in_features, out_features, seed)),
            bias: Param::new(Tensor::zeros(&[1, out_features])),
            cached_input: None,
        }
    }

    /// Creates a layer from explicit weights (used by tests and the quantizer).
    ///
    /// # Panics
    ///
    /// Panics when the bias length does not match the weight's output dimension.
    pub fn from_weights(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().len(), 2, "weight must be 2-D");
        assert_eq!(bias.numel(), weight.shape()[1], "bias length must equal out features");
        let bias2d = bias.reshape(&[1, weight.shape()[1]]).expect("bias reshape");
        Self { weight: Param::new(weight), bias: Param::new(bias2d), cached_input: None }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Immutable view of the weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Immutable view of the bias row.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Dense expects a 2-D input");
        assert_eq!(input.cols(), self.in_features(), "Dense input feature mismatch");
        self.cached_input = Some(input.clone());
        input.matmul(&self.weight.value).add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Dense::backward called before forward");
        // dW = xᵀ · dy, db = Σ_rows dy, dx = dy · Wᵀ
        let grad_w = input.transpose().matmul(grad_output);
        let grad_b = grad_output.sum_rows();
        self.weight.grad = self.weight.grad.add(&grad_w);
        self.bias.grad = self.bias.grad.add(&grad_b);
        grad_output.matmul(&self.weight.value.transpose())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn infer(&mut self, input: &Tensor) -> Tensor {
        input.matmul(&self.weight.value).add_row_broadcast(&self.bias.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn forward_matches_manual_computation() {
        let weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        let bias = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let mut layer = Dense::from_weights(weight, bias);
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]).unwrap();
        let y = layer.forward(&x);
        // [1*1 + 0*3 + (-1)*5 + 0.5, 1*2 + 0*4 + (-1)*6 - 0.5] = [-3.5, -4.5]
        assert_eq!(y.as_slice(), &[-3.5, -4.5]);
        assert_eq!(layer.infer(&x).as_slice(), &[-3.5, -4.5]);
    }

    #[test]
    fn weight_count_matches_formula() {
        let layer = Dense::new(16, 8, 0);
        assert_eq!(layer.num_weights(), 16 * 8 + 8);
        assert_eq!(layer.in_features(), 16);
        assert_eq!(layer.out_features(), 8);
        assert_eq!(layer.weight().shape(), &[16, 8]);
        assert_eq!(layer.bias().shape(), &[1, 8]);
    }

    #[test]
    fn gradients_match_numerical_estimates() {
        let layer = Dense::new(4, 3, 5);
        let input = Tensor::from_vec(
            vec![0.3, -0.7, 0.2, 1.1, -0.4, 0.9, 0.05, -0.6],
            &[2, 4],
        )
        .unwrap();
        check_layer_gradients(&mut { layer }, &input, 1e-2, 2e-2);
    }

    #[test]
    fn backward_accumulates_gradients_across_calls() {
        let mut layer = Dense::new(2, 2, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let dy = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        layer.forward(&x);
        layer.backward(&dy);
        let g1 = layer.params()[0].grad.clone();
        layer.forward(&x);
        layer.backward(&dy);
        let g2 = layer.params()[0].grad.clone();
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((b - 2.0 * a).abs() < 1e-5);
        }
        layer.zero_grads();
        assert_eq!(layer.params()[0].grad, Tensor::zeros(&[2, 2]));
    }

    #[test]
    #[should_panic(expected = "called before forward")]
    fn backward_before_forward_panics() {
        let mut layer = Dense::new(2, 2, 0);
        let dy = Tensor::zeros(&[1, 2]);
        let _ = layer.backward(&dy);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn wrong_input_width_panics() {
        let mut layer = Dense::new(3, 2, 0);
        let _ = layer.forward(&Tensor::zeros(&[1, 4]));
    }
}
