//! A minimal neural-network framework for the Tiny-VBF reproduction.
//!
//! The paper implements its models in TensorFlow 2.4; nothing that heavy is available
//! here, and the models are tiny (≈1.5 M weights), so this crate provides a small,
//! dependency-free layer library with handwritten forward and backward passes:
//!
//! * [`tensor`] — a dense row-major tensor with the matrix operations the layers need,
//! * [`init`] — Glorot/He initialisation with seeded RNG,
//! * [`layer`] — the [`layer::Layer`] trait and parameter plumbing,
//! * [`dense`] — fully connected layers,
//! * [`activation`] — ReLU / Tanh / row-wise softmax,
//! * [`norm`] — LayerNorm,
//! * [`attention`] — multi-head self-attention (the ViT building block),
//! * [`conv`] — 2-D convolution (for the Tiny-CNN baseline),
//! * [`loss`] — mean-squared-error loss,
//! * [`optimizer`] — SGD and Adam,
//! * [`schedule`] — polynomial-decay / cyclic learning-rate schedules,
//! * [`flops`] — per-layer FLOP accounting,
//! * [`serialize`] — flat binary weight (de)serialisation,
//! * [`gradcheck`] — numerical gradient checking used by the test-suites.
//!
//! # Example
//!
//! ```
//! use neural::dense::Dense;
//! use neural::layer::Layer;
//! use neural::tensor::Tensor;
//!
//! let mut layer = Dense::new(4, 2, 42);
//! let x = Tensor::from_vec(vec![1.0, -0.5, 0.25, 2.0], &[1, 4])?;
//! let y = layer.forward(&x);
//! assert_eq!(y.shape(), &[1, 2]);
//! # Ok::<(), neural::NeuralError>(())
//! ```

#![deny(missing_docs)]

pub mod activation;
pub mod attention;
pub mod conv;
pub mod dense;
pub mod flops;
pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod loss;
pub mod norm;
pub mod optimizer;
pub mod schedule;
pub mod serialize;
pub mod tensor;

pub use layer::Layer;
pub use tensor::Tensor;

use std::error::Error;
use std::fmt;

/// Errors produced by the neural-network framework.
#[derive(Debug, Clone, PartialEq)]
pub enum NeuralError {
    /// Tensor shapes are inconsistent for the requested operation.
    ShapeMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the provided shape.
        actual: String,
    },
    /// A configuration value was invalid (zero sizes, head counts that do not divide
    /// the model dimension, …).
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Violated constraint.
        reason: String,
    },
    /// Serialized weights could not be decoded.
    DeserializeError(
        /// Human-readable description of the failure.
        String,
    ),
}

impl fmt::Display for NeuralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuralError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            NeuralError::InvalidConfig { name, reason } => write!(f, "invalid config `{name}`: {reason}"),
            NeuralError::DeserializeError(msg) => write!(f, "failed to deserialize weights: {msg}"),
        }
    }
}

impl Error for NeuralError {}

/// Convenience result alias.
pub type NeuralResult<T> = Result<T, NeuralError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(NeuralError::ShapeMismatch { expected: "2x2".into(), actual: "3x1".into() }.to_string().contains("2x2"));
        assert!(NeuralError::InvalidConfig { name: "heads", reason: "must divide dim".into() }.to_string().contains("heads"));
        assert!(NeuralError::DeserializeError("truncated".into()).to_string().contains("truncated"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeuralError>();
    }
}
