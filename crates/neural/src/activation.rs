//! Activation functions (ReLU, Tanh) and row-wise softmax.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit, applied element-wise.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let out = input.mul(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("Relu::backward called before forward");
        grad_output.mul(mask)
    }

    fn infer(&mut self, input: &Tensor) -> Tensor {
        input.map(|v| v.max(0.0))
    }
}

/// Hyperbolic-tangent activation, used at the Tiny-VBF decoder output so the predicted
/// IQ values stay inside the `[-1, 1]` normalisation interval.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a Tanh activation layer.
    pub fn new() -> Self {
        Self { output: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(|v| v.tanh());
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("Tanh::backward called before forward");
        let deriv = out.map(|y| 1.0 - y * y);
        grad_output.mul(&deriv)
    }

    fn infer(&mut self, input: &Tensor) -> Tensor {
        input.map(|v| v.tanh())
    }
}

/// Numerically stable softmax over the last dimension of a 2-D tensor (one distribution
/// per row) — the attention-score normalisation.
pub fn softmax_rows(input: &Tensor) -> Tensor {
    assert_eq!(input.shape().len(), 2, "softmax_rows expects a 2-D tensor");
    let (n, m) = (input.rows(), input.cols());
    let mut out = Tensor::zeros(&[n, m]);
    for i in 0..n {
        let row_max = (0..m).map(|j| input.at(i, j)).fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for j in 0..m {
            let e = (input.at(i, j) - row_max).exp();
            *out.at_mut(i, j) = e;
            denom += e;
        }
        for j in 0..m {
            *out.at_mut(i, j) /= denom;
        }
    }
    out
}

/// Backward pass of [`softmax_rows`]: given the softmax output `y` and `dL/dy`, returns
/// `dL/dx` using `dx = y ⊙ (dy − Σ_j dy_j·y_j)` per row.
pub fn softmax_rows_backward(softmax_output: &Tensor, grad_output: &Tensor) -> Tensor {
    assert_eq!(softmax_output.shape(), grad_output.shape(), "softmax backward shape mismatch");
    let (n, m) = (softmax_output.rows(), softmax_output.cols());
    let mut out = Tensor::zeros(&[n, m]);
    for i in 0..n {
        let mut dot = 0.0f32;
        for j in 0..m {
            dot += grad_output.at(i, j) * softmax_output.at(i, j);
        }
        for j in 0..m {
            *out.at_mut(i, j) = softmax_output.at(i, j) * (grad_output.at(i, j) - dot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::numerical_gradient;

    #[test]
    fn relu_zeroes_negatives_and_passes_positives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -0.5], &[2, 2]).unwrap();
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Tensor::full(&[2, 2], 1.0);
        let dx = relu.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(relu.infer(&x).as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(relu.num_weights(), 0);
    }

    #[test]
    fn tanh_saturates_and_matches_derivative() {
        let mut tanh = Tanh::new();
        let x = Tensor::from_vec(vec![0.0, 10.0, -10.0, 0.5], &[1, 4]).unwrap();
        let y = tanh.forward(&x);
        assert_eq!(y.at(0, 0), 0.0);
        assert!((y.at(0, 1) - 1.0).abs() < 1e-4);
        assert!((y.at(0, 2) + 1.0).abs() < 1e-4);
        let dy = Tensor::full(&[1, 4], 1.0);
        let dx = tanh.backward(&dy);
        // derivative at 0 is 1, at saturation ~0
        assert!((dx.at(0, 0) - 1.0).abs() < 1e-6);
        assert!(dx.at(0, 1) < 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let y = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = (0..3).map(|j| y.at(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(y.at(i, 2) > y.at(i, 1) && y.at(i, 1) > y.at(i, 0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[1, 3]).unwrap();
        let y = softmax_rows(&x);
        assert!(y.is_finite());
        let shifted = softmax_rows(&Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]).unwrap());
        for j in 0..3 {
            assert!((y.at(0, j) - shifted.at(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_matches_numerical_gradient() {
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.8, 0.1], &[1, 4]).unwrap();
        // Loss = sum of softmax output weighted by fixed coefficients.
        let coeffs = [0.7f32, -0.3, 0.5, 0.2];
        let loss = |t: &Tensor| -> f32 {
            let y = softmax_rows(t);
            (0..4).map(|j| coeffs[j] * y.at(0, j)).sum()
        };
        let numeric = numerical_gradient(&x, loss, 1e-3);
        let y = softmax_rows(&x);
        let dy = Tensor::from_vec(coeffs.to_vec(), &[1, 4]).unwrap();
        let analytic = softmax_rows_backward(&y, &dy);
        for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
            assert!((a - n).abs() < 1e-3, "{a} vs {n}");
        }
    }
}
