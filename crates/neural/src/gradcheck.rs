//! Numerical gradient checking.
//!
//! Every handwritten backward pass in this crate is validated against central finite
//! differences. The checker uses the surrogate loss `L = ½‖f(x)‖²`, whose gradient with
//! respect to the layer output is simply the output itself.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Central-difference gradient of a scalar function of a tensor.
pub fn numerical_gradient<F: FnMut(&Tensor) -> f32>(input: &Tensor, mut f: F, epsilon: f32) -> Tensor {
    let mut grad = Tensor::zeros(input.shape());
    let mut probe = input.clone();
    for i in 0..input.numel() {
        let original = probe.as_slice()[i];
        probe.as_mut_slice()[i] = original + epsilon;
        let plus = f(&probe);
        probe.as_mut_slice()[i] = original - epsilon;
        let minus = f(&probe);
        probe.as_mut_slice()[i] = original;
        grad.as_mut_slice()[i] = (plus - minus) / (2.0 * epsilon);
    }
    grad
}

/// Checks a layer's input and parameter gradients against finite differences under the
/// surrogate loss `L = ½‖forward(x)‖²`.
///
/// # Panics
///
/// Panics (failing the calling test) when any gradient component deviates from the
/// numerical estimate by more than `tolerance` (absolute) and 5 % (relative).
pub fn check_layer_gradients<L: Layer>(layer: &mut L, input: &Tensor, epsilon: f32, tolerance: f32) {
    // Analytic gradients.
    layer.zero_grads();
    let output = layer.forward(input);
    let grad_output = output.clone();
    let analytic_input_grad = layer.backward(&grad_output);
    let analytic_param_grads: Vec<Tensor> = layer.params().iter().map(|p| p.grad.clone()).collect();

    // Numerical input gradient.
    let numeric_input_grad = numerical_gradient(input, |x| 0.5 * layer_loss(layer, x), epsilon);
    compare("input", &analytic_input_grad, &numeric_input_grad, tolerance);

    // Numerical parameter gradients, one parameter tensor at a time.
    for (param_idx, analytic) in analytic_param_grads.iter().enumerate() {
        let numel = analytic.numel();
        let mut numeric = Tensor::zeros(analytic.shape());
        for i in 0..numel {
            let plus = perturbed_loss(layer, input, param_idx, i, epsilon);
            let minus = perturbed_loss(layer, input, param_idx, i, -epsilon);
            numeric.as_mut_slice()[i] = (plus - minus) / (2.0 * epsilon);
        }
        compare(&format!("param {param_idx}"), analytic, &numeric, tolerance);
    }
}

fn layer_loss<L: Layer>(layer: &mut L, input: &Tensor) -> f32 {
    let out = layer.forward(input);
    out.sum_squares()
}

fn perturbed_loss<L: Layer>(layer: &mut L, input: &Tensor, param_idx: usize, element: usize, delta: f32) -> f32 {
    {
        let mut params = layer.params_mut();
        params[param_idx].value.as_mut_slice()[element] += delta;
    }
    let loss = 0.5 * layer_loss(layer, input);
    {
        let mut params = layer.params_mut();
        params[param_idx].value.as_mut_slice()[element] -= delta;
    }
    loss
}

fn compare(label: &str, analytic: &Tensor, numeric: &Tensor, tolerance: f32) {
    assert_eq!(analytic.shape(), numeric.shape(), "{label}: gradient shape mismatch");
    for (i, (a, n)) in analytic.as_slice().iter().zip(numeric.as_slice()).enumerate() {
        let abs_err = (a - n).abs();
        let rel_err = abs_err / a.abs().max(n.abs()).max(1e-3);
        assert!(
            abs_err < tolerance || rel_err < 0.05,
            "{label}[{i}]: analytic {a} vs numeric {n} (abs {abs_err}, rel {rel_err})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numerical_gradient_of_quadratic_is_linear() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let grad = numerical_gradient(&x, |t| t.sum_squares(), 1e-3);
        for (g, v) in grad.as_slice().iter().zip(x.as_slice()) {
            assert!((g - 2.0 * v).abs() < 1e-2);
        }
    }

    #[test]
    fn numerical_gradient_of_constant_is_zero() {
        let x = Tensor::from_vec(vec![0.5, 0.25], &[2]).unwrap();
        let grad = numerical_gradient(&x, |_| 7.0, 1e-3);
        assert!(grad.max_abs() < 1e-6);
    }
}
