//! Multi-head self-attention.
//!
//! The Tiny-VBF encoder contains two transformer blocks, each built around the
//! multi-head attention layer implemented here. The layer processes one token matrix
//! `(num_patches, model_dim)` at a time: linear Q/K/V projections, per-head scaled
//! dot-product attention with a row-wise softmax, head concatenation and an output
//! projection — exactly the operation sequence the paper's FPGA accelerator schedules
//! onto its four processing elements (Figs. 6–8).

use crate::activation::{softmax_rows, softmax_rows_backward};
use crate::init::glorot_uniform;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use crate::{NeuralError, NeuralResult};

/// Multi-head self-attention layer.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    model_dim: usize,
    num_heads: usize,
    wq: Param,
    wk: Param,
    wv: Param,
    wo: Param,
    cache: Option<AttentionCache>,
}

#[derive(Debug, Clone)]
struct AttentionCache {
    input: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attention: Vec<Tensor>,
    concat: Tensor,
}

impl MultiHeadAttention {
    /// Creates a multi-head attention layer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidConfig`] when `num_heads` does not divide
    /// `model_dim` or either is zero.
    pub fn new(model_dim: usize, num_heads: usize, seed: u64) -> NeuralResult<Self> {
        if model_dim == 0 || num_heads == 0 {
            return Err(NeuralError::InvalidConfig { name: "model_dim/num_heads", reason: "must be nonzero".into() });
        }
        if model_dim % num_heads != 0 {
            return Err(NeuralError::InvalidConfig {
                name: "num_heads",
                reason: format!("must divide model_dim ({model_dim} % {num_heads} != 0)"),
            });
        }
        Ok(Self {
            model_dim,
            num_heads,
            wq: Param::new(glorot_uniform(model_dim, model_dim, seed)),
            wk: Param::new(glorot_uniform(model_dim, model_dim, seed.wrapping_add(1))),
            wv: Param::new(glorot_uniform(model_dim, model_dim, seed.wrapping_add(2))),
            wo: Param::new(glorot_uniform(model_dim, model_dim, seed.wrapping_add(3))),
            cache: None,
        })
    }

    /// Model (embedding) dimension.
    pub fn model_dim(&self) -> usize {
        self.model_dim
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head projection dimension `k = model_dim / num_heads` (the paper's `k`).
    pub fn head_dim(&self) -> usize {
        self.model_dim / self.num_heads
    }

    fn project(&self, input: &Tensor) -> (Tensor, Tensor, Tensor) {
        (
            input.matmul(&self.wq.value),
            input.matmul(&self.wk.value),
            input.matmul(&self.wv.value),
        )
    }

    fn attend(&self, q: &Tensor, k: &Tensor, v: &Tensor) -> (Vec<Tensor>, Tensor) {
        let tokens = q.rows();
        let head_dim = self.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut concat = Tensor::zeros(&[tokens, self.model_dim]);
        let mut attentions = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let start = h * head_dim;
            let qh = q.slice_cols(start, head_dim);
            let kh = k.slice_cols(start, head_dim);
            let vh = v.slice_cols(start, head_dim);
            let scores = qh.matmul(&kh.transpose()).scale(scale);
            let attention = softmax_rows(&scores);
            let oh = attention.matmul(&vh);
            concat.set_cols(start, &oh);
            attentions.push(attention);
        }
        (attentions, concat)
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "attention expects a 2-D token matrix");
        assert_eq!(input.cols(), self.model_dim, "attention input width must equal model_dim");
        let (q, k, v) = self.project(input);
        let (attention, concat) = self.attend(&q, &k, &v);
        let output = concat.matmul(&self.wo.value);
        self.cache = Some(AttentionCache { input: input.clone(), q, k, v, attention, concat });
        output
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("MultiHeadAttention::backward called before forward").clone();
        let head_dim = self.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let tokens = cache.input.rows();

        // Output projection.
        let grad_wo = cache.concat.transpose().matmul(grad_output);
        self.wo.grad = self.wo.grad.add(&grad_wo);
        let grad_concat = grad_output.matmul(&self.wo.value.transpose());

        // Per-head backward into Q, K, V.
        let mut grad_q = Tensor::zeros(&[tokens, self.model_dim]);
        let mut grad_k = Tensor::zeros(&[tokens, self.model_dim]);
        let mut grad_v = Tensor::zeros(&[tokens, self.model_dim]);
        for h in 0..self.num_heads {
            let start = h * head_dim;
            let qh = cache.q.slice_cols(start, head_dim);
            let kh = cache.k.slice_cols(start, head_dim);
            let vh = cache.v.slice_cols(start, head_dim);
            let attention = &cache.attention[h];
            let grad_oh = grad_concat.slice_cols(start, head_dim);

            // O_h = A_h · V_h
            let grad_attention = grad_oh.matmul(&vh.transpose());
            let grad_vh = attention.transpose().matmul(&grad_oh);
            // A_h = softmax(S_h)
            let grad_scores = softmax_rows_backward(attention, &grad_attention);
            // S_h = scale · Q_h · K_hᵀ
            let grad_qh = grad_scores.matmul(&kh).scale(scale);
            let grad_kh = grad_scores.transpose().matmul(&qh).scale(scale);

            grad_q.set_cols(start, &grad_qh);
            grad_k.set_cols(start, &grad_kh);
            grad_v.set_cols(start, &grad_vh);
        }

        // Q = X·Wq etc.
        let input_t = cache.input.transpose();
        self.wq.grad = self.wq.grad.add(&input_t.matmul(&grad_q));
        self.wk.grad = self.wk.grad.add(&input_t.matmul(&grad_k));
        self.wv.grad = self.wv.grad.add(&input_t.matmul(&grad_v));

        let grad_input = grad_q
            .matmul(&self.wq.value.transpose())
            .add(&grad_k.matmul(&self.wk.value.transpose()))
            .add(&grad_v.matmul(&self.wv.value.transpose()));
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv, &mut self.wo]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wq, &self.wk, &self.wv, &self.wo]
    }

    fn infer(&mut self, input: &Tensor) -> Tensor {
        let (q, k, v) = self.project(input);
        let (_, concat) = self.attend(&q, &k, &v);
        concat.matmul(&self.wo.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn construction_validates_heads() {
        assert!(MultiHeadAttention::new(8, 3, 0).is_err());
        assert!(MultiHeadAttention::new(0, 1, 0).is_err());
        let mha = MultiHeadAttention::new(8, 2, 0).unwrap();
        assert_eq!(mha.model_dim(), 8);
        assert_eq!(mha.num_heads(), 2);
        assert_eq!(mha.head_dim(), 4);
        assert_eq!(mha.num_weights(), 4 * 8 * 8);
    }

    #[test]
    fn output_shape_matches_input_shape() {
        let mut mha = MultiHeadAttention::new(16, 4, 1).unwrap();
        let x = crate::init::normal(&[10, 16], 1.0, 3);
        let y = mha.forward(&x);
        assert_eq!(y.shape(), &[10, 16]);
        assert!(y.is_finite());
        let y2 = mha.infer(&x);
        for (a, b) in y.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_mixes_information_across_tokens() {
        // Changing one token's features must affect other tokens' outputs (global
        // receptive field — the property the paper contrasts with CNNs).
        let mut mha = MultiHeadAttention::new(8, 2, 7).unwrap();
        let x = crate::init::normal(&[6, 8], 1.0, 11);
        let base = mha.infer(&x);
        let mut perturbed = x.clone();
        for j in 0..8 {
            *perturbed.at_mut(0, j) += 1.0;
        }
        let changed = mha.infer(&perturbed);
        let mut other_token_delta = 0.0f32;
        for token in 1..6 {
            for j in 0..8 {
                other_token_delta += (changed.at(token, j) - base.at(token, j)).abs();
            }
        }
        assert!(other_token_delta > 1e-3, "delta {other_token_delta}");
    }

    #[test]
    fn gradients_match_numerical_estimates() {
        let mha = MultiHeadAttention::new(6, 2, 13).unwrap();
        let input = crate::init::normal(&[4, 6], 0.8, 5);
        check_layer_gradients(&mut { mha }, &input, 1e-2, 3e-2);
    }

    #[test]
    fn single_head_equals_multi_head_with_one_head() {
        // With one head, head_dim == model_dim and the computation is plain attention.
        let mut mha = MultiHeadAttention::new(4, 1, 3).unwrap();
        let x = crate::init::normal(&[5, 4], 1.0, 9);
        let y = mha.forward(&x);
        assert_eq!(y.shape(), &[5, 4]);
        assert_eq!(mha.head_dim(), 4);
    }

    #[test]
    #[should_panic(expected = "called before forward")]
    fn backward_before_forward_panics() {
        let mut mha = MultiHeadAttention::new(4, 1, 0).unwrap();
        let _ = mha.backward(&Tensor::zeros(&[2, 4]));
    }
}
