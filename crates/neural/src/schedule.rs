//! Learning-rate schedules.
//!
//! The paper uses a polynomial decay from 1e-4 to 1e-6 with cyclic restarts;
//! [`PolynomialDecay`] reproduces that behaviour.

use serde::{Deserialize, Serialize};

/// Learning-rate schedule interface.
pub trait LrSchedule {
    /// Learning rate to use at optimisation step `step` (0-based).
    fn learning_rate(&self, step: u64) -> f32;
}

/// Polynomial decay `lr(t) = (lr0 − lr_end)·(1 − t/T)^p + lr_end`, optionally cyclic
/// (the decay restarts every `T` steps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolynomialDecay {
    /// Initial learning rate.
    pub initial_lr: f32,
    /// Final learning rate reached at the end of each cycle.
    pub final_lr: f32,
    /// Number of steps per decay cycle.
    pub decay_steps: u64,
    /// Polynomial power (1.0 = linear decay).
    pub power: f32,
    /// Whether the schedule restarts after each cycle (the paper's "cyclic changes").
    pub cyclic: bool,
}

impl PolynomialDecay {
    /// The paper's schedule: 1e-4 → 1e-6 over 1000 epochs, linear, cyclic.
    pub fn paper() -> Self {
        Self { initial_lr: 1e-4, final_lr: 1e-6, decay_steps: 1000, power: 1.0, cyclic: true }
    }

    /// A compressed schedule for the reduced training runs used in tests/examples.
    pub fn compressed(steps: u64) -> Self {
        Self { decay_steps: steps.max(1), ..Self::paper() }
    }
}

impl LrSchedule for PolynomialDecay {
    fn learning_rate(&self, step: u64) -> f32 {
        let steps = self.decay_steps.max(1);
        let effective = if self.cyclic { step % steps } else { step.min(steps) };
        let progress = effective as f32 / steps as f32;
        (self.initial_lr - self.final_lr) * (1.0 - progress).powf(self.power) + self.final_lr
    }
}

/// A constant learning rate (useful for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantLr(
    /// The learning rate returned at every step.
    pub f32,
);

impl LrSchedule for ConstantLr {
    fn learning_rate(&self, _step: u64) -> f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_endpoints() {
        let s = PolynomialDecay::paper();
        assert!((s.learning_rate(0) - 1e-4).abs() < 1e-9);
        // Just before the cycle end it is close to the final LR.
        assert!(s.learning_rate(999) < 1.1e-6 + (1e-4 - 1e-6) * 0.002);
    }

    #[test]
    fn decay_is_monotone_within_a_cycle() {
        let s = PolynomialDecay::paper();
        let mut prev = f32::INFINITY;
        for step in 0..1000 {
            let lr = s.learning_rate(step);
            assert!(lr <= prev + 1e-12);
            assert!(lr >= 1e-6 - 1e-9);
            prev = lr;
        }
    }

    #[test]
    fn cyclic_schedule_restarts() {
        let s = PolynomialDecay::paper();
        assert!((s.learning_rate(1000) - 1e-4).abs() < 1e-9);
        assert!((s.learning_rate(2500) - s.learning_rate(500)).abs() < 1e-10);
    }

    #[test]
    fn non_cyclic_schedule_clamps_at_final_lr() {
        let s = PolynomialDecay { cyclic: false, ..PolynomialDecay::paper() };
        assert!((s.learning_rate(5000) - 1e-6).abs() < 1e-9);
    }

    #[test]
    fn quadratic_power_decays_faster_initially() {
        let linear = PolynomialDecay { power: 1.0, ..PolynomialDecay::paper() };
        let quadratic = PolynomialDecay { power: 2.0, ..PolynomialDecay::paper() };
        assert!(quadratic.learning_rate(500) < linear.learning_rate(500));
    }

    #[test]
    fn constant_schedule_is_constant() {
        let c = ConstantLr(3e-4);
        assert_eq!(c.learning_rate(0), 3e-4);
        assert_eq!(c.learning_rate(1_000_000), 3e-4);
    }

    #[test]
    fn compressed_schedule_shrinks_cycle() {
        let s = PolynomialDecay::compressed(10);
        assert!((s.learning_rate(0) - 1e-4).abs() < 1e-9);
        assert!(s.learning_rate(9) < 2e-5);
    }
}
