//! Loss functions.
//!
//! The paper trains with mean squared error on the IQ-demodulated beamformed image
//! *before* log compression; [`mse`] provides the value and gradient of that loss.

use crate::tensor::Tensor;

/// Mean squared error between a prediction and a target, plus the gradient with respect
/// to the prediction.
///
/// # Panics
///
/// Panics when the shapes differ.
pub fn mse(prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(prediction.shape(), target.shape(), "mse: shape mismatch");
    let n = prediction.numel() as f32;
    let diff = prediction.sub(target);
    let loss = diff.sum_squares() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Mean absolute error (used in ablations), with gradient.
///
/// # Panics
///
/// Panics when the shapes differ.
pub fn mae(prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(prediction.shape(), target.shape(), "mae: shape mismatch");
    let n = prediction.numel() as f32;
    let diff = prediction.sub(target);
    let loss = diff.as_slice().iter().map(|v| v.abs()).sum::<f32>() / n;
    let grad = diff.map(|v| v.signum() / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::numerical_gradient;

    #[test]
    fn mse_of_identical_tensors_is_zero() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let (loss, grad) = mse(&a, &a);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn mse_value_matches_manual_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 4.0], &[2]).unwrap();
        let (loss, _) = mse(&a, &b);
        assert!((loss - 2.5).abs() < 1e-6);
    }

    #[test]
    fn mse_gradient_matches_numerical() {
        let target = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0], &[4]).unwrap();
        let pred = Tensor::from_vec(vec![0.1, 0.3, -0.4, 1.2], &[4]).unwrap();
        let (_, grad) = mse(&pred, &target);
        let numeric = numerical_gradient(&pred, |p| mse(p, &target).0, 1e-3);
        for (a, n) in grad.as_slice().iter().zip(numeric.as_slice()) {
            assert!((a - n).abs() < 1e-3);
        }
    }

    #[test]
    fn mae_value_and_gradient_signs() {
        let pred = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let (loss, grad) = mae(&pred, &target);
        assert!((loss - 1.0).abs() < 1e-6);
        assert!(grad.at_vec(0) > 0.0 && grad.at_vec(1) < 0.0);
    }

    trait AtVec {
        fn at_vec(&self, i: usize) -> f32;
    }
    impl AtVec for Tensor {
        fn at_vec(&self, i: usize) -> f32 {
            self.as_slice()[i]
        }
    }
}
