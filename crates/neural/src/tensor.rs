//! Dense row-major tensors.
//!
//! The layer library operates on small 2-D matrices (token × feature) and, for the
//! convolutional baseline, 3-D `(height, width, channels)` volumes. [`Tensor`] stores
//! the data flat with an explicit shape and provides exactly the operations the
//! handwritten forward/backward passes need.

use crate::{NeuralError, NeuralResult};
use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a zero-filled tensor with the given shape.
    ///
    /// # Panics
    ///
    /// Panics when the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = checked_numel(shape);
        Self { data: vec![0.0; numel], shape: shape.to_vec() }
    }

    /// Creates a tensor filled with a constant value.
    ///
    /// # Panics
    ///
    /// Panics when the shape is empty or has a zero dimension.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = checked_numel(shape);
        Self { data: vec![value; numel], shape: shape.to_vec() }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] when the buffer length does not match the
    /// shape product.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> NeuralResult<Self> {
        let numel: usize = shape.iter().product();
        if shape.is_empty() || numel != data.len() {
            return Err(NeuralError::ShapeMismatch {
                expected: format!("{numel} values for shape {shape:?}"),
                actual: format!("{} values", data.len()),
            });
        }
        Ok(Self { data, shape: shape.to_vec() })
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of rows of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Immutable flat view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// 2-D element access.
    ///
    /// # Panics
    ///
    /// Panics on non-2-D tensors or out-of-range indices.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[row * self.shape[1] + col]
    }

    /// Mutable 2-D element access.
    ///
    /// # Panics
    ///
    /// Panics on non-2-D tensors or out-of-range indices.
    #[inline]
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[row * self.shape[1] + col]
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] when the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> NeuralResult<Tensor> {
        let numel: usize = shape.iter().product();
        if numel != self.data.len() || shape.is_empty() {
            return Err(NeuralError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                actual: format!("shape {shape:?} with {numel}"),
            });
        }
        Ok(Tensor { data: self.data.clone(), shape: shape.to_vec() })
    }

    /// Matrix product of two 2-D tensors: `(n, k) × (k, m) → (n, m)`.
    ///
    /// Uses the cache-blocked, register-tiled kernel and splits output rows
    /// across [`runtime::default_threads`] worker threads when the product is
    /// large enough to amortise the spawns. Per-element accumulation order is
    /// fixed (ascending inner index), so results are bitwise identical for
    /// every thread count and match [`Tensor::matmul_naive`].
    ///
    /// # Example
    ///
    /// ```
    /// use neural::tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// let c = a.matmul(&b);
    /// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok::<(), neural::NeuralError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when either tensor is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_with_threads(other, runtime::default_threads())
    }

    /// [`Tensor::matmul`] with an explicit worker-thread count (used by the
    /// determinism tests and benchmarks).
    ///
    /// # Panics
    ///
    /// Panics when either tensor is not 2-D or the inner dimensions differ.
    pub fn matmul_with_threads(&self, other: &Tensor, num_threads: usize) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul: lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul: rhs must be 2-D");
        let (n, k) = (self.shape[0], self.shape[1]);
        let (k2, m) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul: inner dimensions must agree ({k} vs {k2})");
        let mut out = Tensor::zeros(&[n, m]);
        // Below ~2^18 multiply-adds the spawn overhead outweighs the work.
        let threads = if n * k * m < (1 << 18) { 1 } else { num_threads };
        runtime::par_map_rows(&mut out.data, m, threads, |first_row, chunk| {
            matmul_row_block(&self.data, &other.data, chunk, first_row, k, m);
        });
        out
    }

    /// Reference scalar triple-loop matmul kept for equivalence tests and the
    /// before/after benchmarks (this was the shipping implementation before the
    /// blocked kernel).
    ///
    /// # Panics
    ///
    /// Panics when either tensor is not 2-D or the inner dimensions differ.
    pub fn matmul_naive(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul: lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul: rhs must be 2-D");
        let (n, k) = (self.shape[0], self.shape[1]);
        let (k2, m) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul: inner dimensions must agree ({k} vs {k2})");
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..n {
            for p in 0..k {
                let a = self.data[i * k + p];
                let row_other = &other.data[p * m..(p + 1) * m];
                let row_out = &mut out.data[i * m..(i + 1) * m];
                for (o, &b) in row_out.iter_mut().zip(row_other.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose of a 2-D tensor (cache-blocked: both source and destination
    /// are walked in 32×32 tiles so neither side strides a whole row per
    /// element).
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a 2-D tensor");
        const TILE: usize = 32;
        let (n, m) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[m, n]);
        for i0 in (0..n).step_by(TILE) {
            let i1 = (i0 + TILE).min(n);
            for j0 in (0..m).step_by(TILE) {
                let j1 = (j0 + TILE).min(m);
                for i in i0..i1 {
                    for j in j0..j1 {
                        out.data[j * n + i] = self.data[i * m + j];
                    }
                }
            }
        }
        out
    }

    /// Element-wise sum of two tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add: shape mismatch");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a + b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Element-wise difference `self − other`.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "sub: shape mismatch");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a - b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "mul: shape mismatch");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a * b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Scales every element by `k`.
    pub fn scale(&self, k: f32) -> Tensor {
        Tensor { data: self.data.iter().map(|v| v * k).collect(), shape: self.shape.clone() }
    }

    /// Adds a row vector to every row of a 2-D tensor (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics when `bias` is not `[1, cols]`-shaped (or `[cols]`).
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "add_row_broadcast requires a 2-D tensor");
        let cols = self.shape[1];
        assert_eq!(bias.numel(), cols, "bias length must equal column count");
        let mut out = self.clone();
        for row in 0..self.shape[0] {
            for col in 0..cols {
                out.data[row * cols + col] += bias.data[col];
            }
        }
        out
    }

    /// Sums a 2-D tensor over its rows, producing a `[1, cols]` tensor (bias gradient).
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "sum_rows requires a 2-D tensor");
        let (n, m) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[1, m]);
        for i in 0..n {
            for j in 0..m {
                out.data[j] += self.data[i * m + j];
            }
        }
        out
    }

    /// Extracts columns `[start, start + len)` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert_eq!(self.shape.len(), 2, "slice_cols requires a 2-D tensor");
        let (n, m) = (self.shape[0], self.shape[1]);
        assert!(start + len <= m, "column slice out of range");
        let mut out = Tensor::zeros(&[n, len]);
        for i in 0..n {
            out.data[i * len..(i + 1) * len].copy_from_slice(&self.data[i * m + start..i * m + start + len]);
        }
        out
    }

    /// Writes `block` into columns `[start, start + block.cols())` of the tensor.
    ///
    /// # Panics
    ///
    /// Panics when shapes are incompatible.
    pub fn set_cols(&mut self, start: usize, block: &Tensor) {
        assert_eq!(self.shape.len(), 2, "set_cols requires a 2-D tensor");
        assert_eq!(block.shape.len(), 2);
        let (n, m) = (self.shape[0], self.shape[1]);
        let (bn, bm) = (block.shape[0], block.shape[1]);
        assert_eq!(n, bn, "row count mismatch");
        assert!(start + bm <= m, "column block out of range");
        for i in 0..n {
            self.data[i * m + start..i * m + start + bm].copy_from_slice(&block.data[i * bm..(i + 1) * bm]);
        }
    }

    /// Mean of all elements (0 for an empty tensor, which cannot be constructed).
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Largest absolute element value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Sum of squared elements.
    pub fn sum_squares(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Applies a function element-wise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor { data: self.data.iter().map(|&v| f(v)).collect(), shape: self.shape.clone() }
    }

    /// Returns `true` if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Fills `out` — the contiguous block of output rows starting at global row
/// `first_row` — with `A × B` for row-major `a` (`? × k`) and `b` (`k × m`).
///
/// The kernel is register-tiled: each `MR × NR` (8×32) tile of `C` is
/// accumulated entirely in registers over the full inner dimension before one
/// write-back, so the steady-state memory traffic per FMA is a single
/// streaming read of `B`. For every output element the additions happen in
/// ascending `p` order, keeping results bitwise identical to the naive triple
/// loop regardless of tiling, thread count, or `runtime::simd` dispatch tier:
/// the scalar tier runs the naive loop as the reference, while portable and
/// native run the tiled body (natively recompiled under AVX2/NEON — without
/// FMA, so no multiply-add fusion can change rounding).
fn matmul_row_block(a: &[f32], b: &[f32], out: &mut [f32], first_row: usize, k: usize, m: usize) {
    match runtime::simd::mode() {
        runtime::simd::SimdMode::Scalar => matmul_row_block_scalar(a, b, out, first_row, k, m),
        runtime::simd::SimdMode::Portable => matmul_row_block_body(a, b, out, first_row, k, m),
        runtime::simd::SimdMode::Native => matmul_row_block_native(a, b, out, first_row, k, m),
    }
}

/// Naive ascending-`p` triple loop: the bitwise reference for the tiled body.
fn matmul_row_block_scalar(a: &[f32], b: &[f32], out: &mut [f32], first_row: usize, k: usize, m: usize) {
    let rows = out.len() / m.max(1);
    for r in 0..rows {
        let a_base = (first_row + r) * k;
        for j in 0..m {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[a_base + p] * b[p * m + j];
            }
            out[r * m + j] = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn matmul_row_block_native(a: &[f32], b: &[f32], out: &mut [f32], first_row: usize, k: usize, m: usize) {
    #[target_feature(enable = "avx2")]
    unsafe fn go(a: &[f32], b: &[f32], out: &mut [f32], first_row: usize, k: usize, m: usize) {
        matmul_row_block_body(a, b, out, first_row, k, m)
    }
    // SAFETY: `runtime::simd::mode()` returns `Native` only after detecting
    // AVX2 at runtime. `avx2` does not imply `fma`, so no multiply-add fuses
    // and the result stays bitwise identical to the portable body.
    unsafe { go(a, b, out, first_row, k, m) }
}

#[cfg(target_arch = "aarch64")]
fn matmul_row_block_native(a: &[f32], b: &[f32], out: &mut [f32], first_row: usize, k: usize, m: usize) {
    #[target_feature(enable = "neon")]
    unsafe fn go(a: &[f32], b: &[f32], out: &mut [f32], first_row: usize, k: usize, m: usize) {
        matmul_row_block_body(a, b, out, first_row, k, m)
    }
    // SAFETY: NEON is baseline on our aarch64 targets and introduces no
    // contraction; results stay bitwise identical to the portable body.
    unsafe { go(a, b, out, first_row, k, m) }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn matmul_row_block_native(a: &[f32], b: &[f32], out: &mut [f32], first_row: usize, k: usize, m: usize) {
    matmul_row_block_body(a, b, out, first_row, k, m)
}

#[inline(always)]
fn matmul_row_block_body(a: &[f32], b: &[f32], out: &mut [f32], first_row: usize, k: usize, m: usize) {
    /// Register-tile width (output columns per micro-kernel invocation).
    const NR: usize = 32;
    /// Register-tile height (output rows per micro-kernel invocation).
    const MR: usize = 8;
    let rows = out.len() / m.max(1);
    let mut r = 0;
    while r + MR <= rows {
        let a_base = (first_row + r) * k;
        let out_base = r * m;
        // Full-width MR×NR register tiles: the C tile lives in `acc` for the whole
        // inner-product loop, so per FMA the only memory traffic is streaming B.
        let mut j0 = 0;
        while j0 + NR <= m {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                let bvals: &[f32; NR] = b[p * m + j0..p * m + j0 + NR].try_into().unwrap();
                for (q, acc_row) in acc.iter_mut().enumerate() {
                    let av = a[a_base + q * k + p];
                    for (o, &bv) in acc_row.iter_mut().zip(bvals.iter()) {
                        *o += av * bv;
                    }
                }
            }
            for (q, acc_row) in acc.iter().enumerate() {
                out[out_base + q * m + j0..out_base + q * m + j0 + NR].copy_from_slice(acc_row);
            }
            j0 += NR;
        }
        // Column remainder: a variable-width (≤ NR) lane tile, so narrow
        // matrices (the model's m = 8..16 layers) still accumulate whole
        // output rows in registers. Per output element the adds remain in
        // ascending-p order — bitwise identical to the scalar reference.
        let cw = m - j0;
        if cw > 0 {
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                let bvals = &b[p * m + j0..p * m + j0 + cw];
                for (q, acc_row) in acc.iter_mut().enumerate() {
                    let av = a[a_base + q * k + p];
                    for (o, &bv) in acc_row[..cw].iter_mut().zip(bvals) {
                        *o += av * bv;
                    }
                }
            }
            for (q, acc_row) in acc.iter().enumerate() {
                out[out_base + q * m + j0..out_base + q * m + j0 + cw].copy_from_slice(&acc_row[..cw]);
            }
        }
        r += MR;
    }
    // Row remainder: single-row tiles.
    while r < rows {
        let a_base = (first_row + r) * k;
        let arow = &a[a_base..a_base + k];
        let out_row = &mut out[r * m..(r + 1) * m];
        let mut j0 = 0;
        while j0 + NR <= m {
            let mut acc = [0.0f32; NR];
            for (p, &av) in arow.iter().enumerate() {
                let bvals: &[f32; NR] = b[p * m + j0..p * m + j0 + NR].try_into().unwrap();
                for (o, &bv) in acc.iter_mut().zip(bvals.iter()) {
                    *o += av * bv;
                }
            }
            out_row[j0..j0 + NR].copy_from_slice(&acc);
            j0 += NR;
        }
        let cw = m - j0;
        if cw > 0 {
            let mut acc = [0.0f32; NR];
            for (p, &av) in arow.iter().enumerate() {
                let bvals = &b[p * m + j0..p * m + j0 + cw];
                for (o, &bv) in acc[..cw].iter_mut().zip(bvals) {
                    *o += av * bv;
                }
            }
            out_row[j0..j0 + cw].copy_from_slice(&acc[..cw]);
        }
        r += 1;
    }
}

fn checked_numel(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "Tensor shape must not be empty");
    assert!(shape.iter().all(|&d| d > 0), "Tensor dimensions must be nonzero");
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        let f = Tensor::full(&[2], 1.5);
        assert_eq!(f.as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
        assert!(Tensor::from_vec(vec![], &[]).is_err());
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_with_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, -1.0], &[2]).unwrap();
        assert_eq!(a.add(&b).as_slice(), &[4.0, 1.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-2.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, -2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.map(|v| v * v).as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn broadcast_and_row_sum() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let bias = Tensor::from_vec(vec![10.0, 20.0], &[1, 2]).unwrap();
        let y = x.add_row_broadcast(&bias);
        assert_eq!(y.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        let s = x.sum_rows();
        assert_eq!(s.shape(), &[1, 2]);
        assert_eq!(s.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn column_slicing_and_setting() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let s = x.slice_cols(1, 2);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.as_slice(), &[2.0, 3.0, 5.0, 6.0]);
        let mut y = Tensor::zeros(&[2, 3]);
        y.set_cols(1, &s);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 3.0, 0.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = x.reshape(&[4]).unwrap();
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.as_slice(), x.as_slice());
        assert!(x.reshape(&[3]).is_err());
    }

    #[test]
    fn statistics() {
        let x = Tensor::from_vec(vec![1.0, -3.0, 2.0, 0.0], &[4]).unwrap();
        assert_eq!(x.mean(), 0.0);
        assert_eq!(x.max_abs(), 3.0);
        assert_eq!(x.sum_squares(), 14.0);
        assert!(x.is_finite());
        let bad = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        assert!(!bad.is_finite());
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dimension_panics() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    fn pseudo_random_tensor(shape: &[usize], seed: u64) -> Tensor {
        let numel: usize = shape.iter().product();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data = (0..numel)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
            })
            .collect();
        Tensor::from_vec(data, shape).unwrap()
    }

    #[test]
    fn blocked_matmul_matches_naive_reference() {
        // Shapes straddle the register tile (4 rows) and KC panel (128) edges.
        for (n, k, m, seed) in [(1, 1, 1, 1), (3, 5, 2, 2), (4, 130, 7, 3), (17, 129, 33, 4), (64, 257, 96, 5)] {
            let a = pseudo_random_tensor(&[n, k], seed);
            let b = pseudo_random_tensor(&[k, m], seed + 100);
            let fast = a.matmul(&b);
            let reference = a.matmul_naive(&b);
            assert_eq!(fast.shape(), reference.shape());
            for (f, r) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert!((f - r).abs() <= 1e-5 * r.abs().max(1.0), "{n}x{k}x{m}: {f} vs {r}");
            }
        }
    }

    #[test]
    fn matmul_is_identical_across_thread_counts() {
        // Large enough to clear the parallel-dispatch threshold.
        let a = pseudo_random_tensor(&[96, 80], 7);
        let b = pseudo_random_tensor(&[80, 64], 8);
        let serial = a.matmul_with_threads(&b, 1);
        for threads in [2, 3, 8] {
            let parallel = a.matmul_with_threads(&b, threads);
            assert_eq!(serial, parallel, "threads {threads}");
        }
    }

    #[test]
    fn blocked_transpose_matches_strided_reference() {
        for (n, m) in [(1, 1), (5, 3), (31, 33), (64, 70), (100, 1)] {
            let a = pseudo_random_tensor(&[n, m], (n * 1000 + m) as u64);
            let t = a.transpose();
            assert_eq!(t.shape(), &[m, n]);
            for i in 0..n {
                for j in 0..m {
                    assert_eq!(t.at(j, i), a.at(i, j), "({i},{j}) of {n}x{m}");
                }
            }
        }
    }
}
