//! The [`Layer`] trait and trainable-parameter plumbing.

use crate::tensor::Tensor;

/// A trainable parameter: its current value and the gradient accumulated by the most
/// recent backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to the parameter.
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Number of scalar weights in the parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.as_mut_slice() {
            *g = 0.0;
        }
    }
}

/// A differentiable layer processing one sample at a time.
///
/// `forward` caches whatever it needs; `backward` consumes the cached state, accumulates
/// parameter gradients and returns the gradient with respect to the layer input. Layers
/// are stateful, so a `forward` must precede each `backward`.
pub trait Layer {
    /// Runs the forward pass and caches intermediate values needed by `backward`.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Runs the backward pass for the most recent `forward`, returning `dL/d(input)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called before any `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to the trainable parameters (empty for parameter-free layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Immutable access to the trainable parameters.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Total number of scalar trainable weights.
    fn num_weights(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Zeroes every parameter gradient.
    fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// A forward pass that does not need gradient bookkeeping. The default simply calls
    /// [`forward`](Self::forward); layers with expensive caches may override it.
    fn infer(&mut self, input: &Tensor) -> Tensor {
        self.forward(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Layer for Doubler {
        fn forward(&mut self, input: &Tensor) -> Tensor {
            input.scale(2.0)
        }
        fn backward(&mut self, grad_output: &Tensor) -> Tensor {
            grad_output.scale(2.0)
        }
    }

    #[test]
    fn param_bookkeeping() {
        let mut p = Param::new(Tensor::full(&[2, 2], 1.0));
        assert_eq!(p.numel(), 4);
        p.grad = Tensor::full(&[2, 2], 3.0);
        p.zero_grad();
        assert_eq!(p.grad, Tensor::zeros(&[2, 2]));
    }

    #[test]
    fn default_trait_methods() {
        let mut layer = Doubler;
        assert_eq!(layer.num_weights(), 0);
        assert!(layer.params().is_empty());
        layer.zero_grads();
        let x = Tensor::full(&[2], 1.5);
        assert_eq!(layer.infer(&x).as_slice(), &[3.0, 3.0]);
        assert_eq!(layer.backward(&x).as_slice(), &[3.0, 3.0]);
    }
}
