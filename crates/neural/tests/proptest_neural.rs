//! Property-based tests for the neural-network substrate.

use neural::activation::{softmax_rows, softmax_rows_backward};
use neural::dense::Dense;
use neural::layer::Layer;
use neural::loss::mse;
use neural::serialize::{tensors_from_bytes, tensors_to_bytes};
use neural::tensor::Tensor;
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    -5.0f32..5.0f32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in prop::collection::vec(small_f32(), 12),
        b in prop::collection::vec(small_f32(), 12),
        c in prop::collection::vec(small_f32(), 12),
    ) {
        // (A + B) C == A C + B C for 3x4 * 4x3 matrices.
        let ta = Tensor::from_vec(a, &[3, 4]).unwrap();
        let tb = Tensor::from_vec(b, &[3, 4]).unwrap();
        let tc = Tensor::from_vec(c, &[4, 3]).unwrap();
        let left = ta.add(&tb).matmul(&tc);
        let right = ta.matmul(&tc).add(&tb.matmul(&tc));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_an_involution_and_preserves_matmul(
        a in prop::collection::vec(small_f32(), 6),
        b in prop::collection::vec(small_f32(), 8),
    ) {
        let ta = Tensor::from_vec(a, &[2, 3]).unwrap();
        let tb = Tensor::from_vec(b, &[4, 2]).unwrap();
        prop_assert_eq!(ta.transpose().transpose(), ta.clone());
        // (B A)^T == A^T B^T
        let left = tb.matmul(&ta).transpose();
        let right = ta.transpose().matmul(&tb.transpose());
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_probability_distributions(values in prop::collection::vec(-30.0f32..30.0, 24)) {
        let x = Tensor::from_vec(values, &[4, 6]).unwrap();
        let y = softmax_rows(&x);
        for row in 0..4 {
            let sum: f32 = (0..6).map(|c| y.at(row, c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for c in 0..6 {
                prop_assert!(y.at(row, c) >= 0.0 && y.at(row, c) <= 1.0);
            }
        }
    }

    #[test]
    fn softmax_backward_of_uniform_grad_is_zero(values in prop::collection::vec(-5.0f32..5.0, 8), k in -2.0f32..2.0) {
        // If dL/dy is constant across a row, dL/dx must vanish (softmax is shift
        // invariant along each row).
        let x = Tensor::from_vec(values, &[2, 4]).unwrap();
        let y = softmax_rows(&x);
        let grad = Tensor::full(&[2, 4], k);
        let dx = softmax_rows_backward(&y, &grad);
        prop_assert!(dx.max_abs() < 1e-4);
    }

    #[test]
    fn dense_layer_is_affine(
        seed in 0u64..1000,
        x1 in prop::collection::vec(small_f32(), 6),
        x2 in prop::collection::vec(small_f32(), 6),
    ) {
        // f(x1 + x2) - f(0) == (f(x1) - f(0)) + (f(x2) - f(0))
        let mut layer = Dense::new(6, 3, seed);
        let t0 = Tensor::zeros(&[1, 6]);
        let t1 = Tensor::from_vec(x1.clone(), &[1, 6]).unwrap();
        let t2 = Tensor::from_vec(x2.clone(), &[1, 6]).unwrap();
        let sum: Vec<f32> = x1.iter().zip(x2.iter()).map(|(a, b)| a + b).collect();
        let tsum = Tensor::from_vec(sum, &[1, 6]).unwrap();
        let f0 = layer.infer(&t0);
        let f1 = layer.infer(&t1);
        let f2 = layer.infer(&t2);
        let fsum = layer.infer(&tsum);
        for j in 0..3 {
            let lhs = fsum.at(0, j) - f0.at(0, j);
            let rhs = (f1.at(0, j) - f0.at(0, j)) + (f2.at(0, j) - f0.at(0, j));
            prop_assert!((lhs - rhs).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_is_nonnegative_and_zero_iff_equal(values in prop::collection::vec(small_f32(), 1..40)) {
        let len = values.len();
        let a = Tensor::from_vec(values.clone(), &[len]).unwrap();
        let (loss_same, grad_same) = mse(&a, &a);
        prop_assert_eq!(loss_same, 0.0);
        prop_assert_eq!(grad_same.max_abs(), 0.0);
        let shifted = a.map(|v| v + 1.0);
        let (loss, _) = mse(&a, &shifted);
        prop_assert!((loss - 1.0).abs() < 1e-4);
    }

    #[test]
    fn weight_serialization_round_trips(
        values in prop::collection::vec(small_f32(), 1..64),
        rows in 1usize..8,
    ) {
        let len = values.len();
        let cols = len / rows;
        if cols == 0 { return Ok(()); }
        let t = Tensor::from_vec(values[..rows * cols].to_vec(), &[rows, cols]).unwrap();
        let bytes = tensors_to_bytes(&[&t]);
        let restored = tensors_from_bytes(&bytes).unwrap();
        prop_assert_eq!(restored.len(), 1);
        prop_assert_eq!(&restored[0], &t);
    }
}

// Property tests for the PR-1 performance kernels: the blocked/parallel matmul,
// the blocked transpose and the im2col convolution must match their naive
// reference implementations on random shapes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocked_matmul_matches_naive_on_random_shapes(
        n in 1usize..40,
        k in 1usize..160,
        m in 1usize..48,
        seed in 0u64..1000,
    ) {
        let a = neural::init::normal(&[n, k], 1.0, seed);
        let b = neural::init::normal(&[k, m], 1.0, seed.wrapping_add(1));
        let fast = a.matmul(&b);
        let reference = a.matmul_naive(&b);
        prop_assert_eq!(fast.shape(), reference.shape());
        for (f, r) in fast.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((f - r).abs() <= 1e-5 * r.abs().max(1.0), "{} vs {}", f, r);
        }
    }

    #[test]
    fn matmul_thread_count_does_not_change_results(
        n in 8usize..48,
        k in 32usize..96,
        seed in 0u64..1000,
    ) {
        let a = neural::init::normal(&[n, k], 1.0, seed);
        let b = neural::init::normal(&[k, n], 1.0, seed.wrapping_add(7));
        let serial = a.matmul_with_threads(&b, 1);
        let parallel = a.matmul_with_threads(&b, 4);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn blocked_transpose_round_trips_on_random_shapes(
        n in 1usize..70,
        m in 1usize..70,
        seed in 0u64..1000,
    ) {
        let a = neural::init::normal(&[n, m], 1.0, seed);
        let t = a.transpose();
        prop_assert_eq!(t.shape(), &[m, n]);
        prop_assert_eq!(t.transpose(), a.clone());
        for i in 0..n.min(8) {
            for j in 0..m.min(8) {
                prop_assert_eq!(t.at(j, i), a.at(i, j));
            }
        }
    }

    #[test]
    fn im2col_convolution_matches_direct_on_random_shapes(
        h in 1usize..9,
        w in 1usize..9,
        cin in 1usize..4,
        cout in 1usize..4,
        kernel_half in 0usize..3,
        seed in 0u64..1000,
    ) {
        let kernel = 2 * kernel_half + 1;
        let mut conv = neural::conv::Conv2d::new(cin, cout, kernel, seed);
        let x = neural::init::normal(&[h, w, cin], 1.0, seed.wrapping_add(3));
        let fast = conv.forward(&x);
        let direct = conv.infer_direct(&x);
        prop_assert_eq!(fast.shape(), direct.shape());
        for (a, b) in fast.as_slice().iter().zip(direct.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{} vs {}", a, b);
        }
    }
}
