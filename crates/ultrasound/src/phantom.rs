//! Scatterer phantoms.
//!
//! A phantom is a collection of point scatterers in the imaging plane (lateral `x`,
//! depth `z`). The PICMUS-style evaluation phantoms are built from three ingredients:
//! isolated bright point targets (resolution), uniformly random diffuse scatterers
//! (speckle background) and scatterer-free circular regions (anechoic cysts, contrast).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single point scatterer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scatterer {
    /// Lateral position in metres.
    pub x: f32,
    /// Depth in metres (positive into the body).
    pub z: f32,
    /// Reflection amplitude (arbitrary linear units; speckle scatterers are ~N(0,1)).
    pub amplitude: f32,
}

impl Scatterer {
    /// Creates a scatterer at `(x, z)` with the given amplitude.
    pub fn new(x: f32, z: f32, amplitude: f32) -> Self {
        Self { x, z, amplitude }
    }
}

/// A circular region description, used both for carving anechoic cysts and for metric
/// regions of interest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircleRegion {
    /// Lateral centre in metres.
    pub cx: f32,
    /// Depth centre in metres.
    pub cz: f32,
    /// Radius in metres.
    pub radius: f32,
}

impl CircleRegion {
    /// Creates a circular region.
    pub fn new(cx: f32, cz: f32, radius: f32) -> Self {
        Self { cx, cz, radius }
    }

    /// Whether a point lies inside the circle.
    pub fn contains(&self, x: f32, z: f32) -> bool {
        let dx = x - self.cx;
        let dz = z - self.cz;
        dx * dx + dz * dz <= self.radius * self.radius
    }
}

/// A collection of scatterers plus metadata about the regions that were used to build
/// it (point-target positions and cyst regions), which downstream metric code needs.
///
/// ```
/// use ultrasound::phantom::Phantom;
/// let phantom = Phantom::builder(0.02, 0.04)
///     .seed(1)
///     .speckle_density(500.0)
///     .add_point_target(0.0, 0.02, 20.0)
///     .add_cyst(0.0, 0.03, 0.004)
///     .build();
/// assert!(!phantom.scatterers().is_empty());
/// assert_eq!(phantom.point_targets().len(), 1);
/// assert_eq!(phantom.cysts().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phantom {
    scatterers: Vec<Scatterer>,
    point_targets: Vec<Scatterer>,
    cysts: Vec<CircleRegion>,
    width: f32,
    depth: f32,
}

impl Phantom {
    /// Starts building a phantom covering lateral extent `[-width/2, width/2]` and depth
    /// `(depth_min ≈ 2 mm, depth]`.
    pub fn builder(width: f32, depth: f32) -> PhantomBuilder {
        PhantomBuilder::new(width, depth)
    }

    /// All scatterers (speckle + point targets).
    pub fn scatterers(&self) -> &[Scatterer] {
        &self.scatterers
    }

    /// The bright point targets that were explicitly added.
    pub fn point_targets(&self) -> &[Scatterer] {
        &self.point_targets
    }

    /// The anechoic cyst regions that were carved out.
    pub fn cysts(&self) -> &[CircleRegion] {
        &self.cysts
    }

    /// Lateral extent of the phantom in metres.
    pub fn width(&self) -> f32 {
        self.width
    }

    /// Depth extent of the phantom in metres.
    pub fn depth(&self) -> f32 {
        self.depth
    }

    /// Number of scatterers.
    pub fn len(&self) -> usize {
        self.scatterers.len()
    }

    /// Whether the phantom has no scatterers.
    pub fn is_empty(&self) -> bool {
        self.scatterers.is_empty()
    }
}

/// Builder for [`Phantom`].
#[derive(Debug, Clone)]
pub struct PhantomBuilder {
    width: f32,
    depth: f32,
    min_depth: f32,
    speckle_density: f32,
    speckle_amplitude: f32,
    point_targets: Vec<Scatterer>,
    cysts: Vec<CircleRegion>,
    hyperechoic: Vec<(CircleRegion, f32)>,
    seed: u64,
}

impl PhantomBuilder {
    fn new(width: f32, depth: f32) -> Self {
        Self {
            width,
            depth,
            min_depth: 2.0e-3,
            speckle_density: 0.0,
            speckle_amplitude: 1.0,
            point_targets: Vec::new(),
            cysts: Vec::new(),
            hyperechoic: Vec::new(),
            seed: 0,
        }
    }

    /// Sets the RNG seed so phantom generation is reproducible.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the speckle scatterer density in scatterers per square centimetre.
    ///
    /// PICMUS-style speckle needs ≳ 10 scatterers per resolution cell; the evaluation
    /// configurations pick the density based on the image scale.
    pub fn speckle_density(mut self, per_cm2: f32) -> Self {
        self.speckle_density = per_cm2.max(0.0);
        self
    }

    /// Sets the RMS amplitude of the speckle scatterers.
    pub fn speckle_amplitude(mut self, amplitude: f32) -> Self {
        self.speckle_amplitude = amplitude.max(0.0);
        self
    }

    /// Sets the minimum depth below which no scatterers are placed.
    pub fn min_depth(mut self, min_depth: f32) -> Self {
        self.min_depth = min_depth.max(0.0);
        self
    }

    /// Adds an isolated bright point target.
    pub fn add_point_target(mut self, x: f32, z: f32, amplitude: f32) -> Self {
        self.point_targets.push(Scatterer::new(x, z, amplitude));
        self
    }

    /// Adds an anechoic cyst: speckle scatterers falling inside the circle are removed.
    pub fn add_cyst(mut self, cx: f32, cz: f32, radius: f32) -> Self {
        self.cysts.push(CircleRegion::new(cx, cz, radius));
        self
    }

    /// Adds a hyperechoic circular inclusion whose speckle amplitude is multiplied by
    /// `gain` (> 1 brightens, < 1 darkens without fully removing scatterers).
    pub fn add_hyperechoic(mut self, cx: f32, cz: f32, radius: f32, gain: f32) -> Self {
        self.hyperechoic.push((CircleRegion::new(cx, cz, radius), gain));
        self
    }

    /// Generates the scatterer map.
    pub fn build(self) -> Phantom {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let area_cm2 = (self.width * 100.0) * ((self.depth - self.min_depth).max(0.0) * 100.0);
        let n_speckle = (self.speckle_density * area_cm2).round().max(0.0) as usize;
        let mut scatterers = Vec::with_capacity(n_speckle + self.point_targets.len());
        for _ in 0..n_speckle {
            let x = rng.gen_range(-self.width / 2.0..self.width / 2.0);
            let z = rng.gen_range(self.min_depth..self.depth.max(self.min_depth + 1e-6));
            if self.cysts.iter().any(|c| c.contains(x, z)) {
                continue;
            }
            // Rayleigh-distributed speckle magnitude with random sign gives circular
            // Gaussian-like statistics after beam summation.
            let u: f32 = rng.gen_range(1e-6..1.0f32);
            let mut amplitude = self.speckle_amplitude * (-2.0 * u.ln()).sqrt() / std::f32::consts::SQRT_2;
            if rng.gen_bool(0.5) {
                amplitude = -amplitude;
            }
            for (region, gain) in &self.hyperechoic {
                if region.contains(x, z) {
                    amplitude *= gain;
                }
            }
            scatterers.push(Scatterer::new(x, z, amplitude));
        }
        scatterers.extend_from_slice(&self.point_targets);
        Phantom {
            scatterers,
            point_targets: self.point_targets,
            cysts: self.cysts,
            width: self.width,
            depth: self.depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_produces_empty_phantom() {
        let p = Phantom::builder(0.02, 0.04).build();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn speckle_density_controls_count() {
        let p = Phantom::builder(0.02, 0.04).seed(3).speckle_density(1000.0).build();
        // area = 2cm x ~3.8cm = 7.6 cm^2 -> ~7600 scatterers
        assert!(p.len() > 6000 && p.len() < 9000, "len {}", p.len());
        let p2 = Phantom::builder(0.02, 0.04).seed(3).speckle_density(100.0).build();
        assert!(p2.len() < p.len() / 5);
    }

    #[test]
    fn scatterers_stay_in_bounds() {
        let p = Phantom::builder(0.03, 0.05).seed(11).speckle_density(300.0).build();
        for s in p.scatterers() {
            assert!(s.x >= -0.015 && s.x <= 0.015);
            assert!(s.z >= 0.002 && s.z <= 0.05);
        }
    }

    #[test]
    fn cysts_are_anechoic() {
        let cyst = CircleRegion::new(0.0, 0.025, 0.004);
        let p = Phantom::builder(0.02, 0.04)
            .seed(5)
            .speckle_density(2000.0)
            .add_cyst(cyst.cx, cyst.cz, cyst.radius)
            .build();
        assert!(!p.is_empty());
        for s in p.scatterers() {
            assert!(!cyst.contains(s.x, s.z), "scatterer inside cyst at ({}, {})", s.x, s.z);
        }
        assert_eq!(p.cysts().len(), 1);
    }

    #[test]
    fn point_targets_are_preserved_inside_cysts_too() {
        // Point targets are added explicitly and are not carved by cysts.
        let p = Phantom::builder(0.02, 0.04)
            .seed(1)
            .add_cyst(0.0, 0.02, 0.005)
            .add_point_target(0.0, 0.02, 10.0)
            .build();
        assert_eq!(p.len(), 1);
        assert_eq!(p.point_targets().len(), 1);
        assert_eq!(p.scatterers()[0].amplitude, 10.0);
    }

    #[test]
    fn same_seed_is_reproducible_different_seed_is_not() {
        let a = Phantom::builder(0.02, 0.03).seed(42).speckle_density(500.0).build();
        let b = Phantom::builder(0.02, 0.03).seed(42).speckle_density(500.0).build();
        let c = Phantom::builder(0.02, 0.03).seed(43).speckle_density(500.0).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hyperechoic_region_boosts_amplitude() {
        let region = CircleRegion::new(0.0, 0.02, 0.005);
        let p = Phantom::builder(0.02, 0.04)
            .seed(9)
            .speckle_density(3000.0)
            .add_hyperechoic(region.cx, region.cz, region.radius, 8.0)
            .build();
        let inside: Vec<f32> = p
            .scatterers()
            .iter()
            .filter(|s| region.contains(s.x, s.z))
            .map(|s| s.amplitude.abs())
            .collect();
        let outside: Vec<f32> = p
            .scatterers()
            .iter()
            .filter(|s| !region.contains(s.x, s.z))
            .map(|s| s.amplitude.abs())
            .collect();
        let mean_in: f32 = inside.iter().sum::<f32>() / inside.len() as f32;
        let mean_out: f32 = outside.iter().sum::<f32>() / outside.len() as f32;
        assert!(mean_in > 4.0 * mean_out, "in {mean_in} out {mean_out}");
    }

    #[test]
    fn circle_region_contains() {
        let c = CircleRegion::new(0.0, 0.01, 0.002);
        assert!(c.contains(0.0, 0.01));
        assert!(c.contains(0.001, 0.0105));
        assert!(!c.contains(0.004, 0.01));
    }

    #[test]
    fn speckle_amplitude_scales_rms() {
        let small = Phantom::builder(0.02, 0.03).seed(2).speckle_density(500.0).speckle_amplitude(1.0).build();
        let large = Phantom::builder(0.02, 0.03).seed(2).speckle_density(500.0).speckle_amplitude(5.0).build();
        let rms = |p: &Phantom| {
            (p.scatterers().iter().map(|s| s.amplitude * s.amplitude).sum::<f32>() / p.len() as f32).sqrt()
        };
        assert!((rms(&large) / rms(&small) - 5.0).abs() < 0.2);
    }
}
