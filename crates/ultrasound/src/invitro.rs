//! In-vitro degradation model.
//!
//! The PICMUS in-vitro acquisitions differ from the in-silico ones through the physics a
//! Field II-style simulation leaves out: electronic noise, element-to-element
//! sensitivity spread, sound-speed mismatch between the beamformer assumption and the
//! phantom material, small per-channel timing jitter and near-field reverberation
//! clutter. Applying this model to a clean simulated acquisition produces data with the
//! characteristic quality drop the paper reports between its simulation and phantom
//! columns (Tables I and II).

use crate::acquisition::ChannelData;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use usdsp::interp::{sample_at, InterpMethod};

/// Parameters of the in-vitro degradation model.
///
/// ```
/// use ultrasound::invitro::InVitroDegradation;
/// let model = InVitroDegradation::default();
/// assert!(model.snr_db > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InVitroDegradation {
    /// Electronic (thermal) noise level as an SNR in dB relative to the RF RMS.
    pub snr_db: f32,
    /// Standard deviation of the per-element gain spread (multiplicative, around 1.0).
    pub element_gain_spread: f32,
    /// Standard deviation of the per-element timing jitter in samples.
    pub timing_jitter_samples: f32,
    /// Amplitude of near-field reverberation clutter relative to the RF RMS.
    pub clutter_level: f32,
    /// Fraction of the acquisition (from the start) affected by the clutter tail.
    pub clutter_extent: f32,
    /// RNG seed so the degradation is reproducible.
    pub seed: u64,
}

impl Default for InVitroDegradation {
    fn default() -> Self {
        Self {
            snr_db: 30.0,
            element_gain_spread: 0.08,
            timing_jitter_samples: 0.35,
            clutter_level: 0.15,
            clutter_extent: 0.18,
            seed: 0xB10C,
        }
    }
}

impl InVitroDegradation {
    /// A milder degradation useful for ablations.
    pub fn mild() -> Self {
        Self { snr_db: 40.0, element_gain_spread: 0.03, timing_jitter_samples: 0.1, clutter_level: 0.05, ..Self::default() }
    }

    /// A harsher degradation (low-end hardware).
    pub fn severe() -> Self {
        Self { snr_db: 18.0, element_gain_spread: 0.15, timing_jitter_samples: 0.8, clutter_level: 0.35, ..Self::default() }
    }

    /// Applies the degradation to a channel-data frame in place.
    pub fn apply(&self, data: &mut ChannelData) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let num_channels = data.num_channels();
        let num_samples = data.num_samples();
        let rms = data.rms();

        // Per-element gain and timing jitter.
        for ch in 0..num_channels {
            let gain = 1.0 + self.element_gain_spread * standard_normal(&mut rng);
            let jitter = self.timing_jitter_samples * standard_normal(&mut rng);
            let original = data.channel(ch);
            for k in 0..num_samples {
                let shifted = sample_at(&original, k as f32 + jitter, InterpMethod::Linear);
                *data.sample_mut(k, ch) = gain * shifted;
            }
        }

        // Near-field reverberation clutter: decaying band-limited ringing common to all
        // channels with a small per-channel variation.
        if self.clutter_level > 0.0 && rms > 0.0 {
            let extent = ((num_samples as f32) * self.clutter_extent.clamp(0.0, 1.0)) as usize;
            let common_phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            for ch in 0..num_channels {
                let channel_phase = common_phase + 0.2 * standard_normal(&mut rng);
                let channel_gain = 1.0 + 0.3 * standard_normal(&mut rng);
                for k in 0..extent.min(num_samples) {
                    let t = k as f32 / extent.max(1) as f32;
                    let ring = (12.0 * std::f32::consts::TAU * t + channel_phase).sin();
                    let decay = (-4.0 * t).exp();
                    *data.sample_mut(k, ch) += self.clutter_level * channel_gain * rms * ring * decay;
                }
            }
        }

        // Electronic noise last so it is not shaped by the jitter interpolation.
        data.add_white_noise(self.snr_db, self.seed.wrapping_add(1));
    }

    /// Convenience helper returning a degraded copy.
    pub fn applied_to(&self, data: &ChannelData) -> ChannelData {
        let mut copy = data.clone();
        self.apply(&mut copy);
        copy
    }
}

fn standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-9..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_frame() -> ChannelData {
        let n_samples = 400;
        let n_channels = 8;
        let mut data = ChannelData::zeros(n_samples, n_channels, 31.25e6);
        for ch in 0..n_channels {
            for k in 0..n_samples {
                *data.sample_mut(k, ch) = ((k as f32 * 0.5) + ch as f32).sin();
            }
        }
        data
    }

    #[test]
    fn degradation_changes_the_data_but_keeps_shape() {
        let clean = test_frame();
        let degraded = InVitroDegradation::default().applied_to(&clean);
        assert_eq!(degraded.num_samples(), clean.num_samples());
        assert_eq!(degraded.num_channels(), clean.num_channels());
        assert_ne!(degraded, clean);
    }

    #[test]
    fn severe_degradation_adds_more_error_than_mild() {
        let clean = test_frame();
        let err = |model: InVitroDegradation| {
            let d = model.applied_to(&clean);
            d.as_slice()
                .iter()
                .zip(clean.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(err(InVitroDegradation::severe()) > 2.0 * err(InVitroDegradation::mild()));
    }

    #[test]
    fn degradation_is_reproducible_per_seed() {
        let clean = test_frame();
        let a = InVitroDegradation::default().applied_to(&clean);
        let b = InVitroDegradation::default().applied_to(&clean);
        let c = InVitroDegradation { seed: 99, ..InVitroDegradation::default() }.applied_to(&clean);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clutter_concentrates_near_the_start() {
        let clean = ChannelData::zeros(1000, 4, 31.25e6);
        // Zero signal: rms = 0, so clutter is skipped entirely; use a faint signal.
        let mut faint = clean.clone();
        for k in 0..1000 {
            for ch in 0..4 {
                *faint.sample_mut(k, ch) = 0.01 * ((k as f32) * 0.3).sin();
            }
        }
        let model = InVitroDegradation { snr_db: 80.0, element_gain_spread: 0.0, timing_jitter_samples: 0.0, clutter_level: 1.0, clutter_extent: 0.2, seed: 5 };
        let degraded = model.applied_to(&faint);
        let diff: Vec<f32> = degraded.as_slice().iter().zip(faint.as_slice()).map(|(a, b)| (a - b).abs()).collect();
        let head: f32 = diff[..4 * 150].iter().sum();
        let tail: f32 = diff[4 * 400..].iter().sum();
        assert!(head > 10.0 * tail.max(1e-6), "head {head} tail {tail}");
    }

    #[test]
    fn zero_signal_gets_no_noise_added() {
        let clean = ChannelData::zeros(100, 4, 31.25e6);
        let degraded = InVitroDegradation::default().applied_to(&clean);
        // rms is zero -> noise and clutter skipped, jitter of zeros stays zero.
        assert_eq!(degraded.rms(), 0.0);
    }
}
