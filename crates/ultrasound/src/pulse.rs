//! Transmit pulse / two-way waveform model.
//!
//! Each scatterer echo is modelled as a Gaussian-modulated sinusoid — the standard
//! two-way waveform approximation used by Field II-style simulators. The pulse envelope
//! width is derived from the probe's fractional bandwidth.

use crate::transducer::LinearArray;
use serde::{Deserialize, Serialize};
use std::f32::consts::PI;

/// A Gaussian-modulated sinusoidal pulse `exp(-t²/2σ²)·cos(2π f0 t + φ)`.
///
/// ```
/// use ultrasound::{LinearArray, Pulse};
/// let pulse = Pulse::from_array(&LinearArray::l11_5v());
/// // The pulse peaks at t = 0 and decays away from it.
/// assert!(pulse.evaluate(0.0).abs() > pulse.evaluate(pulse.half_duration()).abs());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pulse {
    center_frequency: f32,
    sigma: f32,
    phase: f32,
}

impl Pulse {
    /// Creates a pulse with an explicit centre frequency (Hz) and Gaussian width σ (s).
    ///
    /// # Panics
    ///
    /// Panics when the frequency or σ is non-positive.
    pub fn new(center_frequency: f32, sigma: f32, phase: f32) -> Self {
        assert!(center_frequency > 0.0, "Pulse: centre frequency must be positive");
        assert!(sigma > 0.0, "Pulse: sigma must be positive");
        Self { center_frequency, sigma, phase }
    }

    /// Derives the two-way pulse for a probe from its centre frequency and fractional
    /// bandwidth. The -6 dB fractional bandwidth `B` of a Gaussian envelope maps to
    /// `σ = sqrt(2 ln 2) / (π B f0)`.
    pub fn from_array(array: &LinearArray) -> Self {
        let f0 = array.center_frequency();
        let bw = array.fractional_bandwidth().max(0.05);
        let sigma = (2.0f32 * std::f32::consts::LN_2).sqrt() / (PI * bw * f0);
        Self { center_frequency: f0, sigma, phase: 0.0 }
    }

    /// Centre frequency in Hz.
    pub fn center_frequency(&self) -> f32 {
        self.center_frequency
    }

    /// Gaussian envelope standard deviation in seconds.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Evaluates the pulse at time `t` (seconds, centred on the pulse peak).
    pub fn evaluate(&self, t: f32) -> f32 {
        let envelope = (-(t * t) / (2.0 * self.sigma * self.sigma)).exp();
        envelope * (2.0 * PI * self.center_frequency * t + self.phase).cos()
    }

    /// Evaluates only the Gaussian envelope at time `t`.
    pub fn envelope(&self, t: f32) -> f32 {
        (-(t * t) / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// Half-duration of the significant pulse support (±4σ covers > 99.99 % of the
    /// energy).
    pub fn half_duration(&self) -> f32 {
        4.0 * self.sigma
    }

    /// Number of samples covered by the significant support at sampling frequency `fs`.
    pub fn support_samples(&self, fs: f32) -> usize {
        (2.0 * self.half_duration() * fs).ceil() as usize + 1
    }

    /// Samples the pulse on a uniform grid of `n` samples centred on the peak.
    pub fn sample(&self, fs: f32, n: usize) -> Vec<f32> {
        let centre = (n as f32 - 1.0) / 2.0;
        (0..n).map(|i| self.evaluate((i as f32 - centre) / fs)).collect()
    }

    /// -6 dB fractional bandwidth implied by the envelope width.
    pub fn fractional_bandwidth(&self) -> f32 {
        (2.0f32 * std::f32::consts::LN_2).sqrt() / (PI * self.sigma * self.center_frequency)
    }
}

impl Default for Pulse {
    fn default() -> Self {
        Self::from_array(&LinearArray::l11_5v())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_peaks_at_zero_and_decays() {
        let pulse = Pulse::default();
        let peak = pulse.evaluate(0.0).abs();
        assert!((peak - 1.0).abs() < 1e-6);
        assert!(pulse.evaluate(pulse.half_duration()).abs() < 1e-3);
        assert!(pulse.envelope(10.0 * pulse.sigma()) < 1e-6);
    }

    #[test]
    fn bandwidth_round_trips_through_sigma() {
        let array = LinearArray::l11_5v();
        let pulse = Pulse::from_array(&array);
        assert!((pulse.fractional_bandwidth() - array.fractional_bandwidth()).abs() < 1e-3);
    }

    #[test]
    fn sample_grid_is_symmetric() {
        let pulse = Pulse::default();
        let fs = 31.25e6;
        let n = 41;
        let samples = pulse.sample(fs, n);
        assert_eq!(samples.len(), n);
        // Envelope symmetry: |p(-t)| == |p(t)| for cos phase.
        for k in 0..n / 2 {
            assert!((samples[k].abs() - samples[n - 1 - k].abs()).abs() < 1e-4);
        }
    }

    #[test]
    fn support_samples_cover_pulse() {
        let pulse = Pulse::default();
        let fs = 31.25e6;
        let n = pulse.support_samples(fs);
        assert!(n > 8, "support {n}");
        let samples = pulse.sample(fs, n);
        assert!(samples[0].abs() < 1e-3);
        assert!(samples[n - 1].abs() < 1e-3);
    }

    #[test]
    fn oscillates_at_center_frequency() {
        let pulse = Pulse::new(5.0e6, 1.0e-6, 0.0);
        // Zero crossings of the carrier occur every half period = 100 ns.
        let quarter = 0.25 / 5.0e6;
        assert!(pulse.evaluate(quarter).abs() < 1e-3);
        assert!(pulse.evaluate(2.0 * quarter) < 0.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_panics() {
        let _ = Pulse::new(5.0e6, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "centre frequency must be positive")]
    fn zero_frequency_panics() {
        let _ = Pulse::new(0.0, 1e-6, 0.0);
    }
}
