//! Linear-array transducer geometry.
//!
//! The paper acquires data with a Verasonics L11-5v probe: a 128-element linear array
//! with a centre frequency of 7.6 MHz sampled at 31.25 MHz. [`LinearArray::l11_5v`]
//! captures that geometry; other configurations can be built with
//! [`LinearArray::builder`].

use crate::{UltrasoundError, UltrasoundResult};
use serde::{Deserialize, Serialize};

/// A 1-D linear transducer array lying along the x-axis at `z = 0`.
///
/// Element positions are centred on the origin so the imaging field of view is symmetric
/// about `x = 0`, matching the PICMUS conventions.
///
/// ```
/// use ultrasound::LinearArray;
/// let probe = LinearArray::l11_5v();
/// assert_eq!(probe.num_elements(), 128);
/// assert!((probe.aperture() - 127.0 * 0.3e-3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearArray {
    num_elements: usize,
    pitch: f32,
    element_width: f32,
    center_frequency: f32,
    fractional_bandwidth: f32,
    sampling_frequency: f32,
}

impl LinearArray {
    /// The L11-5v-like probe used throughout the paper: 128 elements, 0.3 mm pitch,
    /// 7.6 MHz centre frequency, 31.25 MHz sampling.
    pub fn l11_5v() -> Self {
        Self {
            num_elements: 128,
            pitch: 0.3e-3,
            element_width: 0.27e-3,
            center_frequency: 7.6e6,
            fractional_bandwidth: 0.77,
            sampling_frequency: 31.25e6,
        }
    }

    /// A reduced 32-element probe convenient for fast unit tests; same pitch and
    /// frequencies as [`LinearArray::l11_5v`].
    pub fn small_test_array() -> Self {
        Self { num_elements: 32, ..Self::l11_5v() }
    }

    /// Starts building a custom array.
    pub fn builder() -> LinearArrayBuilder {
        LinearArrayBuilder::default()
    }

    /// Number of transducer elements (receive channels).
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Element-to-element pitch in metres.
    pub fn pitch(&self) -> f32 {
        self.pitch
    }

    /// Width of a single element in metres.
    pub fn element_width(&self) -> f32 {
        self.element_width
    }

    /// Transmit centre frequency in Hz.
    pub fn center_frequency(&self) -> f32 {
        self.center_frequency
    }

    /// Fractional (−6 dB) bandwidth of the two-way response.
    pub fn fractional_bandwidth(&self) -> f32 {
        self.fractional_bandwidth
    }

    /// Acquisition sampling frequency in Hz.
    pub fn sampling_frequency(&self) -> f32 {
        self.sampling_frequency
    }

    /// Total aperture (first-to-last element centre distance) in metres.
    pub fn aperture(&self) -> f32 {
        (self.num_elements.saturating_sub(1)) as f32 * self.pitch
    }

    /// Lateral position of element `index` in metres.
    ///
    /// # Panics
    ///
    /// Panics when `index >= num_elements()`.
    pub fn element_x(&self, index: usize) -> f32 {
        assert!(index < self.num_elements, "element index {index} out of range");
        let centre = (self.num_elements as f32 - 1.0) / 2.0;
        (index as f32 - centre) * self.pitch
    }

    /// All element positions.
    pub fn element_positions(&self) -> Vec<f32> {
        (0..self.num_elements).map(|i| self.element_x(i)).collect()
    }

    /// Far-field element directivity for a plane wave arriving at `angle` radians from
    /// the element normal: `sinc(w/λ · sinθ) · cosθ`, clamped to be non-negative.
    pub fn directivity(&self, angle: f32, sound_speed: f32) -> f32 {
        let wavelength = sound_speed / self.center_frequency;
        let x = self.element_width / wavelength * angle.sin();
        let s = if x.abs() < 1e-6 { 1.0 } else { (std::f32::consts::PI * x).sin() / (std::f32::consts::PI * x) };
        (s * angle.cos()).max(0.0)
    }

    /// Returns a copy with a different element count (used to build reduced-size
    /// evaluation configurations).
    pub fn with_num_elements(&self, num_elements: usize) -> Self {
        Self { num_elements, ..self.clone() }
    }
}

impl Default for LinearArray {
    fn default() -> Self {
        Self::l11_5v()
    }
}

/// Builder for [`LinearArray`].
#[derive(Debug, Clone)]
pub struct LinearArrayBuilder {
    num_elements: usize,
    pitch: f32,
    element_width: f32,
    center_frequency: f32,
    fractional_bandwidth: f32,
    sampling_frequency: f32,
}

impl Default for LinearArrayBuilder {
    fn default() -> Self {
        let l11 = LinearArray::l11_5v();
        Self {
            num_elements: l11.num_elements,
            pitch: l11.pitch,
            element_width: l11.element_width,
            center_frequency: l11.center_frequency,
            fractional_bandwidth: l11.fractional_bandwidth,
            sampling_frequency: l11.sampling_frequency,
        }
    }
}

impl LinearArrayBuilder {
    /// Sets the number of elements.
    pub fn num_elements(mut self, n: usize) -> Self {
        self.num_elements = n;
        self
    }

    /// Sets the element pitch in metres.
    pub fn pitch(mut self, pitch: f32) -> Self {
        self.pitch = pitch;
        self
    }

    /// Sets the element width in metres.
    pub fn element_width(mut self, width: f32) -> Self {
        self.element_width = width;
        self
    }

    /// Sets the centre frequency in Hz.
    pub fn center_frequency(mut self, f0: f32) -> Self {
        self.center_frequency = f0;
        self
    }

    /// Sets the fractional bandwidth.
    pub fn fractional_bandwidth(mut self, bw: f32) -> Self {
        self.fractional_bandwidth = bw;
        self
    }

    /// Sets the sampling frequency in Hz.
    pub fn sampling_frequency(mut self, fs: f32) -> Self {
        self.sampling_frequency = fs;
        self
    }

    /// Validates the configuration and builds the array.
    ///
    /// # Errors
    ///
    /// Returns [`UltrasoundError::InvalidConfig`] when any dimension or frequency is
    /// non-positive, when the element width exceeds the pitch, or when the sampling
    /// frequency violates Nyquist for the centre frequency.
    pub fn build(self) -> UltrasoundResult<LinearArray> {
        if self.num_elements < 2 {
            return Err(UltrasoundError::InvalidConfig { field: "num_elements", reason: "need at least 2 elements".into() });
        }
        if self.pitch <= 0.0 {
            return Err(UltrasoundError::InvalidConfig { field: "pitch", reason: "must be positive".into() });
        }
        if self.element_width <= 0.0 || self.element_width > self.pitch {
            return Err(UltrasoundError::InvalidConfig { field: "element_width", reason: "must be positive and no larger than the pitch".into() });
        }
        if self.center_frequency <= 0.0 {
            return Err(UltrasoundError::InvalidConfig { field: "center_frequency", reason: "must be positive".into() });
        }
        if !(0.0..=2.0).contains(&self.fractional_bandwidth) || self.fractional_bandwidth == 0.0 {
            return Err(UltrasoundError::InvalidConfig { field: "fractional_bandwidth", reason: "must lie in (0, 2]".into() });
        }
        if self.sampling_frequency < 2.0 * self.center_frequency {
            return Err(UltrasoundError::InvalidConfig {
                field: "sampling_frequency",
                reason: format!("must be at least Nyquist (2 x {} Hz)", self.center_frequency),
            });
        }
        Ok(LinearArray {
            num_elements: self.num_elements,
            pitch: self.pitch,
            element_width: self.element_width,
            center_frequency: self.center_frequency,
            fractional_bandwidth: self.fractional_bandwidth,
            sampling_frequency: self.sampling_frequency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l11_5v_matches_paper_parameters() {
        let probe = LinearArray::l11_5v();
        assert_eq!(probe.num_elements(), 128);
        assert!((probe.center_frequency() - 7.6e6).abs() < 1.0);
        assert!((probe.sampling_frequency() - 31.25e6).abs() < 1.0);
        assert!((probe.pitch() - 0.3e-3).abs() < 1e-9);
    }

    #[test]
    fn element_positions_are_symmetric() {
        let probe = LinearArray::l11_5v();
        let xs = probe.element_positions();
        assert_eq!(xs.len(), 128);
        assert!((xs[0] + xs[127]).abs() < 1e-9);
        assert!((xs[64] - xs[63] - probe.pitch()).abs() < 1e-9);
        // Mean position is zero (centred aperture).
        let mean: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn element_x_out_of_range_panics() {
        LinearArray::small_test_array().element_x(32);
    }

    #[test]
    fn directivity_peaks_at_normal_incidence() {
        let probe = LinearArray::l11_5v();
        let c = 1540.0;
        let normal = probe.directivity(0.0, c);
        assert!((normal - 1.0).abs() < 1e-6);
        assert!(probe.directivity(0.5, c) < normal);
        assert!(probe.directivity(1.3, c) < probe.directivity(0.5, c));
        assert!(probe.directivity(1.55, c) >= 0.0);
    }

    #[test]
    fn builder_accepts_valid_config() {
        let probe = LinearArray::builder()
            .num_elements(64)
            .pitch(0.2e-3)
            .element_width(0.18e-3)
            .center_frequency(5.0e6)
            .sampling_frequency(20.0e6)
            .fractional_bandwidth(0.6)
            .build()
            .unwrap();
        assert_eq!(probe.num_elements(), 64);
        assert!((probe.aperture() - 63.0 * 0.2e-3).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert!(LinearArray::builder().num_elements(1).build().is_err());
        assert!(LinearArray::builder().pitch(-1.0).build().is_err());
        assert!(LinearArray::builder().element_width(1.0).build().is_err());
        assert!(LinearArray::builder().center_frequency(-5.0).build().is_err());
        assert!(LinearArray::builder().fractional_bandwidth(0.0).build().is_err());
        assert!(LinearArray::builder().sampling_frequency(1.0e6).build().is_err());
    }

    #[test]
    fn with_num_elements_preserves_other_fields() {
        let probe = LinearArray::l11_5v().with_num_elements(32);
        assert_eq!(probe.num_elements(), 32);
        assert_eq!(probe.center_frequency(), LinearArray::l11_5v().center_frequency());
    }

    #[test]
    fn serde_round_trip() {
        let probe = LinearArray::l11_5v();
        let json = serde_json_like(&probe);
        assert!(json.contains("128"));
    }

    // Minimal serialization smoke test without pulling serde_json: use the Debug format
    // as a stand-in for structural stability, and check serde derives compile via a
    // generic bound.
    fn serde_json_like<T: Serialize + std::fmt::Debug>(value: &T) -> String {
        format!("{value:?}")
    }
}
