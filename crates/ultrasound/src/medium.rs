//! Acoustic propagation medium.
//!
//! Holds the speed of sound and a simple frequency-dependent attenuation model
//! (dB/cm/MHz), which is what makes deep targets dimmer than shallow ones — the effect
//! the paper points to when U-Net-style models lose contrast with depth in vivo.

use serde::{Deserialize, Serialize};

/// Homogeneous acoustic medium.
///
/// ```
/// use ultrasound::Medium;
/// let m = Medium::soft_tissue();
/// assert!((m.sound_speed() - 1540.0).abs() < 1e-3);
/// // 1 MHz over 1 cm with 0.5 dB/cm/MHz attenuation halves ~ -0.5 dB.
/// let a = m.attenuation_factor(1.0e6, 0.01);
/// assert!(a < 1.0 && a > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Medium {
    sound_speed: f32,
    attenuation_db_cm_mhz: f32,
}

impl Medium {
    /// Generic soft tissue: 1540 m/s, 0.5 dB/cm/MHz.
    pub fn soft_tissue() -> Self {
        Self { sound_speed: 1540.0, attenuation_db_cm_mhz: 0.5 }
    }

    /// Water-like medium used by calibration phantoms: 1480 m/s, negligible attenuation.
    pub fn water() -> Self {
        Self { sound_speed: 1480.0, attenuation_db_cm_mhz: 0.002 }
    }

    /// Lossless medium (useful for validating geometry without amplitude effects).
    pub fn lossless(sound_speed: f32) -> Self {
        Self { sound_speed, attenuation_db_cm_mhz: 0.0 }
    }

    /// Creates a medium from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics when the sound speed is not positive or attenuation is negative.
    pub fn new(sound_speed: f32, attenuation_db_cm_mhz: f32) -> Self {
        assert!(sound_speed > 0.0, "Medium: sound speed must be positive");
        assert!(attenuation_db_cm_mhz >= 0.0, "Medium: attenuation must be non-negative");
        Self { sound_speed, attenuation_db_cm_mhz }
    }

    /// Speed of sound in m/s.
    pub fn sound_speed(&self) -> f32 {
        self.sound_speed
    }

    /// Attenuation coefficient in dB/cm/MHz.
    pub fn attenuation(&self) -> f32 {
        self.attenuation_db_cm_mhz
    }

    /// Returns a copy with a perturbed sound speed (used by the in-vitro degradation
    /// model to emulate sound-speed mismatch between the beamformer and the medium).
    pub fn with_sound_speed(&self, sound_speed: f32) -> Self {
        Self { sound_speed, attenuation_db_cm_mhz: self.attenuation_db_cm_mhz }
    }

    /// One-way amplitude attenuation factor for a signal at `frequency` Hz travelling
    /// `distance` metres.
    pub fn attenuation_factor(&self, frequency: f32, distance: f32) -> f32 {
        let db = self.attenuation_db_cm_mhz * (frequency / 1.0e6) * (distance * 100.0);
        10.0f32.powf(-db / 20.0)
    }

    /// Wavelength at `frequency` Hz.
    pub fn wavelength(&self, frequency: f32) -> f32 {
        self.sound_speed / frequency
    }
}

impl Default for Medium {
    fn default() -> Self {
        Self::soft_tissue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_values() {
        assert_eq!(Medium::soft_tissue().sound_speed(), 1540.0);
        assert_eq!(Medium::water().sound_speed(), 1480.0);
        assert_eq!(Medium::lossless(1500.0).attenuation(), 0.0);
    }

    #[test]
    fn attenuation_grows_with_depth_and_frequency() {
        let m = Medium::soft_tissue();
        let shallow = m.attenuation_factor(7.6e6, 0.01);
        let deep = m.attenuation_factor(7.6e6, 0.04);
        assert!(deep < shallow);
        let low_f = m.attenuation_factor(2.0e6, 0.02);
        let high_f = m.attenuation_factor(10.0e6, 0.02);
        assert!(high_f < low_f);
        assert!(shallow <= 1.0 && shallow > 0.0);
    }

    #[test]
    fn lossless_factor_is_one() {
        let m = Medium::lossless(1540.0);
        assert_eq!(m.attenuation_factor(7.6e6, 0.1), 1.0);
    }

    #[test]
    fn wavelength_at_center_frequency() {
        let m = Medium::soft_tissue();
        let lambda = m.wavelength(7.6e6);
        assert!((lambda - 1540.0 / 7.6e6).abs() < 1e-9);
    }

    #[test]
    fn with_sound_speed_overrides_only_speed() {
        let m = Medium::soft_tissue().with_sound_speed(1480.0);
        assert_eq!(m.sound_speed(), 1480.0);
        assert_eq!(m.attenuation(), 0.5);
    }

    #[test]
    #[should_panic(expected = "sound speed must be positive")]
    fn invalid_speed_panics() {
        let _ = Medium::new(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "attenuation must be non-negative")]
    fn negative_attenuation_panics() {
        let _ = Medium::new(1540.0, -0.1);
    }
}
