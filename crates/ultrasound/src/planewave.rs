//! Single-angle plane-wave transmit/receive simulation.
//!
//! The simulator follows the classic scatterer-superposition model used by Field II-like
//! tools: a steered plane wave reaches each scatterer after a transmit delay
//! `t_tx = (z·cosθ + x·sinθ)/c`; the echo travels back to each array element over the
//! geometric distance; the received trace is the sum of amplitude-weighted, delayed
//! copies of the two-way pulse. Amplitude weights combine scatterer reflectivity,
//! element directivity, frequency-dependent attenuation and spherical spreading.

use crate::acquisition::{AcquisitionConfig, ChannelData};
use crate::medium::Medium;
use crate::phantom::Phantom;
use crate::pulse::Pulse;
use crate::transducer::LinearArray;
use crate::{UltrasoundError, UltrasoundResult};
use serde::{Deserialize, Serialize};

/// A steered plane-wave transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaneWave {
    /// Steering angle in radians (0 = straight down, the paper's single-angle case).
    pub angle: f32,
}

impl PlaneWave {
    /// A non-steered (0°) plane wave — the single-angle insonification the paper uses.
    pub fn zero_angle() -> Self {
        Self { angle: 0.0 }
    }

    /// A plane wave steered by `degrees`.
    pub fn from_degrees(degrees: f32) -> Self {
        Self { angle: degrees.to_radians() }
    }

    /// Transmit delay (seconds) for the wavefront to reach point `(x, z)`.
    pub fn transmit_delay(&self, x: f32, z: f32, sound_speed: f32) -> f32 {
        (z * self.angle.cos() + x * self.angle.sin()) / sound_speed
    }
}

impl Default for PlaneWave {
    fn default() -> Self {
        Self::zero_angle()
    }
}

/// Plane-wave channel-data simulator for a linear array.
///
/// ```
/// use ultrasound::{LinearArray, Medium, Phantom, PlaneWave, PlaneWaveSimulator};
/// let array = LinearArray::small_test_array();
/// let sim = PlaneWaveSimulator::new(array, Medium::soft_tissue(), 0.03);
/// let phantom = Phantom::builder(0.01, 0.03).add_point_target(0.0, 0.02, 1.0).build();
/// let rf = sim.simulate(&phantom, PlaneWave::zero_angle())?;
/// assert_eq!(rf.num_channels(), 32);
/// # Ok::<(), ultrasound::UltrasoundError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlaneWaveSimulator {
    array: LinearArray,
    medium: Medium,
    pulse: Pulse,
    config: AcquisitionConfig,
    num_threads: usize,
}

impl PlaneWaveSimulator {
    /// Creates a simulator imaging down to `max_depth` metres.
    pub fn new(array: LinearArray, medium: Medium, max_depth: f32) -> Self {
        let pulse = Pulse::from_array(&array);
        let config = AcquisitionConfig::for_depth(&array, medium.sound_speed(), max_depth);
        Self { array, medium, pulse, config, num_threads: default_threads() }
    }

    /// Overrides the transmit pulse.
    pub fn with_pulse(mut self, pulse: Pulse) -> Self {
        self.pulse = pulse;
        self
    }

    /// Overrides the acquisition configuration.
    pub fn with_config(mut self, config: AcquisitionConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the number of worker threads used during simulation (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.num_threads = threads.max(1);
        self
    }

    /// The probe geometry being simulated.
    pub fn array(&self) -> &LinearArray {
        &self.array
    }

    /// The propagation medium.
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// The transmit pulse.
    pub fn pulse(&self) -> &Pulse {
        &self.pulse
    }

    /// The acquisition configuration (timing, sample count).
    pub fn config(&self) -> &AcquisitionConfig {
        &self.config
    }

    /// Simulates the received RF channel data for one plane-wave transmission.
    ///
    /// # Errors
    ///
    /// Returns [`UltrasoundError::EmptyPhantom`] when the phantom has no scatterers and
    /// propagates configuration validation errors.
    pub fn simulate(&self, phantom: &Phantom, tx: PlaneWave) -> UltrasoundResult<ChannelData> {
        self.config.validate()?;
        if phantom.is_empty() {
            return Err(UltrasoundError::EmptyPhantom);
        }
        let num_channels = self.array.num_elements();
        let num_samples = self.config.num_samples;
        let fs = self.config.sampling_frequency;
        let c = self.medium.sound_speed();
        let f0 = self.array.center_frequency();
        let half_support = self.pulse.half_duration();
        let support = self.pulse.support_samples(fs);

        let element_xs = self.array.element_positions();
        let scatterers = phantom.scatterers();

        // Each worker fills a disjoint chunk of channels, so the traces can be written
        // without locking and stitched together afterwards. The chunking lives in the
        // shared `runtime` helper; per-channel values depend only on the channel index,
        // so the result is identical for every thread count.
        let mut traces: Vec<Vec<f32>> = vec![Vec::new(); num_channels];
        let (pulse, medium, array, config) = (&self.pulse, &self.medium, &self.array, &self.config);
        runtime::par_chunks_mut(&mut traces, self.num_threads, |first_channel, trace_chunk| {
            for (local, trace) in trace_chunk.iter_mut().enumerate() {
                let xe = element_xs[first_channel + local];
                let mut line = vec![0.0f32; num_samples];
                for s in scatterers {
                    let t_tx = tx.transmit_delay(s.x, s.z, c);
                    let dx = s.x - xe;
                    let rx_dist = (dx * dx + s.z * s.z).sqrt();
                    let t_rx = rx_dist / c;
                    let t_arrival = t_tx + t_rx;
                    let centre_idx = config.time_to_sample(t_arrival);
                    if centre_idx < -(support as f32) || centre_idx > (num_samples + support) as f32 {
                        continue;
                    }
                    // Receive angle relative to the element normal (straight down).
                    let rx_angle = dx.atan2(s.z);
                    let directivity = array.directivity(rx_angle, c);
                    if directivity <= 0.0 {
                        continue;
                    }
                    let path = s.z + rx_dist; // transmit depth + receive distance
                    let attenuation = medium.attenuation_factor(f0, path);
                    let spreading = 1.0e-3 / rx_dist.max(1.0e-3);
                    let amplitude = s.amplitude * directivity * attenuation * spreading;
                    if amplitude == 0.0 {
                        continue;
                    }
                    let k_lo = ((centre_idx - half_support * fs).floor().max(0.0)) as usize;
                    let k_hi = ((centre_idx + half_support * fs).ceil() as usize).min(num_samples.saturating_sub(1));
                    for k in k_lo..=k_hi.min(num_samples - 1) {
                        let t = (k as f32 - centre_idx) / fs;
                        line[k] += amplitude * pulse.evaluate(t);
                    }
                }
                *trace = line;
            }
        });

        let mut data = ChannelData::from_channel_traces(&traces, fs)?;
        data.set_start_time(self.config.start_time);
        Ok(data)
    }

    /// Simulates a coherently compounded multi-angle acquisition by summing the channel
    /// data of several steering angles (used to build the fine-tuning targets that stand
    /// in for the CUBDL multi-angle data).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; returns [`UltrasoundError::InvalidConfig`] when no
    /// angles are supplied.
    pub fn simulate_compounded(&self, phantom: &Phantom, angles_deg: &[f32]) -> UltrasoundResult<Vec<ChannelData>> {
        if angles_deg.is_empty() {
            return Err(UltrasoundError::InvalidConfig { field: "angles_deg", reason: "need at least one angle".into() });
        }
        angles_deg
            .iter()
            .map(|&a| self.simulate(phantom, PlaneWave::from_degrees(a)))
            .collect()
    }
}

fn default_threads() -> usize {
    runtime::default_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_simulator() -> PlaneWaveSimulator {
        PlaneWaveSimulator::new(LinearArray::small_test_array(), Medium::soft_tissue(), 0.03)
    }

    #[test]
    fn zero_angle_delay_depends_only_on_depth() {
        let pw = PlaneWave::zero_angle();
        let c = 1540.0;
        assert!((pw.transmit_delay(0.01, 0.02, c) - pw.transmit_delay(-0.01, 0.02, c)).abs() < 1e-12);
        assert!(pw.transmit_delay(0.0, 0.03, c) > pw.transmit_delay(0.0, 0.02, c));
    }

    #[test]
    fn steered_delay_varies_with_lateral_position() {
        let pw = PlaneWave::from_degrees(10.0);
        let c = 1540.0;
        assert!(pw.transmit_delay(0.01, 0.02, c) > pw.transmit_delay(-0.01, 0.02, c));
    }

    #[test]
    fn empty_phantom_is_rejected() {
        let sim = test_simulator();
        let empty = Phantom::builder(0.01, 0.03).build();
        assert_eq!(sim.simulate(&empty, PlaneWave::zero_angle()).unwrap_err(), UltrasoundError::EmptyPhantom);
    }

    #[test]
    fn point_target_echo_arrives_at_expected_time() {
        let sim = test_simulator();
        let depth = 0.02f32;
        let phantom = Phantom::builder(0.01, 0.03).add_point_target(0.0, depth, 1.0).build();
        let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap();

        // Centre element is closest to directly above the scatterer: expected two-way
        // time ~ 2 * depth / c.
        let c = sim.medium().sound_speed();
        let fs = rf.sampling_frequency();
        let centre_ch = rf.num_channels() / 2;
        let trace = rf.channel(centre_ch);
        let (peak_idx, _) = trace
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        let expected_idx = 2.0 * depth / c * fs;
        assert!(
            (peak_idx as f32 - expected_idx).abs() < 12.0,
            "peak at {peak_idx}, expected ~{expected_idx}"
        );
    }

    #[test]
    fn echo_is_delayed_more_on_outer_elements() {
        let sim = test_simulator();
        let phantom = Phantom::builder(0.01, 0.03).add_point_target(0.0, 0.02, 1.0).build();
        let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap();
        let peak_index = |ch: usize| {
            rf.channel(ch)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        let centre = peak_index(rf.num_channels() / 2);
        let edge = peak_index(0);
        assert!(edge > centre, "edge {edge} centre {centre}");
    }

    #[test]
    fn deeper_targets_are_weaker() {
        let sim = PlaneWaveSimulator::new(LinearArray::small_test_array(), Medium::soft_tissue(), 0.05);
        let shallow = Phantom::builder(0.01, 0.05).add_point_target(0.0, 0.01, 1.0).build();
        let deep = Phantom::builder(0.01, 0.05).add_point_target(0.0, 0.04, 1.0).build();
        let rf_shallow = sim.simulate(&shallow, PlaneWave::zero_angle()).unwrap();
        let rf_deep = sim.simulate(&deep, PlaneWave::zero_angle()).unwrap();
        assert!(rf_deep.peak() < rf_shallow.peak());
    }

    #[test]
    fn amplitude_scales_linearly_with_reflectivity() {
        let sim = test_simulator();
        let weak = Phantom::builder(0.01, 0.03).add_point_target(0.0, 0.02, 1.0).build();
        let strong = Phantom::builder(0.01, 0.03).add_point_target(0.0, 0.02, 3.0).build();
        let rf_weak = sim.simulate(&weak, PlaneWave::zero_angle()).unwrap();
        let rf_strong = sim.simulate(&strong, PlaneWave::zero_angle()).unwrap();
        assert!((rf_strong.peak() / rf_weak.peak() - 3.0).abs() < 0.05);
    }

    #[test]
    fn superposition_of_two_targets() {
        // Simulating two well-separated targets equals the sum of simulating each alone.
        let sim = test_simulator();
        let a = Phantom::builder(0.01, 0.03).add_point_target(-0.003, 0.015, 1.0).build();
        let b = Phantom::builder(0.01, 0.03).add_point_target(0.003, 0.025, 1.0).build();
        let both = Phantom::builder(0.01, 0.03)
            .add_point_target(-0.003, 0.015, 1.0)
            .add_point_target(0.003, 0.025, 1.0)
            .build();
        let rf_a = sim.simulate(&a, PlaneWave::zero_angle()).unwrap();
        let rf_b = sim.simulate(&b, PlaneWave::zero_angle()).unwrap();
        let rf_both = sim.simulate(&both, PlaneWave::zero_angle()).unwrap();
        for ch in [0, 8, 16, 31] {
            let ta = rf_a.channel(ch);
            let tb = rf_b.channel(ch);
            let tboth = rf_both.channel(ch);
            for k in (0..ta.len()).step_by(17) {
                assert!((ta[k] + tb[k] - tboth[k]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let phantom = Phantom::builder(0.01, 0.03)
            .seed(4)
            .speckle_density(50.0)
            .add_point_target(0.0, 0.02, 5.0)
            .build();
        let sim1 = test_simulator().with_threads(1);
        let sim4 = test_simulator().with_threads(4);
        let a = sim1.simulate(&phantom, PlaneWave::zero_angle()).unwrap();
        let b = sim4.simulate(&phantom, PlaneWave::zero_angle()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compounded_simulation_produces_one_frame_per_angle() {
        let sim = test_simulator();
        let phantom = Phantom::builder(0.01, 0.03).add_point_target(0.0, 0.02, 1.0).build();
        let frames = sim.simulate_compounded(&phantom, &[-5.0, 0.0, 5.0]).unwrap();
        assert_eq!(frames.len(), 3);
        assert!(sim.simulate_compounded(&phantom, &[]).is_err());
    }

    #[test]
    fn steering_shifts_lateral_emphasis() {
        // With a steered transmission the arrival time at the centre element changes by
        // x*sin(theta)/c for off-axis targets.
        let sim = test_simulator();
        let phantom = Phantom::builder(0.02, 0.03).add_point_target(0.005, 0.02, 1.0).build();
        let rf0 = sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap();
        let rf10 = sim.simulate(&phantom, PlaneWave::from_degrees(10.0)).unwrap();
        let peak_idx = |rf: &ChannelData, ch: usize| {
            rf.channel(ch)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        let ch = rf0.num_channels() / 2;
        assert!(peak_idx(&rf10, ch) > peak_idx(&rf0, ch));
    }
}
