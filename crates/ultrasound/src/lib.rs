//! Single-angle plane-wave ultrasound acquisition simulator.
//!
//! The Tiny-VBF paper trains and evaluates on raw radio-frequency (RF) channel data from
//! a Verasonics research scanner and on the PICMUS 2016 challenge datasets. Neither is
//! available here, so this crate provides the physics-based substitute described in
//! `DESIGN.md`:
//!
//! * [`transducer`] — linear-array geometry (an L11-5v-like 128-element probe preset),
//! * [`pulse`] — Gaussian-modulated transmit pulse / two-way waveform,
//! * [`medium`] — speed of sound and frequency-dependent attenuation,
//! * [`phantom`] — scatterer maps: point targets, anechoic cysts, speckle,
//! * [`planewave`] — the single-angle plane-wave transmit/receive simulator producing
//!   per-channel RF traces by scatterer superposition,
//! * [`acquisition`] — the sampled channel-data container and acquisition settings,
//! * [`invitro`] — the degradation model that turns clean "in-silico" acquisitions into
//!   "in-vitro"-like ones (noise, element spread, sound-speed error, clutter),
//! * [`picmus`] — PICMUS-like evaluation datasets (resolution-distortion and
//!   contrast-speckle, in-silico and in-vitro variants),
//! * [`dataset`] — reproducible training/evaluation frame generation.
//!
//! # Example
//!
//! ```
//! use ultrasound::picmus::{PicmusDataset, PicmusKind};
//!
//! // A miniature in-silico contrast dataset (small scale so the doctest stays fast).
//! let dataset = PicmusDataset::contrast(PicmusKind::InSilico)
//!     .with_scale(0.15)
//!     .build(7)?;
//! assert!(dataset.channel_data.num_channels() >= 16);
//! # Ok::<(), ultrasound::UltrasoundError>(())
//! ```

#![deny(missing_docs)]

pub mod acquisition;
pub mod dataset;
pub mod invitro;
pub mod medium;
pub mod phantom;
pub mod picmus;
pub mod planewave;
pub mod pulse;
pub mod transducer;

pub use acquisition::{AcquisitionConfig, ChannelData};
pub use medium::Medium;
pub use phantom::{Phantom, Scatterer};
pub use planewave::{PlaneWave, PlaneWaveSimulator};
pub use pulse::Pulse;
pub use transducer::LinearArray;

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running the acquisition simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum UltrasoundError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Why the value is rejected.
        reason: String,
    },
    /// The phantom contains no scatterers and the operation needs at least one.
    EmptyPhantom,
    /// A data container had an unexpected shape.
    ShapeMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
}

impl fmt::Display for UltrasoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UltrasoundError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            UltrasoundError::EmptyPhantom => write!(f, "phantom contains no scatterers"),
            UltrasoundError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected} elements, got {actual}")
            }
        }
    }
}

impl Error for UltrasoundError {}

/// Convenience result alias used across the crate.
pub type UltrasoundResult<T> = Result<T, UltrasoundError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = UltrasoundError::InvalidConfig { field: "pitch", reason: "must be positive".into() };
        assert!(e.to_string().contains("pitch"));
        assert!(!UltrasoundError::EmptyPhantom.to_string().is_empty());
        assert!(UltrasoundError::ShapeMismatch { expected: 3, actual: 4 }.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UltrasoundError>();
    }
}
