//! Sampled channel data and acquisition settings.
//!
//! [`ChannelData`] is the raw RF tensor the whole pipeline consumes: `num_samples` time
//! samples by `num_channels` receive elements for one plane-wave transmission.

use crate::transducer::LinearArray;
use crate::{UltrasoundError, UltrasoundResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Acquisition timing/sampling settings for one plane-wave shot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcquisitionConfig {
    /// Sampling frequency in Hz.
    pub sampling_frequency: f32,
    /// Number of time samples recorded per channel.
    pub num_samples: usize,
    /// Time of the first recorded sample relative to the transmit event, in seconds.
    pub start_time: f32,
}

impl AcquisitionConfig {
    /// Builds a configuration that covers depths up to `max_depth` metres (two-way) for
    /// the given probe and speed of sound.
    pub fn for_depth(array: &LinearArray, sound_speed: f32, max_depth: f32) -> Self {
        let fs = array.sampling_frequency();
        // Two-way travel to max depth plus slack for the farthest element and pulse tail.
        let t_max = 2.0 * max_depth / sound_speed + (array.aperture() / sound_speed) + 4.0e-6;
        Self {
            sampling_frequency: fs,
            num_samples: (t_max * fs).ceil() as usize,
            start_time: 0.0,
        }
    }

    /// Time of sample `k` relative to transmit, in seconds.
    pub fn sample_time(&self, k: usize) -> f32 {
        self.start_time + k as f32 / self.sampling_frequency
    }

    /// Fractional sample index corresponding to time `t`, which may be out of range.
    pub fn time_to_sample(&self, t: f32) -> f32 {
        (t - self.start_time) * self.sampling_frequency
    }

    /// Total acquisition duration in seconds.
    pub fn duration(&self) -> f32 {
        self.num_samples as f32 / self.sampling_frequency
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`UltrasoundError::InvalidConfig`] when the sampling frequency or sample
    /// count is non-positive.
    pub fn validate(&self) -> UltrasoundResult<()> {
        if self.sampling_frequency <= 0.0 {
            return Err(UltrasoundError::InvalidConfig { field: "sampling_frequency", reason: "must be positive".into() });
        }
        if self.num_samples == 0 {
            return Err(UltrasoundError::InvalidConfig { field: "num_samples", reason: "must be nonzero".into() });
        }
        Ok(())
    }
}

/// Raw RF channel data for a single transmission: a dense `num_samples × num_channels`
/// matrix stored row-major (sample-major).
///
/// ```
/// use ultrasound::ChannelData;
/// let mut data = ChannelData::zeros(4, 2, 31.25e6);
/// *data.sample_mut(1, 0) = 3.0;
/// assert_eq!(data.sample(1, 0), 3.0);
/// assert_eq!(data.channel(0)[1], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelData {
    samples: Vec<f32>,
    num_samples: usize,
    num_channels: usize,
    sampling_frequency: f32,
    start_time: f32,
}

impl ChannelData {
    /// Creates an all-zero container.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn zeros(num_samples: usize, num_channels: usize, sampling_frequency: f32) -> Self {
        assert!(num_samples > 0 && num_channels > 0, "ChannelData dimensions must be nonzero");
        Self {
            samples: vec![0.0; num_samples * num_channels],
            num_samples,
            num_channels,
            sampling_frequency,
            start_time: 0.0,
        }
    }

    /// Builds channel data from a flat sample-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`UltrasoundError::ShapeMismatch`] when the vector length does not equal
    /// `num_samples * num_channels`.
    pub fn from_vec(
        samples: Vec<f32>,
        num_samples: usize,
        num_channels: usize,
        sampling_frequency: f32,
    ) -> UltrasoundResult<Self> {
        if samples.len() != num_samples * num_channels {
            return Err(UltrasoundError::ShapeMismatch { expected: num_samples * num_channels, actual: samples.len() });
        }
        Ok(Self { samples, num_samples, num_channels, sampling_frequency, start_time: 0.0 })
    }

    /// Number of time samples per channel.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Number of receive channels.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Sampling frequency in Hz.
    pub fn sampling_frequency(&self) -> f32 {
        self.sampling_frequency
    }

    /// Time of the first sample relative to transmit.
    pub fn start_time(&self) -> f32 {
        self.start_time
    }

    /// Sets the start time (seconds relative to transmit).
    pub fn set_start_time(&mut self, t: f32) {
        self.start_time = t;
    }

    /// Value of sample `k` on channel `ch`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    #[inline]
    pub fn sample(&self, k: usize, ch: usize) -> f32 {
        assert!(k < self.num_samples && ch < self.num_channels, "sample index out of range");
        self.samples[k * self.num_channels + ch]
    }

    /// Mutable access to sample `k` on channel `ch`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    #[inline]
    pub fn sample_mut(&mut self, k: usize, ch: usize) -> &mut f32 {
        assert!(k < self.num_samples && ch < self.num_channels, "sample index out of range");
        &mut self.samples[k * self.num_channels + ch]
    }

    /// Copies one channel's trace into a contiguous vector.
    pub fn channel(&self, ch: usize) -> Vec<f32> {
        assert!(ch < self.num_channels, "channel index out of range");
        (0..self.num_samples).map(|k| self.samples[k * self.num_channels + ch]).collect()
    }

    /// Copies all channels into a vector of traces (channel-major).
    pub fn to_channel_traces(&self) -> Vec<Vec<f32>> {
        (0..self.num_channels).map(|ch| self.channel(ch)).collect()
    }

    /// Builds channel data from channel-major traces.
    ///
    /// # Errors
    ///
    /// Returns [`UltrasoundError::ShapeMismatch`] when traces have unequal lengths and
    /// [`UltrasoundError::InvalidConfig`] when the input is empty.
    pub fn from_channel_traces(traces: &[Vec<f32>], sampling_frequency: f32) -> UltrasoundResult<Self> {
        if traces.is_empty() || traces[0].is_empty() {
            return Err(UltrasoundError::InvalidConfig { field: "traces", reason: "must contain at least one non-empty channel".into() });
        }
        let num_samples = traces[0].len();
        for t in traces {
            if t.len() != num_samples {
                return Err(UltrasoundError::ShapeMismatch { expected: num_samples, actual: t.len() });
            }
        }
        let num_channels = traces.len();
        let mut data = Self::zeros(num_samples, num_channels, sampling_frequency);
        for (ch, trace) in traces.iter().enumerate() {
            for (k, &v) in trace.iter().enumerate() {
                *data.sample_mut(k, ch) = v;
            }
        }
        Ok(data)
    }

    /// Flat sample-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.samples
    }

    /// Mutable flat view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.samples
    }

    /// Root-mean-square amplitude over all samples and channels.
    pub fn rms(&self) -> f32 {
        if self.samples.is_empty() {
            return 0.0;
        }
        (self.samples.iter().map(|v| v * v).sum::<f32>() / self.samples.len() as f32).sqrt()
    }

    /// Peak absolute amplitude.
    pub fn peak(&self) -> f32 {
        self.samples.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Normalizes the data in place so the peak absolute amplitude is 1 (no-op when all
    /// samples are zero). Returns the scale factor applied.
    pub fn normalize_peak(&mut self) -> f32 {
        let peak = self.peak();
        if peak <= 0.0 {
            return 1.0;
        }
        let scale = 1.0 / peak;
        for v in self.samples.iter_mut() {
            *v *= scale;
        }
        scale
    }

    /// Adds zero-mean white Gaussian noise at the requested SNR (dB, relative to the
    /// current RMS). Deterministic for a given seed.
    pub fn add_white_noise(&mut self, snr_db: f32, seed: u64) {
        let signal_rms = self.rms();
        if signal_rms <= 0.0 {
            return;
        }
        let noise_rms = signal_rms / 10.0f32.powf(snr_db / 20.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for v in self.samples.iter_mut() {
            // Box-Muller transform for a standard normal sample.
            let u1: f32 = rng.gen_range(1e-9..1.0f32);
            let u2: f32 = rng.gen_range(0.0..1.0f32);
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            *v += noise_rms * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_for_depth_covers_two_way_travel() {
        let array = LinearArray::l11_5v();
        let cfg = AcquisitionConfig::for_depth(&array, 1540.0, 0.045);
        cfg.validate().unwrap();
        let needed = 2.0 * 0.045 / 1540.0;
        assert!(cfg.duration() > needed);
        assert!(cfg.num_samples > 1500);
    }

    #[test]
    fn config_time_mapping_round_trips() {
        let cfg = AcquisitionConfig { sampling_frequency: 31.25e6, num_samples: 100, start_time: 1e-6 };
        let t = cfg.sample_time(50);
        assert!((cfg.time_to_sample(t) - 50.0).abs() < 1e-3);
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(AcquisitionConfig { sampling_frequency: 0.0, num_samples: 10, start_time: 0.0 }.validate().is_err());
        assert!(AcquisitionConfig { sampling_frequency: 1.0e6, num_samples: 0, start_time: 0.0 }.validate().is_err());
    }

    #[test]
    fn indexing_and_channel_extraction() {
        let mut d = ChannelData::zeros(3, 2, 1.0e6);
        *d.sample_mut(0, 0) = 1.0;
        *d.sample_mut(1, 1) = 2.0;
        *d.sample_mut(2, 0) = 3.0;
        assert_eq!(d.channel(0), vec![1.0, 0.0, 3.0]);
        assert_eq!(d.channel(1), vec![0.0, 2.0, 0.0]);
        assert_eq!(d.num_samples(), 3);
        assert_eq!(d.num_channels(), 2);
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(ChannelData::from_vec(vec![0.0; 6], 3, 2, 1.0).is_ok());
        assert!(matches!(
            ChannelData::from_vec(vec![0.0; 5], 3, 2, 1.0),
            Err(UltrasoundError::ShapeMismatch { expected: 6, actual: 5 })
        ));
    }

    #[test]
    fn channel_trace_round_trip() {
        let traces = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let d = ChannelData::from_channel_traces(&traces, 1.0).unwrap();
        assert_eq!(d.to_channel_traces(), traces);
        assert!(ChannelData::from_channel_traces(&[], 1.0).is_err());
        assert!(ChannelData::from_channel_traces(&[vec![1.0], vec![1.0, 2.0]], 1.0).is_err());
    }

    #[test]
    fn rms_peak_and_normalization() {
        let mut d = ChannelData::from_vec(vec![0.0, -4.0, 3.0, 0.0], 2, 2, 1.0).unwrap();
        assert_eq!(d.peak(), 4.0);
        assert!((d.rms() - (25.0f32 / 4.0).sqrt()).abs() < 1e-6);
        let scale = d.normalize_peak();
        assert!((scale - 0.25).abs() < 1e-6);
        assert_eq!(d.peak(), 1.0);
    }

    #[test]
    fn normalize_all_zero_is_noop() {
        let mut d = ChannelData::zeros(2, 2, 1.0);
        assert_eq!(d.normalize_peak(), 1.0);
        assert_eq!(d.peak(), 0.0);
    }

    #[test]
    fn white_noise_hits_requested_snr() {
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut d = ChannelData::from_vec(samples.clone(), n / 4, 4, 1.0).unwrap();
        let clean_rms = d.rms();
        d.add_white_noise(20.0, 7);
        // noise rms should be ~ clean_rms / 10
        let noise: Vec<f32> = d.as_slice().iter().zip(samples.iter()).map(|(a, b)| a - b).collect();
        let noise_rms = (noise.iter().map(|v| v * v).sum::<f32>() / n as f32).sqrt();
        assert!((noise_rms / clean_rms - 0.1).abs() < 0.02, "ratio {}", noise_rms / clean_rms);
    }

    #[test]
    fn white_noise_is_deterministic_per_seed() {
        let base = ChannelData::from_vec(vec![1.0; 64], 16, 4, 1.0).unwrap();
        let mut a = base.clone();
        let mut b = base.clone();
        let mut c = base;
        a.add_white_noise(10.0, 1);
        b.add_white_noise(10.0, 1);
        c.add_white_noise(10.0, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_sample_panics() {
        let d = ChannelData::zeros(2, 2, 1.0);
        let _ = d.sample(2, 0);
    }
}
