//! Training-set generation.
//!
//! The paper trains Tiny-VBF on Verasonics acquisitions of varied scenes and fine-tunes
//! on multi-angle CUBDL frames. Our substitute generates random training phantoms
//! (speckle plus random cysts and bright targets), simulates the single-angle RF frame
//! for each, and hands the pairs to the `tiny-vbf` crate, which beamforms the MVDR
//! training targets from the very same channel data.

use crate::acquisition::ChannelData;
use crate::invitro::InVitroDegradation;
use crate::medium::Medium;
use crate::phantom::Phantom;
use crate::planewave::{PlaneWave, PlaneWaveSimulator};
use crate::transducer::LinearArray;
use crate::UltrasoundResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One training example: the raw RF frame plus the phantom it came from.
#[derive(Debug, Clone)]
pub struct TrainingFrame {
    /// Simulated single-angle RF channel data.
    pub channel_data: ChannelData,
    /// Ground-truth scatterer map (useful for debugging and for building targets).
    pub phantom: Phantom,
    /// Seed used to generate this frame.
    pub seed: u64,
}

/// Configuration of the random training-set generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingSetConfig {
    /// Probe geometry (defaults to the scaled L11-5v).
    pub array: LinearArray,
    /// Propagation medium.
    pub medium: Medium,
    /// Maximum imaging depth in metres.
    pub max_depth: f32,
    /// Speckle density in scatterers per cm².
    pub speckle_density: f32,
    /// Maximum number of random anechoic cysts per frame.
    pub max_cysts: usize,
    /// Maximum number of random bright point targets per frame.
    pub max_points: usize,
    /// Probability of passing a frame through the in-vitro degradation model
    /// (augmentation that mimics acquiring part of the training set on hardware).
    pub degradation_probability: f32,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for TrainingSetConfig {
    fn default() -> Self {
        Self {
            array: LinearArray::l11_5v(),
            medium: Medium::soft_tissue(),
            max_depth: 45.0e-3,
            speckle_density: 800.0,
            max_cysts: 3,
            max_points: 4,
            degradation_probability: 0.25,
            seed: 2024,
        }
    }
}

impl TrainingSetConfig {
    /// A small configuration (few channels, shallow depth) for tests and examples.
    pub fn small() -> Self {
        Self {
            array: LinearArray::small_test_array(),
            max_depth: 30.0e-3,
            speckle_density: 150.0,
            ..Self::default()
        }
    }

    /// Generates the random phantom for frame `index`.
    pub fn phantom(&self, index: usize) -> Phantom {
        let seed = self.seed.wrapping_add(index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        let width = self.array.aperture() * 1.05 + 4.0e-3;
        let mut builder = Phantom::builder(width, self.max_depth)
            .seed(seed ^ 0xABCD)
            .speckle_density(self.speckle_density)
            .speckle_amplitude(1.0);
        let n_cysts = rng.gen_range(0..=self.max_cysts);
        for _ in 0..n_cysts {
            let cx = rng.gen_range(-width * 0.3..width * 0.3);
            let cz = rng.gen_range(8.0e-3..self.max_depth * 0.9);
            let radius = rng.gen_range(2.0e-3..5.0e-3);
            builder = builder.add_cyst(cx, cz, radius);
        }
        let n_points = rng.gen_range(0..=self.max_points);
        for _ in 0..n_points {
            let px = rng.gen_range(-width * 0.35..width * 0.35);
            let pz = rng.gen_range(6.0e-3..self.max_depth * 0.95);
            let amp = rng.gen_range(10.0..40.0);
            builder = builder.add_point_target(px, pz, amp);
        }
        builder.build()
    }

    /// Generates `count` training frames.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (for example a degenerate acquisition window).
    pub fn generate(&self, count: usize) -> UltrasoundResult<Vec<TrainingFrame>> {
        let simulator = PlaneWaveSimulator::new(self.array.clone(), self.medium, self.max_depth);
        let mut frames = Vec::with_capacity(count);
        for index in 0..count {
            let phantom = self.phantom(index);
            let seed = self.seed.wrapping_add(index as u64);
            let mut channel_data = if phantom.is_empty() {
                // A fully empty random phantom (possible with zero speckle density and
                // zero targets drawn) still yields a frame of silence.
                ChannelData::zeros(
                    simulator.config().num_samples,
                    self.array.num_elements(),
                    self.array.sampling_frequency(),
                )
            } else {
                simulator.simulate(&phantom, PlaneWave::zero_angle())?
            };
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAF);
            if rng.gen::<f32>() < self.degradation_probability {
                InVitroDegradation { seed, ..InVitroDegradation::mild() }.apply(&mut channel_data);
            }
            frames.push(TrainingFrame { channel_data, phantom, seed });
        }
        Ok(frames)
    }
}

/// Splits frames into a training and validation partition (validation gets
/// `validation_fraction` of the frames, at least one when possible).
pub fn train_validation_split(
    frames: Vec<TrainingFrame>,
    validation_fraction: f32,
) -> (Vec<TrainingFrame>, Vec<TrainingFrame>) {
    let total = frames.len();
    if total < 2 {
        return (frames, Vec::new());
    }
    let n_val = ((total as f32 * validation_fraction.clamp(0.0, 0.9)).round() as usize).clamp(1, total - 1);
    let mut train = frames;
    let val = train.split_off(total - n_val);
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_frames() {
        let cfg = TrainingSetConfig { speckle_density: 30.0, max_depth: 0.02, ..TrainingSetConfig::small() };
        let frames = cfg.generate(3).unwrap();
        assert_eq!(frames.len(), 3);
        for f in &frames {
            assert_eq!(f.channel_data.num_channels(), cfg.array.num_elements());
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let cfg = TrainingSetConfig { speckle_density: 20.0, max_depth: 0.02, degradation_probability: 1.0, ..TrainingSetConfig::small() };
        let a = cfg.generate(2).unwrap();
        let b = cfg.generate(2).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.channel_data, y.channel_data);
        }
    }

    #[test]
    fn different_frames_use_different_phantoms() {
        let cfg = TrainingSetConfig::small();
        let p0 = cfg.phantom(0);
        let p1 = cfg.phantom(1);
        assert_ne!(p0, p1);
    }

    #[test]
    fn split_respects_fraction_and_degenerate_cases() {
        let cfg = TrainingSetConfig { speckle_density: 5.0, max_depth: 0.015, max_cysts: 0, max_points: 1, ..TrainingSetConfig::small() };
        let frames = cfg.generate(5).unwrap();
        let (train, val) = train_validation_split(frames, 0.4);
        assert_eq!(train.len() + val.len(), 5);
        assert_eq!(val.len(), 2);

        let single = cfg.generate(1).unwrap();
        let (train1, val1) = train_validation_split(single, 0.5);
        assert_eq!(train1.len(), 1);
        assert!(val1.is_empty());
    }

    #[test]
    fn empty_phantom_yields_silent_frame() {
        let cfg = TrainingSetConfig {
            speckle_density: 0.0,
            max_cysts: 0,
            max_points: 0,
            degradation_probability: 0.0,
            max_depth: 0.015,
            ..TrainingSetConfig::small()
        };
        let frames = cfg.generate(1).unwrap();
        assert_eq!(frames[0].channel_data.peak(), 0.0);
    }
}
