//! PICMUS-like evaluation datasets.
//!
//! The paper evaluates on the four PICMUS 2016 configurations: resolution-distortion and
//! contrast-speckle, each as in-silico (Field II) and in-vitro (CIRS phantom) data. This
//! module builds synthetic equivalents with the same target layouts:
//!
//! * **contrast, in-silico** — anechoic cysts at 13 mm, 25 mm and 37 mm depth (Fig. 9),
//! * **contrast, in-vitro** — anechoic cysts at 15 mm and 35 mm depth (Fig. 10),
//! * **resolution, in-silico** — point-target rows at 15.12 mm and 35.15 mm (Figs. 11-12),
//! * **resolution, in-vitro** — point-target rows at 14.01 mm and 32.79 mm (Figs. 13-14).

use crate::acquisition::ChannelData;
use crate::invitro::InVitroDegradation;
use crate::medium::Medium;
use crate::phantom::{CircleRegion, Phantom, Scatterer};
use crate::planewave::{PlaneWave, PlaneWaveSimulator};
use crate::transducer::LinearArray;
use crate::UltrasoundResult;
use serde::{Deserialize, Serialize};

/// Which acquisition style to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PicmusKind {
    /// Clean simulated acquisition (PICMUS "simulation" column).
    InSilico,
    /// Simulated acquisition passed through the in-vitro degradation model (PICMUS
    /// "experimental phantom" column).
    InVitro,
}

/// Which PICMUS target layout to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PicmusTarget {
    /// Point targets for axial/lateral resolution measurement.
    Resolution,
    /// Anechoic cysts in speckle for contrast measurement.
    Contrast,
}

/// Cyst depths (metres) used by the in-silico contrast dataset (Fig. 9).
pub const IN_SILICO_CYST_DEPTHS: [f32; 3] = [13.0e-3, 25.0e-3, 37.0e-3];
/// Cyst depths (metres) used by the in-vitro contrast dataset (Fig. 10).
pub const IN_VITRO_CYST_DEPTHS: [f32; 2] = [15.0e-3, 35.0e-3];
/// Point-target row depths (metres) for the in-silico resolution dataset (Fig. 12).
pub const IN_SILICO_POINT_DEPTHS: [f32; 2] = [15.12e-3, 35.15e-3];
/// Point-target row depths (metres) for the in-vitro resolution dataset (Fig. 14).
pub const IN_VITRO_POINT_DEPTHS: [f32; 2] = [14.01e-3, 32.79e-3];
/// Radius (metres) of the anechoic cysts.
pub const CYST_RADIUS: f32 = 4.0e-3;

/// A generated evaluation frame: channel data plus everything needed to beamform it and
/// score it (phantom ground truth, probe, medium).
#[derive(Debug, Clone)]
pub struct PicmusFrame {
    /// Raw RF channel data for the single 0° plane-wave transmission.
    pub channel_data: ChannelData,
    /// The scatterer map the data was generated from.
    pub phantom: Phantom,
    /// Probe geometry used for the acquisition.
    pub array: LinearArray,
    /// Propagation medium.
    pub medium: Medium,
    /// Acquisition style.
    pub kind: PicmusKind,
    /// Target layout.
    pub target: PicmusTarget,
    /// Maximum imaging depth in metres.
    pub max_depth: f32,
}

impl PicmusFrame {
    /// Cyst regions of the phantom (empty for resolution frames).
    pub fn cysts(&self) -> &[CircleRegion] {
        self.phantom.cysts()
    }

    /// Point targets of the phantom (empty for contrast frames).
    pub fn point_targets(&self) -> &[Scatterer] {
        self.phantom.point_targets()
    }
}

/// Builder for PICMUS-like evaluation frames.
///
/// The `scale` knob shrinks the probe (channel count) and speckle density together so
/// tests and doctests can run quickly; `scale = 1.0` is the full 128-channel setup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PicmusDataset {
    kind: PicmusKind,
    target: PicmusTarget,
    scale: f32,
    speckle_density: f32,
    max_depth: f32,
    degradation: InVitroDegradation,
}

impl PicmusDataset {
    /// Starts a contrast-speckle dataset of the given kind.
    pub fn contrast(kind: PicmusKind) -> Self {
        Self {
            kind,
            target: PicmusTarget::Contrast,
            scale: 1.0,
            speckle_density: 1200.0,
            max_depth: 45.0e-3,
            degradation: InVitroDegradation::default(),
        }
    }

    /// Starts a resolution-distortion dataset of the given kind.
    pub fn resolution(kind: PicmusKind) -> Self {
        Self {
            kind,
            target: PicmusTarget::Resolution,
            scale: 1.0,
            speckle_density: 0.0,
            max_depth: 45.0e-3,
            degradation: InVitroDegradation::default(),
        }
    }

    /// Scales the probe channel count and speckle density by `scale` in `(0, 1]`.
    pub fn with_scale(mut self, scale: f32) -> Self {
        self.scale = scale.clamp(0.05, 1.0);
        self
    }

    /// Overrides the speckle density (scatterers per cm²) before scaling.
    pub fn with_speckle_density(mut self, per_cm2: f32) -> Self {
        self.speckle_density = per_cm2.max(0.0);
        self
    }

    /// Overrides the maximum imaging depth in metres.
    pub fn with_max_depth(mut self, depth: f32) -> Self {
        self.max_depth = depth.max(5.0e-3);
        self
    }

    /// Overrides the in-vitro degradation model (ignored for in-silico frames).
    pub fn with_degradation(mut self, model: InVitroDegradation) -> Self {
        self.degradation = model;
        self
    }

    /// The probe that [`build`](Self::build) will use after scaling.
    pub fn array(&self) -> LinearArray {
        let full = LinearArray::l11_5v();
        let channels = ((full.num_elements() as f32 * self.scale).round() as usize).clamp(16, full.num_elements());
        full.with_num_elements(channels)
    }

    /// The phantom that [`build`](Self::build) will simulate for a given seed.
    pub fn phantom(&self, seed: u64) -> Phantom {
        let array = self.array();
        let width = array.aperture() * 1.05 + 4.0e-3;
        let density = self.speckle_density * self.scale;
        match self.target {
            PicmusTarget::Contrast => {
                let depths: &[f32] = match self.kind {
                    PicmusKind::InSilico => &IN_SILICO_CYST_DEPTHS,
                    PicmusKind::InVitro => &IN_VITRO_CYST_DEPTHS,
                };
                let mut builder = Phantom::builder(width, self.max_depth)
                    .seed(seed)
                    .speckle_density(density)
                    .speckle_amplitude(1.0);
                for &depth in depths {
                    if depth + CYST_RADIUS < self.max_depth {
                        builder = builder.add_cyst(0.0, depth, CYST_RADIUS);
                    }
                }
                builder.build()
            }
            PicmusTarget::Resolution => {
                let depths: &[f32] = match self.kind {
                    PicmusKind::InSilico => &IN_SILICO_POINT_DEPTHS,
                    PicmusKind::InVitro => &IN_VITRO_POINT_DEPTHS,
                };
                let half_span = (width / 2.0 - 2.0e-3).max(2.0e-3);
                let mut builder = Phantom::builder(width, self.max_depth)
                    .seed(seed)
                    .speckle_density(density * 0.05)
                    .speckle_amplitude(0.02);
                for &depth in depths {
                    if depth >= self.max_depth {
                        continue;
                    }
                    // Horizontally arranged point targets against a quiet background,
                    // matching Figs. 11/13: centre point plus two flanking points.
                    for frac in [-1.0f32, -0.5, 0.0, 0.5, 1.0] {
                        builder = builder.add_point_target(frac * half_span * 0.6, depth, 30.0);
                    }
                }
                builder.build()
            }
        }
    }

    /// Simulates the dataset frame for the given seed.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors.
    pub fn build(&self, seed: u64) -> UltrasoundResult<PicmusFrame> {
        let array = self.array();
        let medium = Medium::soft_tissue();
        let phantom = self.phantom(seed);
        let simulator = PlaneWaveSimulator::new(array.clone(), medium, self.max_depth);
        let mut channel_data = simulator.simulate(&phantom, PlaneWave::zero_angle())?;
        if self.kind == PicmusKind::InVitro {
            let model = InVitroDegradation { seed: seed ^ 0x5EED, ..self.degradation };
            model.apply(&mut channel_data);
        }
        Ok(PicmusFrame {
            channel_data,
            phantom,
            array,
            medium,
            kind: self.kind,
            target: self.target,
            max_depth: self.max_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contrast_phantom_has_expected_cysts() {
        let ds = PicmusDataset::contrast(PicmusKind::InSilico).with_scale(0.25);
        let phantom = ds.phantom(1);
        assert_eq!(phantom.cysts().len(), 3);
        let depths: Vec<f32> = phantom.cysts().iter().map(|c| c.cz).collect();
        assert!(depths.contains(&13.0e-3) && depths.contains(&25.0e-3) && depths.contains(&37.0e-3));
        assert!(phantom.len() > 100, "speckle missing: {}", phantom.len());
    }

    #[test]
    fn invitro_contrast_uses_two_cysts() {
        let ds = PicmusDataset::contrast(PicmusKind::InVitro).with_scale(0.25);
        assert_eq!(ds.phantom(1).cysts().len(), 2);
    }

    #[test]
    fn resolution_phantom_places_points_at_paper_depths() {
        let ds = PicmusDataset::resolution(PicmusKind::InSilico).with_scale(0.25);
        let phantom = ds.phantom(3);
        assert_eq!(phantom.point_targets().len(), 10);
        let has_depth = |z: f32| phantom.point_targets().iter().any(|p| (p.z - z).abs() < 1e-6);
        assert!(has_depth(15.12e-3));
        assert!(has_depth(35.15e-3));
    }

    #[test]
    fn scale_controls_channel_count() {
        let small = PicmusDataset::contrast(PicmusKind::InSilico).with_scale(0.2);
        let full = PicmusDataset::contrast(PicmusKind::InSilico);
        assert_eq!(full.array().num_elements(), 128);
        assert!(small.array().num_elements() < 40);
        assert!(small.array().num_elements() >= 16);
    }

    #[test]
    fn build_produces_consistent_frame() {
        let ds = PicmusDataset::resolution(PicmusKind::InSilico).with_scale(0.15).with_max_depth(0.030);
        let frame = ds.build(11).unwrap();
        assert_eq!(frame.channel_data.num_channels(), frame.array.num_elements());
        assert!(frame.channel_data.peak() > 0.0);
        assert_eq!(frame.kind, PicmusKind::InSilico);
        assert_eq!(frame.target, PicmusTarget::Resolution);
        assert!(!frame.point_targets().is_empty());
        assert!(frame.cysts().is_empty());
    }

    #[test]
    fn invitro_frame_differs_from_insilico_with_same_seed() {
        let silico = PicmusDataset::resolution(PicmusKind::InSilico)
            .with_scale(0.15)
            .with_max_depth(0.025)
            .build(5)
            .unwrap();
        let vitro = PicmusDataset::resolution(PicmusKind::InVitro)
            .with_scale(0.15)
            .with_max_depth(0.025)
            .build(5)
            .unwrap();
        // In-vitro point depths differ and degradation is applied, so the data differs.
        assert_ne!(silico.channel_data, vitro.channel_data);
    }

    #[test]
    fn builder_knobs_are_respected() {
        let ds = PicmusDataset::contrast(PicmusKind::InSilico)
            .with_scale(0.2)
            .with_speckle_density(100.0)
            .with_max_depth(0.02);
        // Only the 13 mm cyst fits above 20 mm depth.
        assert_eq!(ds.phantom(0).cysts().len(), 1);
    }
}
