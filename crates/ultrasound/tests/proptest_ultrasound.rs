//! Property-based tests for the acquisition simulator substrate.

use proptest::prelude::*;
use ultrasound::phantom::{CircleRegion, Phantom};
use ultrasound::{AcquisitionConfig, ChannelData, LinearArray, Medium, PlaneWave};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn element_positions_are_strictly_increasing_and_centred(n in 2usize..256) {
        let array = LinearArray::l11_5v().with_num_elements(n);
        let xs = array.element_positions();
        prop_assert_eq!(xs.len(), n);
        for w in xs.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        let mean = xs.iter().sum::<f32>() / n as f32;
        prop_assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn transmit_delay_is_monotone_in_depth(angle_deg in -20.0f32..20.0, x in -0.02f32..0.02, z1 in 0.005f32..0.04, dz in 0.001f32..0.01) {
        let pw = PlaneWave::from_degrees(angle_deg);
        let c = 1540.0;
        prop_assert!(pw.transmit_delay(x, z1 + dz, c) > pw.transmit_delay(x, z1, c));
    }

    #[test]
    fn cysts_never_contain_speckle(seed in 0u64..1000, cx in -0.005f32..0.005, cz in 0.01f32..0.03, r in 0.001f32..0.005) {
        let cyst = CircleRegion::new(cx, cz, r);
        let phantom = Phantom::builder(0.02, 0.04)
            .seed(seed)
            .speckle_density(200.0)
            .add_cyst(cx, cz, r)
            .build();
        for s in phantom.scatterers() {
            prop_assert!(!cyst.contains(s.x, s.z));
        }
    }

    #[test]
    fn phantom_generation_is_deterministic(seed in 0u64..500) {
        let a = Phantom::builder(0.015, 0.03).seed(seed).speckle_density(100.0).build();
        let b = Phantom::builder(0.015, 0.03).seed(seed).speckle_density(100.0).build();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn acquisition_config_time_mapping_is_inverse(fs in 1.0e6f32..60.0e6, k in 0usize..4000, start in 0.0f32..1e-5) {
        let cfg = AcquisitionConfig { sampling_frequency: fs, num_samples: 4096, start_time: start };
        let t = cfg.sample_time(k);
        prop_assert!((cfg.time_to_sample(t) - k as f32).abs() < 1e-2);
    }

    #[test]
    fn channel_data_round_trips_through_traces(
        n_samples in 1usize..40,
        n_channels in 1usize..12,
        seed in 0u64..100,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<f32> = (0..n_samples * n_channels).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let data = ChannelData::from_vec(samples, n_samples, n_channels, 1.0e6).unwrap();
        let rebuilt = ChannelData::from_channel_traces(&data.to_channel_traces(), 1.0e6).unwrap();
        prop_assert_eq!(data, rebuilt);
    }

    #[test]
    fn normalize_peak_bounds_samples(values in prop::collection::vec(-100.0f32..100.0, 4..64)) {
        let len = values.len() - values.len() % 2;
        if len < 2 { return Ok(()); }
        let mut data = ChannelData::from_vec(values[..len].to_vec(), len / 2, 2, 1.0).unwrap();
        data.normalize_peak();
        for &v in data.as_slice() {
            prop_assert!(v.abs() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn attenuation_factor_is_in_unit_interval(f in 0.5e6f32..15.0e6, d in 0.0f32..0.1) {
        let m = Medium::soft_tissue();
        let a = m.attenuation_factor(f, d);
        prop_assert!(a > 0.0 && a <= 1.0);
    }
}
