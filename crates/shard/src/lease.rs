//! The pure heartbeat-lease state machine behind the shard registry.
//!
//! Like `serve::degrade::LadderState`, this module is deliberately free of
//! wall clocks, sockets and threads: every operation takes the caller's
//! notion of "now" in milliseconds, so the whole lifecycle — register,
//! renew, miss a lease, get evicted, re-register — is a deterministic
//! function of the operation sequence and property-testable
//! (`tests/proptest_shard.rs` drives random traces against the invariants
//! below).
//!
//! # Invariants
//!
//! 1. **Leases expire.** A shard that has not renewed within
//!    [`LeaseTable::ttl_ms`] of its last register/renew is evicted by the
//!    next operation; no lease survives past its TTL without a renewal.
//! 2. **Epochs never decrease.** Every membership change — a registration
//!    (first or repeated) or an eviction — bumps the epoch; renewals do
//!    not. Clients compare epochs to detect stale routing tables.
//! 3. **Re-registration is a fresh epoch.** An evicted shard that comes
//!    back always observes an epoch strictly greater than the one it held,
//!    so its old clients cannot confuse the two incarnations.
//! 4. **Assignments are deterministic.** Stream keys are assigned to live
//!    shards by sorted order (`key index mod eligible shard count`), so
//!    every replica of the table computes the identical routing table and
//!    a membership change moves the minimum necessary keys.

use std::collections::BTreeMap;
use std::fmt;

/// Where one stream key is currently served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Identifier of the shard serving the key.
    pub shard: String,
    /// The shard's data-plane address (`host:port`).
    pub addr: String,
}

/// One live lease.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShardLease {
    addr: String,
    keys: Vec<String>,
    expires_at_ms: u64,
}

/// Lease-table operation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseError {
    /// The shard holds no live lease (never registered, or evicted after a
    /// missed renewal) — it must re-register.
    UnknownShard(String),
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownShard(shard) => {
                write!(f, "shard `{shard}` holds no live lease (re-register required)")
            }
        }
    }
}

impl std::error::Error for LeaseError {}

/// The registry's heartbeat-lease and key-assignment state.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    ttl_ms: u64,
    epoch: u64,
    shards: BTreeMap<String, ShardLease>,
    assignments: BTreeMap<String, Assignment>,
    evictions: u64,
}

impl LeaseTable {
    /// Creates an empty table whose leases live `ttl_ms` past their last
    /// register/renew. A zero TTL would evict every shard on the very next
    /// operation, so it is rejected.
    pub fn new(ttl_ms: u64) -> Result<Self, String> {
        if ttl_ms == 0 {
            return Err("lease TTL must be non-zero".into());
        }
        Ok(Self {
            ttl_ms,
            epoch: 0,
            shards: BTreeMap::new(),
            assignments: BTreeMap::new(),
            evictions: 0,
        })
    }

    /// The lease time-to-live in milliseconds.
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms
    }

    /// The current epoch. Starts at 0 (empty world) and bumps on every
    /// membership change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total evictions since the table was created.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Identifiers of the shards holding live leases, sorted.
    pub fn live_shards(&self) -> Vec<String> {
        self.shards.keys().cloned().collect()
    }

    /// Registers (or re-registers) a shard serving `keys` at `addr`,
    /// granting a fresh lease until `now_ms + ttl`. Always bumps the epoch
    /// — a re-registration after an eviction must land in a world the
    /// shard's previous clients can distinguish. Returns the new epoch.
    pub fn register(&mut self, shard: &str, addr: &str, keys: &[String], now_ms: u64) -> u64 {
        self.sweep(now_ms);
        let mut keys = keys.to_vec();
        keys.sort();
        keys.dedup();
        self.shards.insert(
            shard.to_string(),
            ShardLease { addr: addr.to_string(), keys, expires_at_ms: now_ms.saturating_add(self.ttl_ms) },
        );
        self.bump();
        self.epoch
    }

    /// Renews a live lease until `now_ms + ttl` without changing the epoch.
    ///
    /// # Errors
    ///
    /// [`LeaseError::UnknownShard`] when the shard holds no live lease —
    /// including the case where this very call's sweep just evicted it.
    pub fn renew(&mut self, shard: &str, now_ms: u64) -> Result<u64, LeaseError> {
        self.sweep(now_ms);
        match self.shards.get_mut(shard) {
            Some(lease) => {
                lease.expires_at_ms = now_ms.saturating_add(self.ttl_ms);
                Ok(self.epoch)
            }
            None => Err(LeaseError::UnknownShard(shard.to_string())),
        }
    }

    /// Evicts every shard whose lease has expired at `now_ms`, returning
    /// the evicted identifiers. Bumps the epoch once if anything was
    /// evicted. Called internally by every other operation, so the table
    /// never *serves* state derived from an expired lease.
    pub fn sweep(&mut self, now_ms: u64) -> Vec<String> {
        let expired: Vec<String> = self
            .shards
            .iter()
            .filter(|(_, lease)| lease.expires_at_ms <= now_ms)
            .map(|(id, _)| id.clone())
            .collect();
        if !expired.is_empty() {
            for id in &expired {
                self.shards.remove(id);
            }
            self.evictions += expired.len() as u64;
            self.bump();
        }
        expired
    }

    /// The epoch-versioned routing table: every key some live shard
    /// declared, mapped to its assigned shard. Sweep first (with the
    /// caller's `now_ms`) to avoid serving assignments of expired leases.
    pub fn routing(&mut self, now_ms: u64) -> (u64, &BTreeMap<String, Assignment>) {
        self.sweep(now_ms);
        (self.epoch, &self.assignments)
    }

    /// The keys currently assigned to `shard` (empty when it holds no
    /// lease).
    pub fn assigned_keys(&mut self, shard: &str, now_ms: u64) -> Vec<String> {
        self.sweep(now_ms);
        self.assignments
            .iter()
            .filter(|(_, a)| a.shard == shard)
            .map(|(key, _)| key.clone())
            .collect()
    }

    /// Bumps the epoch and recomputes the assignment map from the live
    /// shard set. Assignment is deterministic: the union of declared keys,
    /// sorted, each assigned to `eligible[key_index % eligible.len()]`
    /// where `eligible` is the sorted list of live shards declaring that
    /// key.
    fn bump(&mut self) {
        self.epoch += 1;
        self.assignments.clear();
        let mut keys: Vec<&String> = self.shards.values().flat_map(|l| l.keys.iter()).collect();
        keys.sort();
        keys.dedup();
        let keys: Vec<String> = keys.into_iter().cloned().collect();
        for (index, key) in keys.iter().enumerate() {
            // BTreeMap iteration is sorted, so `eligible` is sorted by id.
            let eligible: Vec<(&String, &ShardLease)> =
                self.shards.iter().filter(|(_, l)| l.keys.contains(key)).collect();
            if eligible.is_empty() {
                continue;
            }
            let (shard, lease) = eligible[index % eligible.len()];
            self.assignments
                .insert(key.clone(), Assignment { shard: shard.clone(), addr: lease.addr.clone() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(labels: &[&str]) -> Vec<String> {
        labels.iter().map(|l| l.to_string()).collect()
    }

    #[test]
    fn register_renew_and_expire_lifecycle() {
        let mut table = LeaseTable::new(100).unwrap();
        assert_eq!(table.epoch(), 0);
        let e1 = table.register("shard-0", "127.0.0.1:1000", &keys(&["0", "1"]), 0);
        assert_eq!(e1, 1);
        assert_eq!(table.live_shards(), vec!["shard-0"]);

        // Renewal extends the lease without an epoch bump.
        assert_eq!(table.renew("shard-0", 80), Ok(1));
        let (epoch, routing) = table.routing(150);
        assert_eq!(epoch, 1);
        assert_eq!(routing.len(), 2);

        // A missed renewal evicts at TTL and bumps the epoch.
        let (epoch, routing) = table.routing(181);
        assert_eq!(epoch, 2);
        assert!(routing.is_empty());
        assert_eq!(table.evictions(), 1);
        assert_eq!(
            table.renew("shard-0", 181),
            Err(LeaseError::UnknownShard("shard-0".into()))
        );

        // Re-registration lands in a fresh epoch.
        let e2 = table.register("shard-0", "127.0.0.1:1000", &keys(&["0", "1"]), 200);
        assert!(e2 > 2);
    }

    #[test]
    fn assignment_spreads_keys_and_fails_over() {
        let mut table = LeaseTable::new(100).unwrap();
        let all = keys(&["0", "1"]);
        table.register("shard-0", "127.0.0.1:1000", &all, 0);
        table.register("shard-1", "127.0.0.1:1001", &all, 0);
        let (_, routing) = table.routing(50);
        // Sorted keys over sorted shards: "0" → shard-0, "1" → shard-1.
        assert_eq!(routing["0"].shard, "shard-0");
        assert_eq!(routing["1"].shard, "shard-1");

        // shard-1 misses its lease: both keys land on the survivor, the
        // epoch bumps, and the survivor's address is served.
        table.renew("shard-0", 90).unwrap();
        let epoch_before = table.epoch();
        let (epoch, routing) = table.routing(101);
        assert!(epoch > epoch_before);
        assert_eq!(routing["0"].shard, "shard-0");
        assert_eq!(routing["1"].shard, "shard-0");
        assert_eq!(routing["1"].addr, "127.0.0.1:1000");
    }

    #[test]
    fn keys_only_go_to_shards_that_declared_them() {
        let mut table = LeaseTable::new(100).unwrap();
        table.register("a", "h:1", &keys(&["x"]), 0);
        table.register("b", "h:2", &keys(&["y"]), 0);
        let (_, routing) = table.routing(1);
        assert_eq!(routing["x"].shard, "a");
        assert_eq!(routing["y"].shard, "b");
    }

    #[test]
    fn zero_ttl_is_rejected() {
        assert!(LeaseTable::new(0).is_err());
    }
}
