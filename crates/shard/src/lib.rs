//! Fault-tolerant multi-process sharding for the Tiny-VBF serving stack.
//!
//! Everything before this crate lives in one process: the `serve` router
//! multiplexes every stream behind a single queue, and a hung or killed
//! peer stalls its counterpart forever. This crate is the substrate that
//! lets several router processes serve one traffic mix and *survive losing
//! one of them*:
//!
//! * [`lease`] — the pure heartbeat-lease state machine ([`lease::LeaseTable`]):
//!   shard servers hold time-to-live leases they must renew; a missed lease
//!   evicts the shard and reassigns its stream keys to the survivors, under
//!   a **monotonically increasing epoch** so stale clients can detect that
//!   the world changed. Wall-clock-free (driven by caller-supplied
//!   timestamps) and property-tested like `serve::degrade::LadderState`.
//! * [`registry`] — the TCP registry service around the lease table (the
//!   `shard_registry` binary): shards `register`/`renew`, clients fetch the
//!   epoch-versioned `routing` table, a sweeper evicts missed leases.
//! * [`wire`] — bounded line-frame I/O with deadlines: every read is
//!   size-capped and time-capped, so truncated JSON, oversized frames and
//!   silent peers all surface as typed [`ShardError`]s instead of hangs.
//! * [`client`] — [`client::ShardClient`]: registry discovery with a cached
//!   routing table, per-request deadlines propagated onto socket timeouts,
//!   **retry with exponential backoff + jitter** (via [`runtime::backoff`])
//!   on connect failures, timeouts and epoch mismatches, failover to the
//!   reassigned shard, and a bounded outstanding-request window per shard
//!   for cross-process backpressure.
//!
//! The crate deliberately knows nothing about beamforming: stream keys are
//! opaque strings and request payloads opaque JSON fields. `crates/bench`
//! supplies the beamforming shard server (`shard_agent`) and points the
//! scenario harness at this substrate, including a shard-kill failover
//! scenario that SIGKILLs one shard mid-window and gates recovery in CI.

#![deny(missing_docs)]

pub mod client;
pub mod lease;
pub mod registry;
pub mod wire;

pub use client::{CallOutcome, ClientStats, ShardClient, ShardClientConfig};
pub use lease::{Assignment, LeaseError, LeaseTable};
pub use registry::{Registry, RegistryHandle};

use std::error::Error;
use std::fmt;

/// Errors produced by the sharding substrate. Every cross-process failure
/// mode maps onto exactly one variant — the malice tests in
/// `tests/wire_malice.rs` assert that garbage, truncation, oversized frames
/// and silent peers each produce their typed error within the deadline,
/// never a panic or a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The operation's deadline (or retry budget) was exhausted.
    Timeout(String),
    /// The peer closed or reset the connection mid-operation.
    ConnectionLost(String),
    /// A peer sent a line longer than the protocol's frame cap.
    FrameTooLarge {
        /// The enforced cap, in bytes.
        limit: usize,
    },
    /// A peer sent bytes that do not parse as a protocol frame (garbage,
    /// truncated JSON, missing fields).
    Protocol(String),
    /// The per-shard outstanding-request window is full — cross-process
    /// backpressure, the sharded analogue of `serve`'s `QueueFull` shed.
    Shed {
        /// Shard whose window is full.
        shard: String,
    },
    /// The registry rejected or could not serve the operation.
    Registry(String),
    /// No live shard is assigned to the requested stream key.
    NotAssigned(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout(what) => write!(f, "timed out: {what}"),
            Self::ConnectionLost(what) => write!(f, "connection lost: {what}"),
            Self::FrameTooLarge { limit } => {
                write!(f, "frame exceeds the {limit}-byte protocol cap")
            }
            Self::Protocol(what) => write!(f, "protocol violation: {what}"),
            Self::Shed { shard } => {
                write!(f, "shard `{shard}`'s outstanding-request window is full")
            }
            Self::Registry(what) => write!(f, "registry error: {what}"),
            Self::NotAssigned(key) => write!(f, "no live shard is assigned key `{key}`"),
        }
    }
}

impl Error for ShardError {}

/// Convenience alias for results with [`ShardError`].
pub type ShardResult<T> = Result<T, ShardError>;
