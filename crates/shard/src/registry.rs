//! The TCP registry service around [`LeaseTable`].
//!
//! The registry is the sharded topology's single source of truth: shard
//! servers `register` their stream keys and then `renew` their lease on a
//! heartbeat cadence; clients fetch the epoch-versioned `routing` table. A
//! background sweeper evicts shards whose lease expired, so a SIGKILLed
//! shard drops out of the routing table within one TTL even if no other
//! operation arrives.
//!
//! One compact JSON frame per line, request/response, several requests per
//! connection (shards hold a connection open for their heartbeat):
//!
//! ```text
//! → {"op":"register","shard":"s0","addr":"127.0.0.1:4001","keys":["k0","k1"]}
//! ← {"ok":true,"epoch":3,"ttl_ms":250,"assigned":["k0"]}
//! → {"op":"renew","shard":"s0"}
//! ← {"ok":true,"epoch":3,"assigned":["k0"]}          (or {"ok":false,"error":"unknown_shard"})
//! → {"op":"routing"}
//! ← {"ok":true,"epoch":3,"ttl_ms":250,"assignments":{"k0":{"shard":"s0","addr":"127.0.0.1:4001"},...}}
//! ```
//!
//! Malformed frames get a typed `{"ok":false,"error":...}` response and the
//! connection is closed; a silent connection is dropped after an idle
//! timeout. The registry never panics on peer input (`tests/wire_malice.rs`).

use crate::lease::LeaseTable;
use crate::wire::{self, FrameReader};
use crate::{ShardError, ShardResult};
use runtime::json::Json;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a registry connection may sit silent before it is dropped.
const IDLE_TIMEOUT: Duration = Duration::from_secs(10);

/// Budget for writing one response frame back to a peer.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Operation counters, surfaced in the registry's stats line.
#[derive(Debug, Default)]
struct OpCounters {
    register: AtomicU64,
    renew: AtomicU64,
    routing: AtomicU64,
    rejected: AtomicU64,
}

/// A bound-but-not-yet-serving registry. Bind first so the caller learns
/// the port before any shard races to register.
pub struct Registry {
    listener: TcpListener,
    table: Arc<Mutex<LeaseTable>>,
    started: Instant,
    counters: Arc<OpCounters>,
}

impl Registry {
    /// Binds on `addr` (use port 0 for an ephemeral port) with the given
    /// lease TTL.
    pub fn bind(addr: &str, lease_ttl_ms: u64) -> Result<Self, String> {
        let table = LeaseTable::new(lease_ttl_ms)?;
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        Ok(Self {
            listener,
            table: Arc::new(Mutex::new(table)),
            started: Instant::now(),
            counters: Arc::new(OpCounters::default()),
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.listener.local_addr().map(|a| a.port()).unwrap_or(0)
    }

    /// Starts the accept loop and the lease sweeper; returns the handle
    /// used to stop the registry and collect its stats.
    pub fn spawn(self) -> RegistryHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let port = self.port();
        let ttl_ms = self.table.lock().unwrap().ttl_ms();

        let sweeper = {
            let table = Arc::clone(&self.table);
            let stop = Arc::clone(&stop);
            let started = self.started;
            // Sweep well inside the TTL so an eviction lands at TTL + one
            // sweep interval at the latest.
            let interval = Duration::from_millis((ttl_ms / 4).max(5));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    let now_ms = started.elapsed().as_millis() as u64;
                    table.lock().unwrap().sweep(now_ms);
                }
            })
        };

        let acceptor = {
            let stop = Arc::clone(&stop);
            let table = Arc::clone(&self.table);
            let counters = Arc::clone(&self.counters);
            let started = self.started;
            let listener = self.listener;
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let table = Arc::clone(&table);
                    let counters = Arc::clone(&counters);
                    std::thread::spawn(move || {
                        serve_connection(stream, table, counters, started);
                    });
                }
            })
        };

        RegistryHandle {
            port,
            stop,
            table: self.table,
            counters: self.counters,
            threads: vec![sweeper, acceptor],
        }
    }
}

/// Handle to a running registry.
pub struct RegistryHandle {
    port: u16,
    stop: Arc<AtomicBool>,
    table: Arc<Mutex<LeaseTable>>,
    counters: Arc<OpCounters>,
    threads: Vec<JoinHandle<()>>,
}

impl RegistryHandle {
    /// The registry's bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Registry stats as a JSON object: current epoch, live shards, total
    /// evictions and per-op counters.
    pub fn stats(&self) -> Json {
        let (epoch, live, evictions) = {
            let table = self.table.lock().unwrap();
            (table.epoch(), table.live_shards(), table.evictions())
        };
        Json::obj([
            ("epoch", Json::num(epoch as f64)),
            ("live_shards", Json::arr(live.into_iter().map(Json::str))),
            ("evictions", Json::num(evictions as f64)),
            ("register_ops", Json::num(self.counters.register.load(Ordering::Relaxed) as f64)),
            ("renew_ops", Json::num(self.counters.renew.load(Ordering::Relaxed) as f64)),
            ("routing_ops", Json::num(self.counters.routing.load(Ordering::Relaxed) as f64)),
            ("rejected_frames", Json::num(self.counters.rejected.load(Ordering::Relaxed) as f64)),
        ])
    }

    /// Stops the accept loop and sweeper and joins them. Connection
    /// handler threads exit on their own via the idle timeout.
    pub fn shutdown(mut self) -> Json {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }
}

/// Serves one registry connection until EOF, idle timeout, or a rejected
/// frame.
fn serve_connection(
    stream: TcpStream,
    table: Arc<Mutex<LeaseTable>>,
    counters: Arc<OpCounters>,
    started: Instant,
) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut writer = stream;
    let mut reader = FrameReader::new(read_half);
    loop {
        let frame = match reader.read_frame(Instant::now() + IDLE_TIMEOUT) {
            Ok(frame) => frame,
            Err(ShardError::Timeout(_)) | Err(ShardError::ConnectionLost(_)) => return,
            Err(err) => {
                // Garbage, truncated JSON or an oversized frame: answer
                // typed, then drop the connection — the byte stream can no
                // longer be trusted to be frame-aligned.
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = wire::write_frame(
                    &mut writer,
                    &error_frame(&err.to_string()),
                    Instant::now() + WRITE_TIMEOUT,
                );
                return;
            }
        };
        let now_ms = started.elapsed().as_millis() as u64;
        let response = match handle_frame(&frame, &table, &counters, now_ms) {
            Ok(response) => response,
            Err(err) => {
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                error_frame(&err.to_string())
            }
        };
        if wire::write_frame(&mut writer, &response, Instant::now() + WRITE_TIMEOUT).is_err() {
            return;
        }
    }
}

/// Dispatches one well-formed frame against the lease table.
fn handle_frame(
    frame: &Json,
    table: &Mutex<LeaseTable>,
    counters: &OpCounters,
    now_ms: u64,
) -> ShardResult<Json> {
    match wire::field_str(frame, "op")? {
        "register" => {
            let shard = wire::field_str(frame, "shard")?;
            let addr = wire::field_str(frame, "addr")?;
            let keys: Vec<String> = frame
                .get("keys")
                .and_then(Json::as_arr)
                .ok_or_else(|| ShardError::Protocol("register frame needs a `keys` array".into()))?
                .iter()
                .map(|k| {
                    k.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ShardError::Protocol("stream keys must be strings".into()))
                })
                .collect::<ShardResult<_>>()?;
            if shard.is_empty() || addr.is_empty() || keys.is_empty() {
                return Err(ShardError::Protocol(
                    "register frame needs non-empty shard, addr and keys".into(),
                ));
            }
            counters.register.fetch_add(1, Ordering::Relaxed);
            let mut table = table.lock().unwrap();
            let ttl_ms = table.ttl_ms();
            let epoch = table.register(shard, addr, &keys, now_ms);
            let assigned = table.assigned_keys(shard, now_ms);
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("epoch", Json::num(epoch as f64)),
                ("ttl_ms", Json::num(ttl_ms as f64)),
                ("assigned", Json::arr(assigned.into_iter().map(Json::str))),
            ]))
        }
        "renew" => {
            let shard = wire::field_str(frame, "shard")?;
            counters.renew.fetch_add(1, Ordering::Relaxed);
            let mut table = table.lock().unwrap();
            match table.renew(shard, now_ms) {
                Ok(epoch) => {
                    let assigned = table.assigned_keys(shard, now_ms);
                    Ok(Json::obj([
                        ("ok", Json::Bool(true)),
                        ("epoch", Json::num(epoch as f64)),
                        ("assigned", Json::arr(assigned.into_iter().map(Json::str))),
                    ]))
                }
                Err(_) => Ok(Json::obj([
                    ("ok", Json::Bool(false)),
                    ("error", Json::str("unknown_shard")),
                ])),
            }
        }
        "routing" => {
            counters.routing.fetch_add(1, Ordering::Relaxed);
            let mut table = table.lock().unwrap();
            let ttl_ms = table.ttl_ms();
            let (epoch, assignments) = table.routing(now_ms);
            let entries: Vec<(String, Json)> = assignments
                .iter()
                .map(|(key, a)| {
                    (
                        key.clone(),
                        Json::obj([
                            ("shard", Json::str(a.shard.clone())),
                            ("addr", Json::str(a.addr.clone())),
                        ]),
                    )
                })
                .collect();
            Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("epoch", Json::num(epoch as f64)),
                ("ttl_ms", Json::num(ttl_ms as f64)),
                ("assignments", Json::obj(entries)),
            ]))
        }
        other => Err(ShardError::Protocol(format!("unknown op `{other}`"))),
    }
}

fn error_frame(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(message))])
}
