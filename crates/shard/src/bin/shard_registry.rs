//! Standalone shard-registry process for the scenario harness.
//!
//! Protocol with the parent (mirrors the other agents):
//!
//! * stdin, first line: `{"lease_ttl_ms":250}` (object; `lease_ttl_ms`
//!   required),
//! * stdout: `{"event":"ready","port":N}` once listening,
//! * stdin `shutdown` (or EOF): stdout
//!   `{"event":"stats","registry":{…}}` with the lease-table and op
//!   counters, then exit.
//!
//! Shards and clients then speak the registry wire protocol documented in
//! `shard::registry` on the advertised TCP port.

use runtime::json::Json;
use shard::Registry;
use std::io::{BufRead, Write};

fn emit(line: &Json) {
    let mut stdout = std::io::stdout().lock();
    let _ = writeln!(stdout, "{}", line.to_string_compact());
    let _ = stdout.flush();
}

fn protocol_error(detail: &str) -> ! {
    emit(&Json::obj([("event", Json::str("error")), ("detail", Json::str(detail))]));
    std::process::exit(2);
}

fn main() {
    let stdin = std::io::stdin();
    let mut first_line = String::new();
    if stdin.lock().read_line(&mut first_line).is_err() || first_line.trim().is_empty() {
        protocol_error("expected a config line on stdin");
    }
    let config = match Json::parse(first_line.trim()) {
        Ok(config) => config,
        Err(e) => protocol_error(&format!("bad config line: {e}")),
    };
    let Some(lease_ttl_ms) = config.get("lease_ttl_ms").and_then(Json::as_u64) else {
        protocol_error("config needs a `lease_ttl_ms` integer");
    };

    let registry = match Registry::bind("127.0.0.1:0", lease_ttl_ms) {
        Ok(registry) => registry,
        Err(e) => protocol_error(&format!("registry bind failed: {e}")),
    };
    let port = registry.port();
    let handle = registry.spawn();
    emit(&Json::obj([("event", Json::str("ready")), ("port", Json::num(port as f64))]));

    // Block until the parent says shutdown (or closes our stdin).
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if line.trim() == "shutdown" => break,
            Ok(_) => {}
        }
    }

    let stats = handle.shutdown();
    emit(&Json::obj([("event", Json::str("stats")), ("registry", stats)]));
}
