//! Bounded, deadline-aware line-frame I/O.
//!
//! The sharding protocol reuses the workspace's wire idiom — one compact
//! JSON object per `\n`-terminated line — but hardens it for crossing
//! process boundaries where the peer may be slow, dead, or hostile:
//!
//! * **Size-bounded.** A frame longer than [`MAX_FRAME_BYTES`] is rejected
//!   as [`ShardError::FrameTooLarge`] without buffering the whole thing, so
//!   a peer cannot balloon our memory by never sending a newline.
//! * **Time-bounded.** Every read and write happens under a caller-supplied
//!   deadline propagated onto the socket's read/write timeouts; a silent
//!   peer surfaces as [`ShardError::Timeout`], never a hang.
//! * **Typed failures.** Garbage and truncated JSON parse into
//!   [`ShardError::Protocol`]; resets and EOF into
//!   [`ShardError::ConnectionLost`]. The table-driven malice tests in
//!   `tests/wire_malice.rs` pin each byte-level misbehaviour to its
//!   variant.

use crate::{ShardError, ShardResult};
use runtime::json::Json;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum accepted frame length (the newline excluded). Generous for this
/// protocol — routing tables and request envelopes are a few KiB — while
/// still bounding what a misbehaving peer can make us buffer.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Clamps a remaining-time budget into something `set_read_timeout` /
/// `set_write_timeout` accept: `Some(Duration::ZERO)` is an error in std,
/// so an expired-but-not-checked budget becomes the 1ms minimum.
fn socket_timeout(remaining: Duration) -> Duration {
    remaining.max(Duration::from_millis(1))
}

/// Time left until `deadline`, or a [`ShardError::Timeout`] once it passed.
pub fn remaining(deadline: Instant, what: &str) -> ShardResult<Duration> {
    let now = Instant::now();
    if now >= deadline {
        return Err(ShardError::Timeout(what.to_string()));
    }
    Ok(deadline - now)
}

/// Writes one frame (`compact JSON + '\n'`) under `deadline`.
pub fn write_frame(stream: &mut TcpStream, frame: &Json, deadline: Instant) -> ShardResult<()> {
    let budget = remaining(deadline, "writing frame")?;
    stream
        .set_write_timeout(Some(socket_timeout(budget)))
        .map_err(|e| ShardError::ConnectionLost(format!("set_write_timeout: {e}")))?;
    let mut line = frame.to_string_compact();
    line.push('\n');
    match stream.write_all(line.as_bytes()).and_then(|()| stream.flush()) {
        Ok(()) => Ok(()),
        Err(e) if is_timeout(&e) => Err(ShardError::Timeout("writing frame".into())),
        Err(e) => Err(ShardError::ConnectionLost(format!("write: {e}"))),
    }
}

/// A frame reader over a [`TcpStream`] that enforces the size cap and a
/// per-read deadline. Partial bytes received before a timeout stay
/// buffered, so a caller with a fresh deadline may resume the same frame.
pub struct FrameReader {
    reader: BufReader<TcpStream>,
    partial: Vec<u8>,
}

impl FrameReader {
    /// Wraps `stream`. The reader owns a clone-free buffered handle; use
    /// [`TcpStream::try_clone`] first if the caller also writes.
    pub fn new(stream: TcpStream) -> Self {
        Self { reader: BufReader::new(stream), partial: Vec::new() }
    }

    /// Reads one `\n`-terminated frame and parses it as JSON, failing
    /// typed: [`ShardError::Timeout`] at `deadline`,
    /// [`ShardError::FrameTooLarge`] past [`MAX_FRAME_BYTES`],
    /// [`ShardError::Protocol`] on unparseable bytes and
    /// [`ShardError::ConnectionLost`] on EOF/reset.
    pub fn read_frame(&mut self, deadline: Instant) -> ShardResult<Json> {
        loop {
            let budget = remaining(deadline, "reading frame")?;
            self.reader
                .get_ref()
                .set_read_timeout(Some(socket_timeout(budget)))
                .map_err(|e| ShardError::ConnectionLost(format!("set_read_timeout: {e}")))?;
            let consumed = match self.reader.fill_buf() {
                Ok([]) => return Err(ShardError::ConnectionLost("peer closed the stream".into())),
                Ok(bytes) => match bytes.iter().position(|&b| b == b'\n') {
                    Some(newline) => {
                        self.partial.extend_from_slice(&bytes[..newline]);
                        let consumed = newline + 1;
                        self.reader.consume(consumed);
                        if self.partial.len() > MAX_FRAME_BYTES {
                            self.partial.clear();
                            return Err(ShardError::FrameTooLarge { limit: MAX_FRAME_BYTES });
                        }
                        let line = std::mem::take(&mut self.partial);
                        return parse_frame(&line);
                    }
                    None => {
                        self.partial.extend_from_slice(bytes);
                        let consumed = bytes.len();
                        if self.partial.len() > MAX_FRAME_BYTES {
                            self.reader.consume(consumed);
                            self.partial.clear();
                            return Err(ShardError::FrameTooLarge { limit: MAX_FRAME_BYTES });
                        }
                        consumed
                    }
                },
                Err(e) if is_timeout(&e) => continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(ShardError::ConnectionLost(format!("read: {e}"))),
            };
            self.reader.consume(consumed);
        }
    }
}

/// Parses a received line into JSON, typed as [`ShardError::Protocol`] on
/// any byte-level or syntax-level violation.
fn parse_frame(line: &[u8]) -> ShardResult<Json> {
    let text = std::str::from_utf8(line)
        .map_err(|_| ShardError::Protocol("frame is not valid UTF-8".into()))?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(ShardError::Protocol("empty frame".into()));
    }
    let frame =
        Json::parse(trimmed).map_err(|e| ShardError::Protocol(format!("bad JSON frame: {e}")))?;
    if frame.as_obj().is_none() {
        return Err(ShardError::Protocol("frame is not a JSON object".into()));
    }
    Ok(frame)
}

/// A required string field of a frame, typed as [`ShardError::Protocol`]
/// when missing or of the wrong type.
pub fn field_str<'a>(frame: &'a Json, key: &str) -> ShardResult<&'a str> {
    frame
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ShardError::Protocol(format!("frame is missing string field `{key}`")))
}

/// A required unsigned-integer field of a frame, typed as
/// [`ShardError::Protocol`] when missing or of the wrong type.
pub fn field_u64(frame: &Json, key: &str) -> ShardResult<u64> {
    frame
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ShardError::Protocol(format!("frame is missing integer field `{key}`")))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn round_trips_a_frame() {
        let (mut client, server) = pipe();
        let deadline = Instant::now() + Duration::from_secs(2);
        let frame = Json::obj([("op", Json::str("ping")), ("n", Json::num(3.0))]);
        write_frame(&mut client, &frame, deadline).unwrap();
        let mut reader = FrameReader::new(server);
        let got = reader.read_frame(deadline).unwrap();
        assert_eq!(field_str(&got, "op").unwrap(), "ping");
        assert_eq!(field_u64(&got, "n").unwrap(), 3);
    }

    #[test]
    fn split_writes_reassemble() {
        let (mut client, server) = pipe();
        let deadline = Instant::now() + Duration::from_secs(2);
        client.write_all(b"{\"op\":\"pi").unwrap();
        client.flush().unwrap();
        let handle = std::thread::spawn(move || {
            let mut reader = FrameReader::new(server);
            reader.read_frame(deadline)
        });
        std::thread::sleep(Duration::from_millis(30));
        client.write_all(b"ng\"}\n").unwrap();
        client.flush().unwrap();
        let got = handle.join().unwrap().unwrap();
        assert_eq!(field_str(&got, "op").unwrap(), "ping");
    }

    #[test]
    fn silent_peer_times_out() {
        let (_client, server) = pipe();
        let mut reader = FrameReader::new(server);
        let started = Instant::now();
        let err = reader.read_frame(started + Duration::from_millis(120)).unwrap_err();
        assert!(matches!(err, ShardError::Timeout(_)), "got {err:?}");
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn missing_fields_are_protocol_errors() {
        let frame = Json::obj([("op", Json::str("ping"))]);
        assert!(matches!(field_u64(&frame, "epoch"), Err(ShardError::Protocol(_))));
        assert!(matches!(field_str(&frame, "shard"), Err(ShardError::Protocol(_))));
    }
}
