//! The retrying, failover-aware shard client.
//!
//! [`ShardClient`] is the piece load generators hold: it discovers the
//! stream-key → shard routing table from the registry, caches it under its
//! epoch, and drives every request through a bounded retry loop:
//!
//! * **Deadlines, end to end.** Every call gets one deadline; it bounds
//!   connect, write, and response-wait alike (propagated onto the socket
//!   timeouts by [`crate::wire`]), so a dead or silent shard costs at most
//!   the deadline — never a hang.
//! * **Retry with exponential backoff + jitter.** Connect failures,
//!   per-attempt timeouts and epoch mismatches re-resolve the key against
//!   a freshly fetched routing table and retry after a
//!   [`runtime::backoff::Backoff`] delay (deterministic under the
//!   configured seed), failing over to the reassigned shard when the
//!   registry moved the key.
//! * **Bounded outstanding window.** At most `window` requests may be in
//!   flight per shard; overflow sheds immediately with
//!   [`ShardError::Shed`] — cross-process backpressure, not a retry case.
//!
//! The data-plane protocol is the workspace's line-frame idiom: the client
//! sends the caller's payload object extended with `id`, `key` and the
//! cached `epoch`; the shard answers with the matching `id`, or with
//! `status:"wrong_epoch"` when the registry has moved the key since —
//! which is exactly the stale-routing signal the epoch exists to provide.

use crate::lease::Assignment;
use crate::wire::{self, FrameReader};
use crate::{ShardError, ShardResult};
use runtime::backoff::Backoff;
use runtime::json::Json;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ShardClient`].
#[derive(Debug, Clone)]
pub struct ShardClientConfig {
    /// `host:port` of the shard registry.
    pub registry_addr: String,
    /// Overall per-call budget: connect + all attempts + all backoff.
    pub deadline: Duration,
    /// Budget for one attempt's response wait before it is retried.
    pub request_timeout: Duration,
    /// Maximum attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// First backoff envelope (doubles per retry).
    pub backoff_base: Duration,
    /// Backoff envelope cap.
    pub backoff_cap: Duration,
    /// Maximum in-flight requests per shard before calls shed.
    pub window: usize,
    /// Seed for the jittered backoff delays — same config + seed ⇒ same
    /// delay sequence.
    pub seed: u64,
    /// How long a cached routing table stays fresh before a call
    /// re-polls the registry even without a failure.
    pub routing_ttl: Duration,
}

impl Default for ShardClientConfig {
    fn default() -> Self {
        Self {
            registry_addr: String::new(),
            deadline: Duration::from_millis(500),
            request_timeout: Duration::from_millis(150),
            max_attempts: 6,
            backoff_base: Duration::from_millis(4),
            backoff_cap: Duration::from_millis(64),
            window: 64,
            seed: 0,
            routing_ttl: Duration::from_millis(100),
        }
    }
}

/// A successful call's result.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// The shard's response frame.
    pub response: Json,
    /// Shard that answered.
    pub shard: String,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Times the call moved to a different shard than its first target.
    pub failovers: u32,
}

/// Point-in-time counters of a client's retry machinery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Calls issued.
    pub calls: u64,
    /// Attempts beyond each call's first (the retry count).
    pub retries: u64,
    /// Calls that switched shards mid-flight.
    pub failovers: u64,
    /// Calls shed on a full outstanding window.
    pub sheds: u64,
    /// Attempts that timed out waiting for a response.
    pub attempt_timeouts: u64,
    /// `wrong_epoch` responses observed.
    pub wrong_epoch: u64,
    /// Routing-table fetches from the registry.
    pub routing_refreshes: u64,
    /// Data-plane connections established.
    pub connects: u64,
}

impl ClientStats {
    /// The stats as a JSON object (field names match the struct).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("calls", Json::num(self.calls as f64)),
            ("retries", Json::num(self.retries as f64)),
            ("failovers", Json::num(self.failovers as f64)),
            ("sheds", Json::num(self.sheds as f64)),
            ("attempt_timeouts", Json::num(self.attempt_timeouts as f64)),
            ("wrong_epoch", Json::num(self.wrong_epoch as f64)),
            ("routing_refreshes", Json::num(self.routing_refreshes as f64)),
            ("connects", Json::num(self.connects as f64)),
        ])
    }
}

#[derive(Default)]
struct StatsInner {
    calls: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    sheds: AtomicU64,
    attempt_timeouts: AtomicU64,
    wrong_epoch: AtomicU64,
    routing_refreshes: AtomicU64,
    connects: AtomicU64,
}

/// The cached, epoch-versioned routing table.
#[derive(Default)]
struct RoutingCache {
    epoch: u64,
    assignments: HashMap<String, Assignment>,
    fetched_at: Option<Instant>,
}

/// One live data-plane connection: a locked writer, a reader thread that
/// demultiplexes responses by `id`, and the outstanding-window counter.
struct ShardConn {
    addr: String,
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, mpsc::Sender<ShardResult<Json>>>>,
    outstanding: AtomicUsize,
    alive: AtomicBool,
}

impl ShardConn {
    fn fail_all_pending(&self, why: &str) {
        self.alive.store(false, Ordering::Relaxed);
        let drained: Vec<_> = self.pending.lock().unwrap().drain().collect();
        for (_, sender) in drained {
            let _ = sender.send(Err(ShardError::ConnectionLost(why.to_string())));
        }
    }
}

/// Decrements a connection's outstanding-window slot when the attempt ends,
/// whichever way it ends.
struct WindowSlot(Arc<ShardConn>);

impl Drop for WindowSlot {
    fn drop(&mut self) {
        self.0.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A registry/data-plane client for the sharded topology. Cheap to share:
/// all methods take `&self` and internal state is synchronized, so one
/// client can serve many request threads (which is what makes the
/// per-shard outstanding window meaningful).
pub struct ShardClient {
    config: ShardClientConfig,
    routing: Mutex<RoutingCache>,
    conns: Mutex<HashMap<String, Arc<ShardConn>>>,
    next_id: AtomicU64,
    stats: StatsInner,
}

impl ShardClient {
    /// Creates a client; no I/O happens until the first call.
    pub fn new(config: ShardClientConfig) -> Self {
        Self {
            config,
            routing: Mutex::new(RoutingCache::default()),
            conns: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: StatsInner::default(),
        }
    }

    /// The client's configuration.
    pub fn config(&self) -> &ShardClientConfig {
        &self.config
    }

    /// Snapshot of the retry-machinery counters.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            calls: self.stats.calls.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            failovers: self.stats.failovers.load(Ordering::Relaxed),
            sheds: self.stats.sheds.load(Ordering::Relaxed),
            attempt_timeouts: self.stats.attempt_timeouts.load(Ordering::Relaxed),
            wrong_epoch: self.stats.wrong_epoch.load(Ordering::Relaxed),
            routing_refreshes: self.stats.routing_refreshes.load(Ordering::Relaxed),
            connects: self.stats.connects.load(Ordering::Relaxed),
        }
    }

    /// Sends `payload` (an object of caller-defined fields) to the shard
    /// assigned `key` and waits for the matching response, retrying with
    /// backoff across connect failures, attempt timeouts, lost connections
    /// and epoch mismatches until the configured deadline or attempt
    /// budget runs out. A full outstanding window sheds immediately.
    pub fn call(&self, key: &str, payload: &Json) -> ShardResult<CallOutcome> {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = Instant::now() + self.config.deadline;
        // Jitter stream is a pure function of (config seed, request id):
        // replayable, yet decorrelated across concurrent callers.
        let mut backoff = Backoff::new(
            self.config.backoff_base,
            self.config.backoff_cap,
            self.config.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut attempts = 0u32;
        let mut failovers = 0u32;
        let mut first_shard: Option<String> = None;
        let mut force_refresh = false;
        let mut last_err = ShardError::Timeout(format!("call for key `{key}`"));
        while attempts < self.config.max_attempts {
            if attempts > 0 {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                let delay = backoff.next_delay();
                let budget = wire::remaining(deadline, "call retry budget")?;
                std::thread::sleep(delay.min(budget));
            }
            attempts += 1;
            wire::remaining(deadline, "call deadline")?;

            let (epoch, assignment) = match self.resolve(key, force_refresh, deadline) {
                Ok(resolved) => resolved,
                Err(err @ ShardError::Timeout(_)) => return Err(err),
                Err(err) => {
                    // Registry unreachable or key unassigned: both are
                    // transient during failover — keep retrying.
                    last_err = err;
                    force_refresh = true;
                    continue;
                }
            };
            match &first_shard {
                None => first_shard = Some(assignment.shard.clone()),
                Some(first) if *first != assignment.shard => {
                    failovers += 1;
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    first_shard = Some(assignment.shard.clone());
                }
                Some(_) => {}
            }
            force_refresh = true; // any failure below re-resolves
            match self.attempt(id, key, epoch, &assignment, payload, deadline) {
                Ok(response) => {
                    let status = response.get("status").and_then(Json::as_str).unwrap_or("");
                    if status == "wrong_epoch" {
                        // The shard knows a newer world than our cache:
                        // refresh and fail over to wherever the key went.
                        self.stats.wrong_epoch.fetch_add(1, Ordering::Relaxed);
                        last_err = ShardError::NotAssigned(key.to_string());
                        continue;
                    }
                    return Ok(CallOutcome {
                        response,
                        shard: assignment.shard,
                        attempts,
                        failovers,
                    });
                }
                Err(err @ ShardError::Shed { .. }) => {
                    // Backpressure, not failure: surface it immediately so
                    // the caller can slow down.
                    self.stats.sheds.fetch_add(1, Ordering::Relaxed);
                    return Err(err);
                }
                Err(err @ ShardError::Timeout(_)) => {
                    self.stats.attempt_timeouts.fetch_add(1, Ordering::Relaxed);
                    last_err = err;
                }
                Err(err) => last_err = err,
            }
        }
        Err(last_err)
    }

    /// Resolves `key` against the routing cache, re-polling the registry
    /// when forced, stale, or the key is unknown.
    fn resolve(
        &self,
        key: &str,
        force_refresh: bool,
        deadline: Instant,
    ) -> ShardResult<(u64, Assignment)> {
        {
            let cache = self.routing.lock().unwrap();
            let fresh = cache
                .fetched_at
                .map(|at| at.elapsed() < self.config.routing_ttl)
                .unwrap_or(false);
            if fresh && !force_refresh {
                if let Some(assignment) = cache.assignments.get(key) {
                    return Ok((cache.epoch, assignment.clone()));
                }
            }
        }
        self.refresh_routing(deadline)?;
        let cache = self.routing.lock().unwrap();
        match cache.assignments.get(key) {
            Some(assignment) => Ok((cache.epoch, assignment.clone())),
            None => Err(ShardError::NotAssigned(key.to_string())),
        }
    }

    /// Polls the registry for the routing table and installs it if its
    /// epoch is not older than the cached one (epochs are monotonic, so an
    /// older frame is a stale read racing a concurrent refresh).
    fn refresh_routing(&self, deadline: Instant) -> ShardResult<()> {
        self.stats.routing_refreshes.fetch_add(1, Ordering::Relaxed);
        let frame = Json::obj([("op", Json::str("routing"))]);
        let response = registry_call(&self.config.registry_addr, &frame, deadline)?;
        let epoch = wire::field_u64(&response, "epoch")?;
        let mut assignments = HashMap::new();
        let entries = response
            .get("assignments")
            .and_then(Json::as_obj)
            .ok_or_else(|| ShardError::Protocol("routing frame lacks `assignments`".into()))?;
        for (key, value) in entries {
            assignments.insert(
                key.clone(),
                Assignment {
                    shard: wire::field_str(value, "shard")?.to_string(),
                    addr: wire::field_str(value, "addr")?.to_string(),
                },
            );
        }
        let mut cache = self.routing.lock().unwrap();
        if epoch >= cache.epoch {
            cache.epoch = epoch;
            cache.assignments = assignments;
        }
        cache.fetched_at = Some(Instant::now());
        Ok(())
    }

    /// One attempt: connection, window slot, write, wait for the matching
    /// response.
    fn attempt(
        &self,
        id: u64,
        key: &str,
        epoch: u64,
        assignment: &Assignment,
        payload: &Json,
        deadline: Instant,
    ) -> ShardResult<Json> {
        let conn = self.connection(assignment, deadline)?;

        // Bounded outstanding window: acquire or shed, never block.
        let mut outstanding = conn.outstanding.load(Ordering::Acquire);
        loop {
            if outstanding >= self.config.window {
                return Err(ShardError::Shed { shard: assignment.shard.clone() });
            }
            match conn.outstanding.compare_exchange_weak(
                outstanding,
                outstanding + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => outstanding = actual,
            }
        }
        let _slot = WindowSlot(Arc::clone(&conn));

        let (sender, receiver) = mpsc::channel();
        conn.pending.lock().unwrap().insert(id, sender);

        let mut frame_fields: Vec<(String, Json)> = vec![
            ("id".into(), Json::num(id as f64)),
            ("key".into(), Json::str(key)),
            ("epoch".into(), Json::num(epoch as f64)),
        ];
        if let Some(extra) = payload.as_obj() {
            frame_fields.extend(extra.iter().cloned());
        }
        let frame = Json::Obj(frame_fields);
        {
            let mut writer = conn.writer.lock().unwrap();
            if let Err(err) = wire::write_frame(&mut writer, &frame, deadline) {
                conn.pending.lock().unwrap().remove(&id);
                conn.fail_all_pending("write failed");
                self.drop_connection(&assignment.shard, &conn);
                return Err(err);
            }
        }

        let wait = wire::remaining(deadline, "response wait")?.min(self.config.request_timeout);
        match receiver.recv_timeout(wait) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let still_pending = conn.pending.lock().unwrap().remove(&id).is_some();
                if still_pending {
                    Err(ShardError::Timeout(format!("response for request {id}")))
                } else {
                    // The response raced our timeout: the reader already
                    // took the sender, so the result is a recv away.
                    receiver
                        .recv_timeout(Duration::from_millis(50))
                        .unwrap_or(Err(ShardError::Timeout(format!("response for request {id}"))))
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(ShardError::ConnectionLost("reader dropped the response".into()))
            }
        }
    }

    /// Returns a live connection to the shard, establishing (and spawning
    /// the reader for) one if the cached connection is missing, dead, or
    /// points at a stale address.
    fn connection(&self, assignment: &Assignment, deadline: Instant) -> ShardResult<Arc<ShardConn>> {
        let mut conns = self.conns.lock().unwrap();
        if let Some(conn) = conns.get(&assignment.shard) {
            if conn.alive.load(Ordering::Relaxed) && conn.addr == assignment.addr {
                return Ok(Arc::clone(conn));
            }
        }
        let budget = wire::remaining(deadline, "connect")?;
        let addr: std::net::SocketAddr = assignment
            .addr
            .parse()
            .map_err(|e| ShardError::Protocol(format!("bad shard addr `{}`: {e}", assignment.addr)))?;
        let stream = TcpStream::connect_timeout(&addr, budget.max(Duration::from_millis(1)))
            .map_err(|e| ShardError::ConnectionLost(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        self.stats.connects.fetch_add(1, Ordering::Relaxed);
        let read_half = stream
            .try_clone()
            .map_err(|e| ShardError::ConnectionLost(format!("clone stream: {e}")))?;
        let conn = Arc::new(ShardConn {
            addr: assignment.addr.clone(),
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            outstanding: AtomicUsize::new(0),
            alive: AtomicBool::new(true),
        });
        conns.insert(assignment.shard.clone(), Arc::clone(&conn));
        drop(conns);

        let reader_conn = Arc::clone(&conn);
        std::thread::spawn(move || {
            let mut reader = FrameReader::new(read_half);
            loop {
                // Long per-read lease; timeouts just re-arm (an idle
                // connection is fine), anything else ends the connection.
                match reader.read_frame(Instant::now() + Duration::from_secs(30)) {
                    Ok(frame) => {
                        let Some(id) = frame.get("id").and_then(Json::as_u64) else { continue };
                        let sender = reader_conn.pending.lock().unwrap().remove(&id);
                        if let Some(sender) = sender {
                            let _ = sender.send(Ok(frame));
                        }
                    }
                    Err(ShardError::Timeout(_)) => {
                        if !reader_conn.alive.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                    Err(err) => {
                        reader_conn.fail_all_pending(&err.to_string());
                        return;
                    }
                }
            }
        });
        Ok(conn)
    }

    /// Forgets a dead connection so the next attempt re-establishes it.
    fn drop_connection(&self, shard: &str, dead: &Arc<ShardConn>) {
        let mut conns = self.conns.lock().unwrap();
        if let Some(current) = conns.get(shard) {
            if Arc::ptr_eq(current, dead) {
                conns.remove(shard);
            }
        }
    }
}

impl Drop for ShardClient {
    fn drop(&mut self) {
        // Close every socket so reader threads observe EOF and exit.
        let conns: Vec<Arc<ShardConn>> = self.conns.lock().unwrap().values().cloned().collect();
        for conn in conns {
            conn.alive.store(false, Ordering::Relaxed);
            let writer = conn.writer.lock().unwrap();
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// One-shot registry exchange: connect, send `frame`, read one response —
/// all under `deadline`. Used by the client's routing poll and by shard
/// servers' register/renew heartbeats.
pub fn registry_call(addr: &str, frame: &Json, deadline: Instant) -> ShardResult<Json> {
    let budget = wire::remaining(deadline, "registry connect")?;
    let socket_addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| ShardError::Registry(format!("bad registry addr `{addr}`: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, budget.max(Duration::from_millis(1)))
        .map_err(|e| ShardError::Registry(format!("connect {addr}: {e}")))?;
    let _ = stream.set_nodelay(true);
    let read_half = stream
        .try_clone()
        .map_err(|e| ShardError::Registry(format!("clone stream: {e}")))?;
    wire::write_frame(&mut stream, frame, deadline)?;
    let mut reader = FrameReader::new(read_half);
    let response = reader.read_frame(deadline)?;
    if response.get("ok").and_then(Json::as_bool) == Some(false) {
        let why = response.get("error").and_then(Json::as_str).unwrap_or("unspecified");
        return Err(ShardError::Registry(why.to_string()));
    }
    Ok(response)
}

/// A persistent registry connection for shard servers' heartbeat loops:
/// reuses one TCP connection across renews and transparently reconnects
/// after a failure.
pub struct RegistryConn {
    addr: String,
    conn: Option<(TcpStream, FrameReader)>,
}

impl RegistryConn {
    /// Creates a lazy connection to the registry at `addr`; no I/O until
    /// the first call.
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), conn: None }
    }

    /// Sends `frame` and reads the response under `deadline`, dialing (or
    /// re-dialing) the registry as needed. Any failure drops the cached
    /// connection so the next call starts clean.
    pub fn call(&mut self, frame: &Json, deadline: Instant) -> ShardResult<Json> {
        if self.conn.is_none() {
            let budget = wire::remaining(deadline, "registry connect")?;
            let socket_addr: std::net::SocketAddr = self
                .addr
                .parse()
                .map_err(|e| ShardError::Registry(format!("bad registry addr `{}`: {e}", self.addr)))?;
            let stream =
                TcpStream::connect_timeout(&socket_addr, budget.max(Duration::from_millis(1)))
                    .map_err(|e| ShardError::Registry(format!("connect {}: {e}", self.addr)))?;
            let _ = stream.set_nodelay(true);
            let read_half = stream
                .try_clone()
                .map_err(|e| ShardError::Registry(format!("clone stream: {e}")))?;
            self.conn = Some((stream, FrameReader::new(read_half)));
        }
        let (stream, reader) = self.conn.as_mut().expect("connection just established");
        let result = wire::write_frame(stream, frame, deadline).and_then(|()| reader.read_frame(deadline));
        match result {
            Ok(response) => {
                if response.get("ok").and_then(Json::as_bool) == Some(false) {
                    let why =
                        response.get("error").and_then(Json::as_str).unwrap_or("unspecified");
                    return Err(ShardError::Registry(why.to_string()));
                }
                Ok(response)
            }
            Err(err) => {
                self.conn = None;
                Err(err)
            }
        }
    }
}
