//! Wire-level malice tests: a peer that sends garbage, truncates frames,
//! never terminates a line, or goes silent must always produce a *typed*
//! error within the deadline — never a panic, never a hang, never an
//! unbounded buffer.
//!
//! Two layers are attacked: the raw `FrameReader` (table-driven byte
//! sequences) and a live `Registry` server (same attacks over its real
//! accept loop, asserting it answers typed errors and stays up for
//! well-formed peers afterwards).

use runtime::json::Json;
use shard::wire::{FrameReader, MAX_FRAME_BYTES};
use shard::{Registry, ShardError};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// What a malicious byte sequence must be classified as.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expect {
    Protocol,
    FrameTooLarge,
    Timeout,
    ConnectionLost,
}

fn classify(err: &ShardError) -> Expect {
    match err {
        ShardError::Protocol(_) => Expect::Protocol,
        ShardError::FrameTooLarge { .. } => Expect::FrameTooLarge,
        ShardError::Timeout(_) => Expect::Timeout,
        ShardError::ConnectionLost(_) => Expect::ConnectionLost,
        other => panic!("unexpected error class: {other:?}"),
    }
}

/// The attack table: name, the bytes sent, whether the sender then closes
/// the connection, and the required typed outcome.
fn attacks() -> Vec<(&'static str, Vec<u8>, bool, Expect)> {
    let oversized = {
        let mut frame = vec![b'x'; MAX_FRAME_BYTES + 64];
        frame.push(b'\n');
        frame
    };
    vec![
        ("garbage bytes", b"\xff\xfe\x00\x01garbage\n".to_vec(), false, Expect::Protocol),
        ("plain-text line", b"hello there\n".to_vec(), false, Expect::Protocol),
        ("truncated JSON", b"{\"op\":\"regist\n".to_vec(), false, Expect::Protocol),
        ("unterminated JSON object", b"{\"op\":\"routing\"\n".to_vec(), false, Expect::Protocol),
        ("empty line", b"\n".to_vec(), false, Expect::Protocol),
        ("bare JSON scalar", b"42\n".to_vec(), false, Expect::Protocol),
        ("oversized frame", oversized, false, Expect::FrameTooLarge),
        (
            "endless unterminated frame",
            vec![b'y'; MAX_FRAME_BYTES + 4096],
            false,
            Expect::FrameTooLarge,
        ),
        ("silent peer", Vec::new(), false, Expect::Timeout),
        ("close without a byte", Vec::new(), true, Expect::ConnectionLost),
        ("close mid-frame", b"{\"op\":\"rou".to_vec(), true, Expect::ConnectionLost),
    ]
}

/// Each attack against a raw `FrameReader`: the typed error arrives within
/// the deadline.
#[test]
fn frame_reader_types_every_attack() {
    for (name, bytes, close, expected) in attacks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut attacker = TcpStream::connect(addr).unwrap();
        let (victim, _) = listener.accept().unwrap();

        attacker.write_all(&bytes).unwrap();
        attacker.flush().unwrap();
        if close {
            drop(attacker);
        }
        // (`attacker` stays in scope otherwise, so EOF cannot mask the
        // real error class.)

        let mut reader = FrameReader::new(victim);
        let started = Instant::now();
        let deadline = started + Duration::from_millis(400);
        let err = reader
            .read_frame(deadline)
            .expect_err(&format!("attack `{name}` produced a frame"));
        assert_eq!(classify(&err), expected, "attack `{name}`: got {err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "attack `{name}` took {:?} — deadline not enforced",
            started.elapsed()
        );
    }
}

/// Each attack against a live registry: the server answers a typed
/// `{"ok":false,...}` frame (or silence for attacks that cannot complete a
/// frame), never panics, and keeps serving well-formed peers afterwards.
#[test]
fn registry_survives_every_attack() {
    let registry = Registry::bind("127.0.0.1:0", 200).unwrap();
    let port = registry.port();
    let handle = registry.spawn();

    for (name, bytes, close, expected) in attacks() {
        // Silent-peer handling is the registry's idle timeout (seconds);
        // covered by the FrameReader table above, skipped here for speed.
        if expected == Expect::Timeout {
            continue;
        }
        let mut attacker = TcpStream::connect(("127.0.0.1", port)).unwrap();
        attacker.write_all(&bytes).unwrap();
        attacker.flush().unwrap();
        if close {
            drop(attacker);
            continue;
        }
        attacker.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
        let mut response = Vec::new();
        let _ = attacker.read_to_end(&mut response);
        let text = String::from_utf8_lossy(&response);
        let line = text.lines().next().unwrap_or("");
        assert!(
            !line.is_empty(),
            "attack `{name}`: registry closed without a typed error frame"
        );
        let frame = Json::parse(line)
            .unwrap_or_else(|e| panic!("attack `{name}`: unparseable error frame `{line}`: {e}"));
        assert_eq!(
            frame.get("ok").and_then(Json::as_bool),
            Some(false),
            "attack `{name}`: expected ok:false, got `{line}`"
        );
    }

    // The registry still serves a well-formed peer.
    let mut good = TcpStream::connect(("127.0.0.1", port)).unwrap();
    let request = Json::obj([("op", Json::str("routing"))]);
    good.write_all(format!("{}\n", request.to_string_compact()).as_bytes()).unwrap();
    let mut reader = FrameReader::new(good.try_clone().unwrap());
    let response = reader.read_frame(Instant::now() + Duration::from_secs(3)).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("epoch").and_then(Json::as_u64), Some(0));

    let stats = handle.shutdown();
    assert!(stats.get("rejected_frames").and_then(Json::as_u64).unwrap() >= 5);
}
