//! Integration tests: a live registry, toy shard servers speaking the
//! data-plane protocol, and a `ShardClient` driving requests through
//! discovery, retry, backpressure and shard-kill failover.

use runtime::json::Json;
use shard::client::{registry_call, RegistryConn};
use shard::wire::{self, FrameReader};
use shard::{Registry, RegistryHandle, ShardClient, ShardClientConfig, ShardError};
use std::collections::HashSet;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A minimal shard server: registers its keys, renews on a heartbeat, and
/// answers every data-plane frame with `status:"ok"` (plus its name) — or
/// `status:"wrong_epoch"` when the key is not in its last-heartbeat
/// assignment, mirroring the real `shard_agent`.
struct ToyShard {
    port: u16,
    stop: Arc<AtomicBool>,
    /// Respond `wrong_epoch` to the first data frame regardless of
    /// assignment (simulates a shard mid-transition).
    wrong_epoch_once: Arc<AtomicBool>,
    /// Accepted data-plane sockets, so `kill` can sever them like a real
    /// process death would.
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl ToyShard {
    fn spawn(name: &str, registry_port: u16, keys: &[&str], heartbeat_ms: u64) -> ToyShard {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let stop = Arc::new(AtomicBool::new(false));
        let wrong_epoch_once = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let assigned: Arc<Mutex<HashSet<String>>> = Arc::new(Mutex::new(HashSet::new()));
        let epoch = Arc::new(Mutex::new(0u64));

        // Register before returning so tests never race the first routing
        // poll against an unregistered shard.
        let register = Json::obj([
            ("op", Json::str("register")),
            ("shard", Json::str(name)),
            ("addr", Json::str(format!("127.0.0.1:{port}"))),
            ("keys", Json::arr(keys.iter().map(|k| Json::str(*k)))),
        ]);
        let registry_addr = format!("127.0.0.1:{registry_port}");
        let response =
            registry_call(&registry_addr, &register, Instant::now() + Duration::from_secs(2))
                .unwrap();
        *epoch.lock().unwrap() = response.get("epoch").and_then(Json::as_u64).unwrap();
        {
            let mut set = assigned.lock().unwrap();
            for key in response.get("assigned").and_then(Json::as_arr).unwrap() {
                set.insert(key.as_str().unwrap().to_string());
            }
        }

        // Heartbeat loop: renew, refresh the assigned-key view, re-register
        // if evicted.
        {
            let stop = Arc::clone(&stop);
            let assigned = Arc::clone(&assigned);
            let epoch = Arc::clone(&epoch);
            let name = name.to_string();
            let register = register.clone();
            std::thread::spawn(move || {
                let mut conn = RegistryConn::new(registry_addr);
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(heartbeat_ms));
                    let renew =
                        Json::obj([("op", Json::str("renew")), ("shard", Json::str(name.clone()))]);
                    let deadline = Instant::now() + Duration::from_secs(1);
                    let response = match conn.call(&renew, deadline) {
                        Ok(response) => response,
                        Err(ShardError::Registry(why)) if why == "unknown_shard" => {
                            match conn.call(&register, deadline) {
                                Ok(response) => response,
                                Err(_) => continue,
                            }
                        }
                        Err(_) => continue,
                    };
                    if let Some(e) = response.get("epoch").and_then(Json::as_u64) {
                        *epoch.lock().unwrap() = e;
                    }
                    if let Some(keys) = response.get("assigned").and_then(Json::as_arr) {
                        let mut set = assigned.lock().unwrap();
                        set.clear();
                        for key in keys {
                            set.insert(key.as_str().unwrap().to_string());
                        }
                    }
                }
            });
        }

        // Data plane: per-connection echo loop.
        {
            let stop = Arc::clone(&stop);
            let assigned = Arc::clone(&assigned);
            let epoch = Arc::clone(&epoch);
            let wrong_once = Arc::clone(&wrong_epoch_once);
            let name = name.to_string();
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if let Ok(tracked) = stream.try_clone() {
                        conns.lock().unwrap().push(tracked);
                    }
                    let assigned = Arc::clone(&assigned);
                    let epoch = Arc::clone(&epoch);
                    let wrong_once = Arc::clone(&wrong_once);
                    let name = name.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let Ok(read_half) = stream.try_clone() else { return };
                        let mut writer = stream;
                        let mut reader = FrameReader::new(read_half);
                        loop {
                            let frame =
                                match reader.read_frame(Instant::now() + Duration::from_secs(2)) {
                                    Ok(frame) => frame,
                                    Err(ShardError::Timeout(_)) if !stop.load(Ordering::Relaxed) => {
                                        continue
                                    }
                                    Err(_) => return,
                                };
                            let id = frame.get("id").and_then(Json::as_u64).unwrap_or(0);
                            let key =
                                frame.get("key").and_then(Json::as_str).unwrap_or("").to_string();
                            let serves_key = assigned.lock().unwrap().contains(&key);
                            let response = if wrong_once.swap(false, Ordering::Relaxed)
                                || !serves_key
                            {
                                Json::obj([
                                    ("id", Json::num(id as f64)),
                                    ("status", Json::str("wrong_epoch")),
                                    ("epoch", Json::num(*epoch.lock().unwrap() as f64)),
                                ])
                            } else {
                                Json::obj([
                                    ("id", Json::num(id as f64)),
                                    ("status", Json::str("ok")),
                                    ("shard", Json::str(name.clone())),
                                ])
                            };
                            let deadline = Instant::now() + Duration::from_secs(2);
                            if wire::write_frame(&mut writer, &response, deadline).is_err() {
                                return;
                            }
                        }
                    });
                }
            });
        }

        ToyShard { port, stop, wrong_epoch_once, conns }
    }

    /// Hard-kill: stop heartbeating, refuse new data connections and sever
    /// the established ones (the in-library analogue of SIGKILL).
    fn kill(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
    }
}

fn registry(lease_ttl_ms: u64) -> (RegistryHandle, u16) {
    let registry = Registry::bind("127.0.0.1:0", lease_ttl_ms).unwrap();
    let port = registry.port();
    (registry.spawn(), port)
}

fn client_config(registry_port: u16) -> ShardClientConfig {
    ShardClientConfig {
        registry_addr: format!("127.0.0.1:{registry_port}"),
        deadline: Duration::from_secs(3),
        request_timeout: Duration::from_millis(300),
        max_attempts: 12,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        window: 64,
        seed: 42,
        routing_ttl: Duration::from_millis(50),
    }
}

#[test]
fn calls_route_by_key_across_shards() {
    let (registry, port) = registry(300);
    let s0 = ToyShard::spawn("s0", port, &["k0", "k1"], 60);
    let s1 = ToyShard::spawn("s1", port, &["k0", "k1"], 60);
    let client = ShardClient::new(client_config(port));

    // Sorted keys over sorted shards: k0 → s0, k1 → s1.
    let payload = Json::obj([("body", Json::str("x"))]);
    let k0 = client.call("k0", &payload).unwrap();
    let k1 = client.call("k1", &payload).unwrap();
    assert_eq!(k0.response.get("shard").and_then(Json::as_str), Some("s0"));
    assert_eq!(k1.response.get("shard").and_then(Json::as_str), Some("s1"));
    assert_eq!(k0.attempts, 1);
    assert_eq!(client.stats().calls, 2);

    s0.kill();
    s1.kill();
    registry.shutdown();
}

#[test]
fn unknown_key_is_typed_not_a_hang() {
    let (registry, port) = registry(300);
    let s0 = ToyShard::spawn("s0", port, &["k0"], 60);
    let mut config = client_config(port);
    config.deadline = Duration::from_millis(400);
    config.max_attempts = 3;
    let client = ShardClient::new(config);

    let started = Instant::now();
    let err = client.call("nope", &Json::obj::<String>([])).unwrap_err();
    assert!(
        matches!(err, ShardError::NotAssigned(_) | ShardError::Timeout(_)),
        "got {err:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(2));

    s0.kill();
    registry.shutdown();
}

#[test]
fn wrong_epoch_response_is_retried_to_success() {
    let (registry, port) = registry(300);
    let s0 = ToyShard::spawn("s0", port, &["k0"], 60);
    let client = ShardClient::new(client_config(port));

    s0.wrong_epoch_once.store(true, Ordering::Relaxed);
    let outcome = client.call("k0", &Json::obj::<String>([])).unwrap();
    assert_eq!(outcome.response.get("status").and_then(Json::as_str), Some("ok"));
    assert!(outcome.attempts >= 2, "expected a retry, got {} attempts", outcome.attempts);
    assert_eq!(client.stats().wrong_epoch, 1);

    s0.kill();
    registry.shutdown();
}

#[test]
fn killed_shard_fails_over_to_the_survivor() {
    let lease_ttl = 150u64;
    let (registry, port) = registry(lease_ttl);
    let s0 = ToyShard::spawn("s0", port, &["k0", "k1"], 40);
    let s1 = ToyShard::spawn("s1", port, &["k0", "k1"], 40);
    let client = ShardClient::new(client_config(port));

    let payload = Json::obj([("body", Json::str("x"))]);
    let before = client.call("k1", &payload).unwrap();
    assert_eq!(before.response.get("shard").and_then(Json::as_str), Some("s1"));

    // Kill the shard serving k1. Until eviction (~TTL + sweep) the client
    // sees dead connections; its retry/backoff loop must ride that out and
    // land on the survivor — typed errors allowed, hangs and panics not.
    s1.kill();
    let outcome = client.call("k1", &payload).unwrap();
    assert_eq!(
        outcome.response.get("shard").and_then(Json::as_str),
        Some("s0"),
        "expected failover to the survivor"
    );
    assert!(outcome.attempts >= 2, "failover consumed {} attempts", outcome.attempts);
    assert!(outcome.failovers >= 1);
    let stats = client.stats();
    assert!(stats.retries >= 1);
    assert!(stats.failovers >= 1);

    // Steady state after failover: k1 keeps resolving on s0 first-try.
    let after = client.call("k1", &payload).unwrap();
    assert_eq!(after.response.get("shard").and_then(Json::as_str), Some("s0"));

    s0.kill();
    let stats = registry.shutdown();
    assert!(stats.get("evictions").and_then(Json::as_u64).unwrap() >= 1);
}

#[test]
fn full_window_sheds_immediately() {
    let (registry, port) = registry(300);

    // A shard that accepts connections but never answers: requests park in
    // the window until they time out.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => held.push(stream),
                Err(_) => break,
            }
        }
    });
    let register = Json::obj([
        ("op", Json::str("register")),
        ("shard", Json::str("mute")),
        ("addr", Json::str(addr.to_string())),
        ("keys", Json::arr([Json::str("k0")])),
    ]);
    registry_call(
        &format!("127.0.0.1:{port}"),
        &register,
        Instant::now() + Duration::from_secs(2),
    )
    .unwrap();

    let mut config = client_config(port);
    config.window = 1;
    config.max_attempts = 1;
    config.deadline = Duration::from_secs(2);
    config.request_timeout = Duration::from_secs(1);
    let client = Arc::new(ShardClient::new(config));

    // Park one request in the mute shard's window…
    let parked = {
        let client = Arc::clone(&client);
        std::thread::spawn(move || client.call("k0", &Json::obj::<String>([])))
    };
    std::thread::sleep(Duration::from_millis(200));
    // …then the second call must shed, immediately and typed.
    let started = Instant::now();
    let err = client.call("k0", &Json::obj::<String>([])).unwrap_err();
    assert!(matches!(err, ShardError::Shed { ref shard } if shard == "mute"), "got {err:?}");
    assert!(started.elapsed() < Duration::from_millis(500), "shed was not immediate");
    assert_eq!(client.stats().sheds, 1);

    let parked = parked.join().unwrap();
    assert!(matches!(parked, Err(ShardError::Timeout(_))), "got {parked:?}");

    registry.shutdown();
}
