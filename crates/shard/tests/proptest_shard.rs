//! Property-based tests for the heartbeat-lease state machine.
//!
//! `LeaseTable` is wall-clock-free (every operation takes the caller's
//! `now_ms`), so these tests can drive arbitrary interleavings of
//! register / renew / sweep across arbitrary time gaps and check the
//! invariants the sharded topology leans on:
//!
//! 1. a lease never survives past its TTL without a renewal,
//! 2. the epoch never decreases,
//! 3. an evicted shard's re-registration always lands in an epoch strictly
//!    newer than any it had observed,
//! 4. every routed key points at a live shard that declared it.

use proptest::prelude::*;
use shard::LeaseTable;
use std::collections::BTreeMap;

/// One step of a random trace: which op, against which shard, after how
/// much time passed.
fn apply_trace(ttl_ms: u64, ops: &[(u8, u8, u64)]) -> Result<(), String> {
    let mut table = LeaseTable::new(ttl_ms).unwrap();
    let mut now_ms = 0u64;
    // Shadow model: when each shard's lease expires, what epoch it last
    // observed, and whether it was evicted since then.
    let mut expiry: BTreeMap<String, u64> = BTreeMap::new();
    let mut observed_epoch: BTreeMap<String, u64> = BTreeMap::new();
    let mut last_epoch = table.epoch();
    let keys: Vec<String> = (0..3).map(|k| format!("k{k}")).collect();

    for &(op, shard_index, dt) in ops {
        now_ms += dt;
        let shard = format!("s{}", shard_index % 4);
        // The shadow model evicts lazily, exactly like the table's sweep.
        let was_evicted =
            expiry.get(&shard).map(|&e| e <= now_ms).unwrap_or(false);
        match op % 3 {
            0 => {
                let epoch = table.register(&shard, "127.0.0.1:1", &keys, now_ms);
                // Invariant 3: a re-registration (evicted or not) always
                // lands past everything this shard has seen.
                if let Some(&seen) = observed_epoch.get(&shard) {
                    prop_assert!(
                        epoch > seen,
                        "re-registration epoch {epoch} not past observed {seen} (evicted: {was_evicted})"
                    );
                }
                expiry.insert(shard.clone(), now_ms + ttl_ms);
                observed_epoch.insert(shard.clone(), epoch);
            }
            1 => match table.renew(&shard, now_ms) {
                Ok(epoch) => {
                    // Invariant 1 (contrapositive): a renewal only succeeds
                    // while the shadow lease is still live.
                    prop_assert!(
                        expiry.get(&shard).map(|&e| e > now_ms).unwrap_or(false),
                        "renew succeeded for `{shard}` at {now_ms} but shadow lease expired at {:?}",
                        expiry.get(&shard)
                    );
                    expiry.insert(shard.clone(), now_ms + ttl_ms);
                    observed_epoch.insert(shard.clone(), epoch);
                }
                Err(_) => {
                    prop_assert!(
                        expiry.get(&shard).map(|&e| e <= now_ms).unwrap_or(true),
                        "renew failed for `{shard}` at {now_ms} but shadow lease lives until {:?}",
                        expiry.get(&shard)
                    );
                    expiry.remove(&shard);
                }
            },
            _ => {
                table.sweep(now_ms);
            }
        }

        // Invariant 2: epochs are monotone across every operation.
        let epoch = table.epoch();
        prop_assert!(epoch >= last_epoch, "epoch went {last_epoch} -> {epoch}");
        last_epoch = epoch;

        // Invariant 1: no live lease past its TTL.
        for live in table.live_shards() {
            let expires = expiry.get(&live).copied().unwrap_or(0);
            prop_assert!(
                expires > now_ms,
                "shard `{live}` still live at {now_ms}, lease expired at {expires}"
            );
        }

        // Invariant 4: routing only points at live shards (which all
        // declared every key in this trace).
        let live = table.live_shards();
        let (_, assignments) = table.routing(now_ms);
        let routed: Vec<(String, String)> =
            assignments.iter().map(|(k, a)| (k.clone(), a.shard.clone())).collect();
        for (key, assigned) in routed {
            prop_assert!(
                live.contains(&assigned),
                "key `{key}` routed to dead shard `{assigned}`"
            );
        }
        if live.is_empty() {
            let (_, assignments) = table.routing(now_ms);
            prop_assert!(assignments.is_empty(), "routing non-empty with no live shards");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lease_invariants_hold_across_random_traces(
        ttl_ms in 1u64..500,
        ops in proptest::collection::vec((0u8..3, 0u8..4, 0u64..700), 1..80),
    ) {
        apply_trace(ttl_ms, &ops)?;
    }

    #[test]
    fn long_quiet_gaps_always_evict(
        ttl_ms in 1u64..200,
        gap in 200u64..10_000,
        shard_count in 1u8..4,
    ) {
        let mut table = LeaseTable::new(ttl_ms).unwrap();
        let keys = vec!["k".to_string()];
        for s in 0..shard_count {
            table.register(&format!("s{s}"), "127.0.0.1:1", &keys, 0);
        }
        // A gap of at least the TTL with no renewals evicts everyone.
        let evicted = table.sweep(ttl_ms.max(gap));
        prop_assert_eq!(evicted.len(), shard_count as usize);
        prop_assert!(table.live_shards().is_empty());
    }
}
