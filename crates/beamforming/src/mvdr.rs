//! Minimum Variance Distortionless Response (MVDR / Capon) beamforming.
//!
//! MVDR is the paper's image-quality benchmark **and** its training target: Tiny-VBF is
//! trained to regress the MVDR-beamformed IQ image from ToF-corrected channel data.
//! The implementation follows the standard medical-ultrasound recipe
//! (Synnevåg et al., 2009): per-pixel aligned complex (analytic) channel vectors,
//! subaperture (spatial) smoothing, optional forward–backward averaging, diagonal
//! loading proportional to the trace, and the distortionless weight
//! `w = R⁻¹a / (aᴴR⁻¹a)` with a unit steering vector.
//!
//! Its per-pixel matrix solve is why MVDR costs ~98.78 GOPs per 368 × 128 frame and runs
//! in minutes on a CPU — the motivation for the learned beamformers.

use crate::grid::ImagingGrid;
use crate::iq::IqImage;
use crate::linalg::{hermitian_dot, ComplexMatrix};
use crate::plan::BeamformPlan;
use crate::{BeamformError, BeamformResult};
use ultrasound::{ChannelData, LinearArray, PlaneWave};
use usdsp::hilbert::analytic_signal_batch;
use usdsp::interp::{sample_at_complex, InterpMethod};
use usdsp::Complex32;

/// MVDR beamformer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Mvdr {
    /// Subaperture length `L` used for spatial smoothing. `0` selects `M/2` (a common
    /// default), where `M` is the number of channels.
    pub subaperture: usize,
    /// Diagonal loading factor Δ: the loading added to the covariance diagonal is
    /// `Δ · trace(R) / L`.
    pub diagonal_loading: f32,
    /// Enables forward–backward averaging of the smoothed covariance.
    pub forward_backward: bool,
    /// Plane-wave transmit description.
    pub transmit: PlaneWave,
    /// Fractional-delay interpolation used when sampling the analytic channel signals.
    pub interpolation: InterpMethod,
}

impl Default for Mvdr {
    fn default() -> Self {
        Self {
            subaperture: 0,
            diagonal_loading: 0.05,
            forward_backward: true,
            transmit: PlaneWave::zero_angle(),
            interpolation: InterpMethod::Linear,
        }
    }
}

impl Mvdr {
    /// A cheaper configuration (quarter-aperture smoothing) for tests and quick runs.
    pub fn fast() -> Self {
        Self { subaperture: 8, ..Self::default() }
    }

    /// Effective subaperture length for `channels` receive channels.
    pub fn effective_subaperture(&self, channels: usize) -> usize {
        let l = if self.subaperture == 0 { channels / 2 } else { self.subaperture };
        l.clamp(1, channels)
    }

    /// Beamforms an IQ image from raw channel data, splitting image rows across
    /// the workspace-default worker threads (see [`runtime::default_threads`]).
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::ShapeMismatch`] when the channel count disagrees with
    /// the probe, [`BeamformError::InvalidParameter`] for invalid settings, and
    /// [`BeamformError::SingularMatrix`] if a covariance solve fails even after
    /// diagonal loading.
    pub fn beamform_iq(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        self.beamform_iq_with_threads(data, array, grid, sound_speed, runtime::default_threads())
    }

    /// [`Mvdr::beamform_iq`] with an explicit worker-thread count.
    ///
    /// Every pixel's value depends only on its own aligned channel vector
    /// (covariance smoothing, loading and the solve are all per pixel), so rows
    /// can be distributed over disjoint chunks and the image is bitwise
    /// identical for every `num_threads` — MVDR's per-pixel Cholesky solve is
    /// exactly the kind of embarrassingly parallel cost this pays off for
    /// (~98.78 GOPs per 368 × 128 frame).
    ///
    /// # Errors
    ///
    /// Same as [`Mvdr::beamform_iq`].
    pub fn beamform_iq_with_threads(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        num_threads: usize,
    ) -> BeamformResult<IqImage> {
        if sound_speed <= 0.0 {
            return Err(BeamformError::InvalidParameter { name: "sound_speed", reason: "must be positive".into() });
        }
        if self.diagonal_loading < 0.0 {
            return Err(BeamformError::InvalidParameter { name: "diagonal_loading", reason: "must be non-negative".into() });
        }
        if data.num_channels() != array.num_elements() {
            return Err(BeamformError::ShapeMismatch {
                expected: format!("{} channels", array.num_elements()),
                actual: format!("{}", data.num_channels()),
            });
        }
        let channels = data.num_channels();
        let fs = data.sampling_frequency();
        let start_time = data.start_time();
        let element_xs = array.element_positions();

        // Analytic (complex) signal per channel, computed once — per-channel
        // parallel with one FFT scratch per worker.
        let analytic = Self::analytic_channels(data, num_threads);

        let pixels = self.solve_rows(grid, channels, num_threads, |row, col, aligned| {
            let z = grid.z(row);
            let x = grid.x(col);
            let t_tx = self.transmit.transmit_delay(x, z, sound_speed);
            for (ch, slot) in aligned.iter_mut().enumerate() {
                let dx = x - element_xs[ch];
                let t_rx = (dx * dx + z * z).sqrt() / sound_speed;
                let idx = (t_tx + t_rx - start_time) * fs;
                *slot = sample_at_complex(&analytic[ch], idx, self.interpolation);
            }
        })?;
        IqImage::from_data(pixels, grid.clone())
    }

    /// [`Mvdr::beamform_iq`] through a precomputed dense [`BeamformPlan`]
    /// (see [`BeamformPlan::for_mvdr`]), using the workspace-default worker
    /// threads.
    ///
    /// The channel-alignment step replays the plan's delay/interpolation
    /// tables instead of recomputing the round-trip geometry per pixel; the
    /// per-pixel covariance solve is unchanged. Bitwise identical to the
    /// direct path for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::InvalidParameter`] when the plan does not
    /// match this configuration, [`BeamformError::ShapeMismatch`] on a frame
    /// mismatch, plus the direct path's numerical errors.
    pub fn beamform_iq_planned(&self, data: &ChannelData, plan: &BeamformPlan) -> BeamformResult<IqImage> {
        self.beamform_iq_planned_with_threads(data, plan, runtime::default_threads())
    }

    /// [`Mvdr::beamform_iq_planned`] with an explicit worker-thread count.
    ///
    /// # Errors
    ///
    /// Same as [`Mvdr::beamform_iq_planned`].
    pub fn beamform_iq_planned_with_threads(
        &self,
        data: &ChannelData,
        plan: &BeamformPlan,
        num_threads: usize,
    ) -> BeamformResult<IqImage> {
        if self.diagonal_loading < 0.0 {
            return Err(BeamformError::InvalidParameter { name: "diagonal_loading", reason: "must be non-negative".into() });
        }
        if !plan.is_dense() || plan.method() != self.interpolation || plan.transmit() != self.transmit {
            return Err(BeamformError::InvalidParameter {
                name: "plan",
                reason: "plan does not match this MVDR configuration (build it with BeamformPlan::for_mvdr)".into(),
            });
        }
        plan.check_frame(data)?;
        let channels = data.num_channels();
        let n = data.num_samples();
        let analytic = Self::analytic_channels(data, num_threads);
        // Channel-major flat layout for the plan's absolute tap indices.
        let mut flat = vec![Complex32::ZERO; channels * n];
        for (ch, trace) in analytic.iter().enumerate() {
            flat[ch * n..ch * n + trace.len()].copy_from_slice(trace);
        }
        let grid = plan.grid().clone();
        let cols = grid.num_cols();
        let pixels = self.solve_rows(&grid, channels, num_threads, |row, col, aligned| {
            plan.align_pixel_into(row * cols + col, &flat, aligned);
        })?;
        IqImage::from_data(pixels, grid)
    }

    /// Per-channel analytic signals, parallel with shared FFT scratch.
    /// Zero-sample acquisitions yield empty traces (which sample to zero),
    /// matching the per-channel `unwrap_or_default` this replaces.
    fn analytic_channels(data: &ChannelData, num_threads: usize) -> Vec<Vec<Complex32>> {
        if data.num_samples() == 0 {
            return vec![Vec::new(); data.num_channels()];
        }
        analytic_signal_batch(&data.to_channel_traces(), num_threads)
            .expect("analytic_signal_batch: traces validated non-empty")
    }

    /// The shared per-pixel sweep: align each pixel's channel vector via
    /// `align(row, col, &mut aligned)`, then run the MVDR solve. Rows are
    /// distributed over disjoint chunks, so the output is bitwise identical
    /// for every `num_threads`.
    fn solve_rows<F>(
        &self,
        grid: &ImagingGrid,
        channels: usize,
        num_threads: usize,
        align: F,
    ) -> BeamformResult<Vec<Complex32>>
    where
        F: Fn(usize, usize, &mut [Complex32]) + Sync,
    {
        let l = self.effective_subaperture(channels);
        let steering = vec![Complex32::ONE; l];
        let num_subapertures = channels - l + 1;
        let rows = grid.num_rows();
        let cols = grid.num_cols();

        // Keyed by global pixel index so the reported error is the row-order
        // first one, independent of the thread count (same contract as the
        // image data itself).
        let failure: std::sync::Mutex<Option<(usize, BeamformError)>> = std::sync::Mutex::new(None);
        let mut pixels = vec![Complex32::ZERO; rows * cols];
        runtime::par_map_rows(&mut pixels, cols, num_threads, |first_row, block| {
            let mut aligned = vec![Complex32::ZERO; channels];
            for (local, out_row) in block.chunks_mut(cols).enumerate() {
                let row = first_row + local;
                for (col, out) in out_row.iter_mut().enumerate() {
                    align(row, col, &mut aligned);
                    match self.pixel_value(&aligned, l, num_subapertures, &steering) {
                        Ok(v) => *out = v,
                        Err(e) => {
                            let pixel = row * cols + col;
                            let mut slot = failure.lock().expect("mvdr mutex poisoned");
                            if slot.as_ref().is_none_or(|(p, _)| pixel < *p) {
                                *slot = Some((pixel, e));
                            }
                            return;
                        }
                    }
                }
            }
        });
        if let Some((_, e)) = failure.into_inner().expect("mvdr mutex poisoned") {
            return Err(e);
        }
        Ok(pixels)
    }

    fn pixel_value(
        &self,
        aligned: &[Complex32],
        l: usize,
        num_subapertures: usize,
        steering: &[Complex32],
    ) -> BeamformResult<Complex32> {
        // Spatially smoothed covariance.
        let mut covariance = ComplexMatrix::zeros(l);
        let weight = 1.0 / num_subapertures as f32;
        for p in 0..num_subapertures {
            covariance.accumulate_outer(&aligned[p..p + l], weight);
        }
        if self.forward_backward {
            // Forward-backward averaging: R <- (R + J R* J) / 2, where J is the exchange
            // matrix. Implemented by averaging with the flipped-conjugated covariance.
            let mut fb = ComplexMatrix::zeros(l);
            for i in 0..l {
                for j in 0..l {
                    let v = covariance.at(l - 1 - i, l - 1 - j).conj();
                    *fb.at_mut(i, j) = (covariance.at(i, j) + v).scale(0.5);
                }
            }
            covariance = fb;
        }
        let trace = covariance.trace().re;
        if trace <= 0.0 {
            // Fully silent pixel: MVDR reduces to plain averaging, which is zero here.
            return Ok(Complex32::ZERO);
        }
        covariance.add_diagonal((self.diagonal_loading * trace / l as f32).max(1e-12 * trace));

        let r_inv_a = match covariance.solve_hermitian(steering) {
            Ok(v) => v,
            Err(BeamformError::SingularMatrix) => {
                // Retry with much heavier loading before giving up.
                let mut heavy = covariance.clone();
                heavy.add_diagonal(0.5 * trace / l as f32);
                heavy.solve_hermitian(steering)?
            }
            Err(e) => return Err(e),
        };
        let denom = hermitian_dot(steering, &r_inv_a);
        if denom.abs() <= 1e-20 {
            return Err(BeamformError::SingularMatrix);
        }
        // Output: average of wᴴ x_p over subapertures with w = R⁻¹a / (aᴴR⁻¹a).
        let mut acc = Complex32::ZERO;
        for p in 0..num_subapertures {
            let wx = hermitian_dot(&r_inv_a, &aligned[p..p + l]);
            acc += wx;
        }
        Ok(acc / denom * Complex32::from_real(1.0 / num_subapertures as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmode::BModeImage;
    use crate::das::DelayAndSum;
    use ultrasound::{Medium, Phantom, PlaneWaveSimulator};

    fn simulate(phantom: &Phantom, array: &LinearArray, depth: f32) -> ChannelData {
        let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), depth);
        sim.simulate(phantom, PlaneWave::zero_angle()).unwrap()
    }

    #[test]
    fn effective_subaperture_defaults_to_half() {
        let mvdr = Mvdr::default();
        assert_eq!(mvdr.effective_subaperture(128), 64);
        assert_eq!(Mvdr::fast().effective_subaperture(32), 8);
        assert_eq!(Mvdr { subaperture: 1000, ..Mvdr::default() }.effective_subaperture(32), 32);
    }

    #[test]
    fn mvdr_focuses_point_target() {
        let array = LinearArray::small_test_array();
        let phantom = Phantom::builder(0.01, 0.03).add_point_target(0.0, 0.02, 1.0).build();
        let rf = simulate(&phantom, &array, 0.03);
        let grid = ImagingGrid::for_array(&array, 0.016, 0.008, 40, 16);
        let image = Mvdr::fast().beamform_iq(&rf, &array, &grid, 1540.0).unwrap();
        let envelope = image.envelope();
        let (peak_idx, _) = envelope.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        let peak_row = peak_idx / grid.num_cols();
        let peak_col = peak_idx % grid.num_cols();
        assert!((peak_row as i64 - grid.nearest_row(0.02) as i64).abs() <= 2);
        assert!((peak_col as i64 - grid.nearest_col(0.0) as i64).abs() <= 1);
    }

    #[test]
    fn mvdr_mainlobe_is_narrower_than_das() {
        // Lateral -6 dB width at the target depth should be smaller for MVDR.
        let array = LinearArray::small_test_array();
        let phantom = Phantom::builder(0.012, 0.03).add_point_target(0.0, 0.02, 1.0).build();
        let rf = simulate(&phantom, &array, 0.03);
        let grid = ImagingGrid::for_array(&array, 0.0196, 0.0008, 5, 48);
        let das_img = DelayAndSum::default().beamform_iq(&rf, &array, &grid, 1540.0).unwrap();
        let mvdr_img = Mvdr::fast().beamform_iq(&rf, &array, &grid, 1540.0).unwrap();
        let width = |img: &IqImage| {
            let row = grid.nearest_row(0.02);
            let profile: Vec<f32> = (0..grid.num_cols()).map(|c| img.value(row, c).abs()).collect();
            let peak = profile.iter().cloned().fold(0.0f32, f32::max);
            profile.iter().filter(|&&v| v > 0.5 * peak).count()
        };
        let das_width = width(&das_img);
        let mvdr_width = width(&mvdr_img);
        assert!(mvdr_width <= das_width, "mvdr {mvdr_width} das {das_width}");
    }

    #[test]
    fn parallel_mvdr_is_bitwise_identical_to_serial() {
        let array = LinearArray::small_test_array();
        let phantom = Phantom::builder(0.012, 0.03)
            .seed(7)
            .speckle_density(60.0)
            .add_point_target(0.0, 0.02, 1.0)
            .build();
        let rf = simulate(&phantom, &array, 0.03);
        let grid = ImagingGrid::for_array(&array, 0.014, 0.008, 24, 12);
        let mvdr = Mvdr::fast();
        let serial = mvdr.beamform_iq_with_threads(&rf, &array, &grid, 1540.0, 1).unwrap();
        for threads in [2, 3, 5, 16] {
            let parallel = mvdr.beamform_iq_with_threads(&rf, &array, &grid, 1540.0, threads).unwrap();
            assert_eq!(serial, parallel, "threads {threads}");
        }
    }

    #[test]
    fn silent_input_produces_zero_image() {
        let array = LinearArray::small_test_array();
        let silent = ChannelData::zeros(512, array.num_elements(), array.sampling_frequency());
        let grid = ImagingGrid::for_array(&array, 0.01, 0.005, 8, 8);
        let image = Mvdr::fast().beamform_iq(&silent, &array, &grid, 1540.0).unwrap();
        assert_eq!(image.peak(), 0.0);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let array = LinearArray::small_test_array();
        let data = ChannelData::zeros(128, array.num_elements(), array.sampling_frequency());
        let grid = ImagingGrid::for_array(&array, 0.01, 0.005, 4, 4);
        assert!(Mvdr { diagonal_loading: -0.1, ..Mvdr::default() }
            .beamform_iq(&data, &array, &grid, 1540.0)
            .is_err());
        assert!(Mvdr::default().beamform_iq(&data, &array, &grid, 0.0).is_err());
        let wrong = ChannelData::zeros(128, 8, array.sampling_frequency());
        assert!(Mvdr::default().beamform_iq(&wrong, &array, &grid, 1540.0).is_err());
    }

    #[test]
    fn mvdr_resolves_two_close_targets() {
        // Two point targets 4 mm apart at the same depth: the MVDR image should show a
        // clear dip between them (both remain detectable as separate maxima).
        let array = LinearArray::small_test_array();
        let phantom = Phantom::builder(0.014, 0.03)
            .add_point_target(-0.002, 0.02, 1.0)
            .add_point_target(0.002, 0.02, 1.0)
            .build();
        let rf = simulate(&phantom, &array, 0.03);
        let grid = ImagingGrid::for_array(&array, 0.0194, 0.0012, 7, 40);
        let mvdr_img = Mvdr::fast().beamform_iq(&rf, &array, &grid, 1540.0).unwrap();
        let row = grid.nearest_row(0.02);
        let left = mvdr_img.value(row, grid.nearest_col(-0.002)).abs();
        let right = mvdr_img.value(row, grid.nearest_col(0.002)).abs();
        let middle = mvdr_img.value(row, grid.nearest_col(0.0)).abs();
        assert!(left > middle && right > middle, "left {left} middle {middle} right {right}");
        let bmode = BModeImage::from_iq(&mvdr_img, 60.0).unwrap();
        assert_eq!(bmode.num_rows(), 7);
    }
}
