//! Precomputed beamforming plans: per-pixel×channel delay / apodization tables
//! and the gather kernels that consume them.
//!
//! The direct DAS / ToF / MVDR hot loops recompute the same `sqrt`-heavy
//! round-trip geometry for *every frame* of a stream, even though probe, grid,
//! transmit and sound speed are fixed per stream. A [`BeamformPlan`] hoists
//! that work out of the frame loop: one precomputation per
//! `(array, grid, transmit, sound_speed, apodization, interpolation, frame
//! format)` stores, in flat cache-friendly arrays, each pixel×channel's
//! integer base sample index, fractional interpolation weight(s) and
//! apodization weight — with zero-weight channels compacted out — so every
//! subsequent frame reduces the inner loop to two fused multiply-adds over
//! precomputed tables.
//!
//! # Bitwise identity
//!
//! The planned kernels are **bitwise identical** to the direct paths
//! ([`DelayAndSum::beamform_rf_with_threads`],
//! [`crate::tof::tof_correct_with_threads`],
//! [`Mvdr::beamform_iq_with_threads`]): the builder evaluates exactly the same
//! f32 expressions for delays and interpolation weights the direct loops
//! evaluate per frame, and the gathers reproduce the interpolators'
//! arithmetic operation-for-operation (see `two_taps` and the Catmull-Rom
//! kernel shared with [`usdsp::interp`]). The equivalence tests in
//! `tests/plan_equivalence.rs` assert equality at the bit level across thread
//! counts, interpolation methods and apodization modes.
//!
//! # Memory footprint
//!
//! A plan stores per retained pixel×channel entry: two `u32` tap indices and
//! two `f32` weights (Nearest/Linear), plus one `f32` apodization weight for
//! DAS plans, plus one `u32` channel id for compacted Cubic plans; and one
//! `u32` offset per pixel. For the paper's 368 × 128 grid with 128 channels
//! and full-aperture (boxcar) linear DAS that is
//! `368·128·128 · (2·4 + 2·4 + 4) B ≈ 121 MB` — see
//! [`BeamformPlan::memory_bytes`]. Dynamic-aperture apodizations shrink this
//! roughly by the mean fraction of active channels.
//!
//! # Lifecycle
//!
//! Build once per stream (construction parallelises over grid rows via
//! [`runtime::par_collect`]), then reuse for every frame whose
//! [`FrameFormat`] matches. [`PlannedDas`] and [`PlannedMvdr`] wrap the
//! classical beamformers with an internal capacity-bounded LRU [`PlanCache`]
//! keyed on `(probe, grid, sound speed, frame format)` and implement
//! [`crate::pipeline::Beamformer`], so the `serve` crate's engines amortise
//! the plan across a whole stream, keep several interleaved stream shapes
//! warm at once (the `serve::router` serves N shapes with zero rebuilds
//! after warm-up for N ≤ capacity) and transparently rebuild only on a cold
//! shape. [`PlanCacheStats`] exposes hit/miss/eviction counters.

use crate::das::DelayAndSum;
use crate::grid::ImagingGrid;
use crate::iq::{rf_to_iq_with_threads, IqImage};
use crate::mvdr::Mvdr;
use crate::tof::TofCube;
use crate::{BeamformError, BeamformResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use ultrasound::{ChannelData, LinearArray, PlaneWave};
use usdsp::interp::{catmull_rom, InterpMethod};
use usdsp::Complex32;

/// The per-stream frame layout a [`BeamformPlan`] is specialised to.
///
/// Sample indices depend on the sampling frequency and acquisition start time,
/// and tap compaction depends on the trace length, so a plan is only valid for
/// frames that match this format exactly (checked on every planned call).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameFormat {
    /// Samples per receive channel.
    pub num_samples: usize,
    /// Sampling frequency in Hz.
    pub sampling_frequency: f32,
    /// Time of the first sample relative to transmit, in seconds.
    pub start_time: f32,
}

impl FrameFormat {
    /// The format of one acquisition.
    pub fn of(data: &ChannelData) -> Self {
        Self {
            num_samples: data.num_samples(),
            sampling_frequency: data.sampling_frequency(),
            start_time: data.start_time(),
        }
    }
}

/// What a plan was built for (used to validate planned calls).
#[derive(Debug, Clone, PartialEq)]
enum PlanKind {
    /// DAS plan: compacted entries carrying apodization weights; the full
    /// source configuration is kept for validation.
    Das(DelayAndSum),
    /// Dense per-channel sampling plan (ToF correction / MVDR alignment):
    /// every pixel has exactly `channels` entries in channel order, no
    /// apodization.
    Dense {
        /// Plane-wave transmit the delays were computed for.
        transmit: PlaneWave,
    },
}

/// A precomputed delay/interpolation/apodization table for one
/// `(array, grid, transmit, sound_speed, apodization, interpolation, frame
/// format)` tuple, plus the gather kernels that replay it per frame.
///
/// Tap indices are absolute offsets into a channel-major flat trace buffer
/// (`flat[ch * num_samples + k]`), so the gather inner loop is pure
/// load-multiply-accumulate with no per-sample geometry, branching or index
/// arithmetic.
///
/// ```
/// use beamforming::das::DelayAndSum;
/// use beamforming::grid::ImagingGrid;
/// use beamforming::plan::{BeamformPlan, FrameFormat};
/// use ultrasound::{ChannelData, LinearArray};
///
/// let array = LinearArray::small_test_array();
/// let grid = ImagingGrid::for_array(&array, 0.01, 0.005, 8, 8);
/// let data = ChannelData::zeros(256, array.num_elements(), array.sampling_frequency());
/// let das = DelayAndSum::default();
/// let plan = BeamformPlan::for_das(&das, &array, &grid, 1540.0, FrameFormat::of(&data))?;
/// let planned = plan.beamform_rf(&data)?;
/// let direct = das.beamform_rf(&data, &array, &grid, 1540.0)?;
/// assert_eq!(planned, direct);
/// # Ok::<(), beamforming::BeamformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BeamformPlan {
    grid: ImagingGrid,
    channels: usize,
    method: InterpMethod,
    frame: FrameFormat,
    sound_speed: f32,
    kind: PlanKind,
    /// Per-pixel entry ranges: pixel `p` owns entries `offsets[p]..offsets[p+1]`.
    offsets: Vec<u32>,
    /// First tap, absolute into the channel-major flat buffer. For Cubic this
    /// is the interpolation base index `i1` (`u32::MAX` marks an out-of-window
    /// sample that must gather exactly `0.0`).
    tap0: Vec<u32>,
    /// Second tap (Nearest/Linear only; empty for Cubic).
    tap1: Vec<u32>,
    /// First tap weight; for Cubic the fractional position `t`.
    w0: Vec<f32>,
    /// Second tap weight (Nearest/Linear only; empty for Cubic).
    w1: Vec<f32>,
    /// Entry channel ids — only needed (and only populated) for compacted
    /// Cubic plans, whose bounds checks need the channel segment; dense plans
    /// infer the channel from the entry position.
    channel: Vec<u32>,
    /// Per-entry apodization weight (DAS plans only; empty for dense plans).
    apod: Vec<f32>,
}

/// Per-row builder output, concatenated (in row order) into the final plan.
#[derive(Default)]
struct RowEntries {
    counts: Vec<u32>,
    tap0: Vec<u32>,
    tap1: Vec<u32>,
    w0: Vec<f32>,
    w1: Vec<f32>,
    channel: Vec<u32>,
    apod: Vec<f32>,
}

/// Two-tap gather coefficients reproducing `usdsp::interp::sample_at` for
/// Nearest/Linear at fractional index `idx` over an `n`-sample trace:
/// `flat[tap0]*w0 + flat[tap1]*w1` is bitwise identical to the direct call.
///
/// Out-of-window samples use weights `(0.0, -0.0)`, which sum to exactly
/// `+0.0` for every finite sample value — matching the direct path's literal
/// `0.0` contribution.
fn two_taps(idx: f32, n: usize, method: InterpMethod) -> (usize, usize, f32, f32) {
    if !idx.is_finite() || idx < 0.0 || idx > (n - 1) as f32 {
        return (0, 0, 0.0, -0.0);
    }
    match method {
        InterpMethod::Nearest => {
            let i = (idx.round() as usize).min(n - 1);
            (i, i, 1.0, 0.0)
        }
        InterpMethod::Linear => {
            let i0 = idx.floor() as usize;
            let frac = idx - i0 as f32;
            if i0 + 1 >= n {
                (n - 1, n - 1, 1.0, 0.0)
            } else {
                (i0, i0 + 1, 1.0 - frac, frac)
            }
        }
        InterpMethod::Cubic => unreachable!("cubic uses the base+t representation"),
    }
}

impl BeamformPlan {
    /// Builds a DAS plan using the workspace-default worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::InvalidParameter`] for an invalid apodization
    /// or non-positive sound speed (the same validation as
    /// [`DelayAndSum::beamform_rf`]).
    pub fn for_das(
        das: &DelayAndSum,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: FrameFormat,
    ) -> BeamformResult<Self> {
        Self::for_das_with_threads(das, array, grid, sound_speed, frame, runtime::default_threads())
    }

    /// [`BeamformPlan::for_das`] with an explicit worker-thread count for the
    /// (row-parallel) construction. The resulting plan is identical for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same as [`BeamformPlan::for_das`].
    pub fn for_das_with_threads(
        das: &DelayAndSum,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: FrameFormat,
        num_threads: usize,
    ) -> BeamformResult<Self> {
        das.apodization.validate()?;
        Self::build(
            array,
            grid,
            das.transmit,
            sound_speed,
            frame,
            das.interpolation,
            Some(das),
            num_threads,
        )
    }

    /// Builds a dense ToF-correction plan (linear interpolation, one entry per
    /// pixel×channel) using the workspace-default worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::InvalidParameter`] for a non-positive sound
    /// speed.
    pub fn for_tof(
        array: &LinearArray,
        grid: &ImagingGrid,
        tx: PlaneWave,
        sound_speed: f32,
        frame: FrameFormat,
    ) -> BeamformResult<Self> {
        Self::for_tof_with_threads(array, grid, tx, sound_speed, frame, runtime::default_threads())
    }

    /// [`BeamformPlan::for_tof`] with an explicit worker-thread count.
    ///
    /// # Errors
    ///
    /// Same as [`BeamformPlan::for_tof`].
    pub fn for_tof_with_threads(
        array: &LinearArray,
        grid: &ImagingGrid,
        tx: PlaneWave,
        sound_speed: f32,
        frame: FrameFormat,
        num_threads: usize,
    ) -> BeamformResult<Self> {
        Self::build(array, grid, tx, sound_speed, frame, InterpMethod::Linear, None, num_threads)
    }

    /// Builds a dense channel-alignment plan for an MVDR configuration
    /// (its transmit + interpolation method) using the workspace-default
    /// worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::InvalidParameter`] for a non-positive sound
    /// speed.
    pub fn for_mvdr(
        mvdr: &Mvdr,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: FrameFormat,
    ) -> BeamformResult<Self> {
        Self::for_mvdr_with_threads(mvdr, array, grid, sound_speed, frame, runtime::default_threads())
    }

    /// [`BeamformPlan::for_mvdr`] with an explicit worker-thread count.
    ///
    /// # Errors
    ///
    /// Same as [`BeamformPlan::for_mvdr`].
    pub fn for_mvdr_with_threads(
        mvdr: &Mvdr,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: FrameFormat,
        num_threads: usize,
    ) -> BeamformResult<Self> {
        Self::build(array, grid, mvdr.transmit, sound_speed, frame, mvdr.interpolation, None, num_threads)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        array: &LinearArray,
        grid: &ImagingGrid,
        tx: PlaneWave,
        sound_speed: f32,
        frame: FrameFormat,
        method: InterpMethod,
        das: Option<&DelayAndSum>,
        num_threads: usize,
    ) -> BeamformResult<Self> {
        if sound_speed <= 0.0 {
            return Err(BeamformError::InvalidParameter { name: "sound_speed", reason: "must be positive".into() });
        }
        let rows = grid.num_rows();
        let cols = grid.num_cols();
        let channels = array.num_elements();
        let element_xs = array.element_positions().to_vec();
        let n = frame.num_samples;
        let fs = frame.sampling_frequency;
        let start_time = frame.start_time;
        // Same hoisting as the direct DAS path: pixel-independent weights are
        // computed once, so their values (and the zero-compaction they imply)
        // match the direct loop's exactly.
        let fixed_weights = das.and_then(|d| {
            if d.apodization.is_pixel_independent() {
                Some(d.apodization.weights(array, 0.0, 0.0))
            } else {
                None
            }
        });
        let cubic = method == InterpMethod::Cubic;
        let compacted = das.is_some();

        let row_entries: Vec<RowEntries> = runtime::par_collect(rows, num_threads, |row| {
            let mut out = RowEntries { counts: Vec::with_capacity(cols), ..RowEntries::default() };
            let mut scratch: Vec<f32> = Vec::with_capacity(channels);
            let z = grid.z(row);
            for col in 0..cols {
                let x = grid.x(col);
                let weights: Option<&[f32]> = match (das, &fixed_weights) {
                    (None, _) => None,
                    (Some(_), Some(fixed)) => Some(fixed.as_slice()),
                    (Some(d), None) => {
                        d.apodization.weights_into(array, x, z, &mut scratch);
                        Some(scratch.as_slice())
                    }
                };
                let t_tx = tx.transmit_delay(x, z, sound_speed);
                let mut count = 0u32;
                for ch in 0..channels {
                    let w = match weights {
                        Some(w) => {
                            if w[ch] == 0.0 {
                                // Mirrors the direct loop's `continue`: the
                                // channel contributes nothing, compact it out.
                                continue;
                            }
                            w[ch]
                        }
                        None => 1.0,
                    };
                    if n == 0 {
                        // Degenerate zero-sample frames have nothing to tap;
                        // the gathers special-case the empty plan instead.
                        continue;
                    }
                    let dx = x - element_xs[ch];
                    let t_rx = (dx * dx + z * z).sqrt() / sound_speed;
                    let idx = (t_tx + t_rx - start_time) * fs;
                    let base = ch * n;
                    if cubic {
                        if !idx.is_finite() || idx < 0.0 || idx > (n - 1) as f32 {
                            out.tap0.push(u32::MAX);
                            out.w0.push(0.0);
                        } else {
                            let i1 = idx.floor() as usize;
                            out.tap0.push((base + i1) as u32);
                            out.w0.push(idx - i1 as f32);
                        }
                        if compacted {
                            out.channel.push(ch as u32);
                        }
                    } else {
                        let (t0, t1, w0, w1) = two_taps(idx, n, method);
                        out.tap0.push((base + t0) as u32);
                        out.tap1.push((base + t1) as u32);
                        out.w0.push(w0);
                        out.w1.push(w1);
                    }
                    if compacted {
                        out.apod.push(w);
                    }
                    count += 1;
                }
                out.counts.push(count);
            }
            out
        });

        let total: usize = row_entries.iter().map(|r| r.tap0.len()).sum();
        if total >= u32::MAX as usize {
            return Err(BeamformError::InvalidParameter {
                name: "grid",
                reason: format!("plan would hold {total} entries, overflowing its u32 offset tables"),
            });
        }
        let mut plan = Self {
            grid: grid.clone(),
            channels,
            method,
            frame,
            sound_speed,
            kind: match das {
                Some(d) => PlanKind::Das(d.clone()),
                None => PlanKind::Dense { transmit: tx },
            },
            offsets: Vec::with_capacity(rows * cols + 1),
            tap0: Vec::with_capacity(total),
            tap1: Vec::with_capacity(if cubic { 0 } else { total }),
            w0: Vec::with_capacity(total),
            w1: Vec::with_capacity(if cubic { 0 } else { total }),
            channel: Vec::with_capacity(if cubic && compacted { total } else { 0 }),
            apod: Vec::with_capacity(if compacted { total } else { 0 }),
        };
        plan.offsets.push(0);
        let mut running = 0u32;
        for row in row_entries {
            for count in row.counts {
                running += count;
                plan.offsets.push(running);
            }
            plan.tap0.extend_from_slice(&row.tap0);
            plan.tap1.extend_from_slice(&row.tap1);
            plan.w0.extend_from_slice(&row.w0);
            plan.w1.extend_from_slice(&row.w1);
            plan.channel.extend_from_slice(&row.channel);
            plan.apod.extend_from_slice(&row.apod);
        }
        debug_assert_eq!(plan.offsets.len(), rows * cols + 1);
        debug_assert_eq!(running as usize, total);
        Ok(plan)
    }

    /// The imaging grid the plan reconstructs onto.
    pub fn grid(&self) -> &ImagingGrid {
        &self.grid
    }

    /// Number of receive channels the plan expects.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Interpolation method baked into the tap weights.
    pub fn method(&self) -> InterpMethod {
        self.method
    }

    /// The frame format the plan is specialised to.
    pub fn frame(&self) -> FrameFormat {
        self.frame
    }

    /// Sound speed (m/s) the delays were computed with.
    pub fn sound_speed(&self) -> f32 {
        self.sound_speed
    }

    /// The DAS configuration a [`BeamformPlan::for_das`] plan was built from
    /// (`None` for dense ToF/MVDR plans).
    pub fn das_config(&self) -> Option<&DelayAndSum> {
        match &self.kind {
            PlanKind::Das(das) => Some(das),
            PlanKind::Dense { .. } => None,
        }
    }

    /// The plane-wave transmit the delays were computed for.
    pub fn transmit(&self) -> PlaneWave {
        match &self.kind {
            PlanKind::Das(das) => das.transmit,
            PlanKind::Dense { transmit } => *transmit,
        }
    }

    /// Whether the plan is dense (exactly one entry per pixel×channel, in
    /// channel order — the ToF/MVDR layout) rather than apodization-compacted.
    pub fn is_dense(&self) -> bool {
        matches!(self.kind, PlanKind::Dense { .. })
    }

    /// Total number of retained pixel×channel entries.
    pub fn num_entries(&self) -> usize {
        self.tap0.len()
    }

    /// Approximate heap footprint of the tables in bytes
    /// (`entries · (taps + weights [+ apod] [+ channel]) + offsets`).
    pub fn memory_bytes(&self) -> usize {
        4 * (self.offsets.len() + self.tap0.len() + self.tap1.len() + self.channel.len())
            + 4 * (self.w0.len() + self.w1.len() + self.apod.len())
    }

    /// Validates that one acquisition matches the planned frame format.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::ShapeMismatch`] when the channel count or
    /// frame format differ from what the plan was built for.
    pub fn check_frame(&self, data: &ChannelData) -> BeamformResult<()> {
        if data.num_channels() != self.channels {
            return Err(BeamformError::ShapeMismatch {
                expected: format!("{} channels", self.channels),
                actual: format!("{}", data.num_channels()),
            });
        }
        let format = FrameFormat::of(data);
        if format != self.frame {
            return Err(BeamformError::ShapeMismatch {
                expected: format!(
                    "frame format {} samples @ {} Hz, t0 {}",
                    self.frame.num_samples, self.frame.sampling_frequency, self.frame.start_time
                ),
                actual: format!(
                    "{} samples @ {} Hz, t0 {}",
                    format.num_samples, format.sampling_frequency, format.start_time
                ),
            });
        }
        Ok(())
    }

    /// Beamforms one RF image through the plan using the workspace-default
    /// worker threads. Bitwise identical to
    /// [`DelayAndSum::beamform_rf`] with the plan's source configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::InvalidParameter`] when the plan is not a DAS
    /// plan and [`BeamformError::ShapeMismatch`] when the frame does not match
    /// the planned format.
    pub fn beamform_rf(&self, data: &ChannelData) -> BeamformResult<Vec<f32>> {
        self.beamform_rf_with_threads(data, runtime::default_threads())
    }

    /// [`BeamformPlan::beamform_rf`] with an explicit worker-thread count.
    ///
    /// # Errors
    ///
    /// Same as [`BeamformPlan::beamform_rf`].
    pub fn beamform_rf_with_threads(&self, data: &ChannelData, num_threads: usize) -> BeamformResult<Vec<f32>> {
        if self.das_config().is_none() {
            return Err(BeamformError::InvalidParameter {
                name: "plan",
                reason: "plan was not built for DAS (use BeamformPlan::for_das)".into(),
            });
        }
        self.check_frame(data)?;
        let cols = self.grid.num_cols();
        let flat = flatten_traces(data);
        let n = self.frame.num_samples;
        let mut rf = vec![0.0f32; self.grid.num_pixels()];
        runtime::par_map_rows(&mut rf, cols, num_threads, |first_row, block| {
            let first_pixel = first_row * cols;
            // Cubic contributions land here before the lane-order reduce;
            // sized once per block for the widest possible tap run so the
            // per-pixel hot path never grows a Vec.
            let mut contrib: Vec<f32> = Vec::with_capacity(self.channels);
            for (i, out) in block.iter_mut().enumerate() {
                let pixel = first_pixel + i;
                let lo = self.offsets[pixel] as usize;
                let hi = self.offsets[pixel + 1] as usize;
                debug_assert!(
                    lo <= hi && hi <= self.tap0.len() && hi - lo <= self.channels,
                    "tap run {lo}..{hi} escapes the CSR row bounds"
                );
                *out = match self.method {
                    InterpMethod::Nearest | InterpMethod::Linear => runtime::simd::das_gather_reduce(
                        &flat,
                        &self.tap0[lo..hi],
                        &self.tap1[lo..hi],
                        &self.w0[lo..hi],
                        &self.w1[lo..hi],
                        &self.apod[lo..hi],
                    ),
                    InterpMethod::Cubic => {
                        contrib.clear();
                        contrib.extend((lo..hi).map(|e| self.apod[e] * self.cubic_real(&flat, e, n)));
                        runtime::simd::reduce_lanes(&contrib)
                    }
                };
            }
        });
        Ok(rf)
    }

    /// Beamforms one IQ image through the plan (planned RF gather followed by
    /// the per-column analytic signal) using the workspace-default worker
    /// threads. Bitwise identical to [`DelayAndSum::beamform_iq`].
    ///
    /// # Errors
    ///
    /// Same as [`BeamformPlan::beamform_rf`].
    pub fn beamform_iq(&self, data: &ChannelData) -> BeamformResult<IqImage> {
        self.beamform_iq_with_threads(data, runtime::default_threads())
    }

    /// [`BeamformPlan::beamform_iq`] with an explicit worker-thread count.
    ///
    /// # Errors
    ///
    /// Same as [`BeamformPlan::beamform_rf`].
    pub fn beamform_iq_with_threads(&self, data: &ChannelData, num_threads: usize) -> BeamformResult<IqImage> {
        let rf = self.beamform_rf_with_threads(data, num_threads)?;
        rf_to_iq_with_threads(&rf, &self.grid, num_threads)
    }

    /// Computes the ToF-corrected cube through a dense plan using the
    /// workspace-default worker threads. Bitwise identical to
    /// [`crate::tof::tof_correct`] for a plan built with
    /// [`BeamformPlan::for_tof`].
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::InvalidParameter`] when the plan is not dense
    /// and [`BeamformError::ShapeMismatch`] on a frame-format mismatch.
    pub fn tof_correct(&self, data: &ChannelData) -> BeamformResult<TofCube> {
        self.tof_correct_with_threads(data, runtime::default_threads())
    }

    /// [`BeamformPlan::tof_correct`] with an explicit worker-thread count.
    ///
    /// # Errors
    ///
    /// Same as [`BeamformPlan::tof_correct`].
    pub fn tof_correct_with_threads(&self, data: &ChannelData, num_threads: usize) -> BeamformResult<TofCube> {
        if !self.is_dense() {
            return Err(BeamformError::InvalidParameter {
                name: "plan",
                reason: "ToF correction needs a dense plan (use BeamformPlan::for_tof)".into(),
            });
        }
        self.check_frame(data)?;
        let rows = self.grid.num_rows();
        let cols = self.grid.num_cols();
        let channels = self.channels;
        let n = self.frame.num_samples;
        let flat = flatten_traces(data);
        let mut cube = TofCube::zeros(rows, cols, channels);
        if self.tap0.is_empty() {
            // Zero-sample frames: every tap is out of window, the cube stays 0.
            return Ok(cube);
        }
        let row_stride = cols * channels;
        runtime::par_map_rows(cube.as_mut_slice(), row_stride, num_threads, |first_row, block| {
            for (local, row_data) in block.chunks_mut(row_stride).enumerate() {
                let row = first_row + local;
                for col in 0..cols {
                    let lo = self.offsets[row * cols + col] as usize;
                    let hi = lo + channels;
                    debug_assert!(hi <= self.tap0.len(), "tap run {lo}..{hi} escapes the CSR row bounds");
                    let pixel = &mut row_data[col * channels..(col + 1) * channels];
                    match self.method {
                        InterpMethod::Nearest | InterpMethod::Linear => runtime::simd::gather_two_tap(
                            &flat,
                            &self.tap0[lo..hi],
                            &self.tap1[lo..hi],
                            &self.w0[lo..hi],
                            &self.w1[lo..hi],
                            pixel,
                        ),
                        InterpMethod::Cubic => {
                            for (j, out) in pixel.iter_mut().enumerate() {
                                *out = self.cubic_real(&flat, lo + j, n);
                            }
                        }
                    }
                }
            }
        });
        Ok(cube)
    }

    /// Gathers one pixel's aligned complex channel vector from a dense plan
    /// (the MVDR alignment step). `analytic_flat` is the channel-major flat
    /// analytic-signal buffer (`analytic_flat[ch * num_samples + k]`);
    /// `aligned` must hold exactly [`BeamformPlan::channels`] slots.
    ///
    /// Bitwise identical to sampling each channel with
    /// `usdsp::interp::sample_at_complex` at the pixel's round-trip delay.
    ///
    /// # Panics
    ///
    /// Panics when the plan is not dense, `aligned` has the wrong length or
    /// `pixel` is out of range.
    pub fn align_pixel_into(&self, pixel: usize, analytic_flat: &[Complex32], aligned: &mut [Complex32]) {
        assert!(self.is_dense(), "align_pixel_into needs a dense plan");
        assert_eq!(aligned.len(), self.channels, "aligned buffer must have one slot per channel");
        let lo = self.offsets[pixel] as usize;
        let hi = self.offsets[pixel + 1] as usize;
        if hi == lo {
            // Zero-sample frames: every channel samples outside the window.
            aligned.fill(Complex32::ZERO);
            return;
        }
        let n = self.frame.num_samples;
        debug_assert!(hi <= self.tap0.len(), "tap run {lo}..{hi} escapes the CSR row bounds");
        match self.method {
            InterpMethod::Nearest | InterpMethod::Linear => {
                // Component-wise complex two-tap blend as interleaved float
                // lanes: out.re/out.im each get flat*w0 + flat*w1, exactly the
                // `scale`+`add` expression the scalar path evaluates.
                runtime::simd::gather_two_tap_interleaved(
                    usdsp::complex::as_float_slice(analytic_flat),
                    &self.tap0[lo..hi],
                    &self.tap1[lo..hi],
                    &self.w0[lo..hi],
                    &self.w1[lo..hi],
                    usdsp::complex::as_float_slice_mut(aligned),
                );
            }
            InterpMethod::Cubic => {
                for (j, out) in aligned.iter_mut().enumerate() {
                    let e = lo + j;
                    let base = self.tap0[e];
                    if base == u32::MAX {
                        *out = Complex32::ZERO;
                        continue;
                    }
                    let t = self.w0[e];
                    let seg_lo = (self.entry_channel(e) * n) as isize;
                    let seg_hi = seg_lo + n as isize;
                    let get = |i: isize| -> Complex32 {
                        if i < seg_lo || i >= seg_hi {
                            Complex32::ZERO
                        } else {
                            analytic_flat[i as usize]
                        }
                    };
                    let i1 = base as isize;
                    let (p0, p1, p2, p3) = (get(i1 - 1), get(i1), get(i1 + 1), get(i1 + 2));
                    *out = Complex32::new(
                        catmull_rom(p0.re, p1.re, p2.re, p3.re, t),
                        catmull_rom(p0.im, p1.im, p2.im, p3.im, t),
                    );
                }
            }
        }
    }

    /// Channel of entry `e` (explicit for compacted cubic plans, positional
    /// for dense plans).
    #[inline]
    fn entry_channel(&self, e: usize) -> usize {
        if self.channel.is_empty() {
            e % self.channels
        } else {
            self.channel[e] as usize
        }
    }

    /// Cubic gather for one real entry, reproducing `sample_at`'s Catmull-Rom
    /// path (zero-padded outside the entry's channel segment).
    #[inline]
    fn cubic_real(&self, flat: &[f32], e: usize, n: usize) -> f32 {
        let base = self.tap0[e];
        if base == u32::MAX {
            return 0.0;
        }
        let t = self.w0[e];
        let seg_lo = (self.entry_channel(e) * n) as isize;
        let seg_hi = seg_lo + n as isize;
        let get = |i: isize| -> f32 {
            if i < seg_lo || i >= seg_hi {
                0.0
            } else {
                flat[i as usize]
            }
        };
        let i1 = base as isize;
        catmull_rom(get(i1 - 1), get(i1), get(i1 + 1), get(i1 + 2), t)
    }
}

/// Transposes one acquisition into the channel-major flat layout the gather
/// kernels index (`flat[ch * num_samples + k]`).
pub(crate) fn flatten_traces(data: &ChannelData) -> Vec<f32> {
    let n = data.num_samples();
    let channels = data.num_channels();
    let samples = data.as_slice();
    let mut flat = vec![0.0f32; channels * n];
    for k in 0..n {
        let interleaved = &samples[k * channels..(k + 1) * channels];
        for (ch, &v) in interleaved.iter().enumerate() {
            flat[ch * n + k] = v;
        }
    }
    flat
}

/// One cached plan plus the key it was built for.
struct CachedPlan {
    array: LinearArray,
    grid: ImagingGrid,
    sound_speed: f32,
    frame: FrameFormat,
    plan: Arc<BeamformPlan>,
}

impl CachedPlan {
    fn matches(&self, array: &LinearArray, grid: &ImagingGrid, sound_speed: f32, frame: &FrameFormat) -> bool {
        self.sound_speed == sound_speed && self.frame == *frame && &self.grid == grid && &self.array == array
    }
}

/// Counters describing what a [`PlanCache`] has done so far.
///
/// `misses` equals the number of plans built; `hits + misses` equals the
/// number of lookups; `evictions` counts plans dropped to make room once the
/// cache reached its capacity. A warm steady-state stream shows only `hits`
/// growing — a router serving N stream shapes through a cache of capacity
/// ≥ N never rebuilds a plan after warm-up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from a cached plan.
    pub hits: u64,
    /// Lookups that had to build a plan (cold key).
    pub misses: u64,
    /// Plans evicted because the cache was at capacity.
    pub evictions: u64,
    /// Plans currently held.
    pub entries: usize,
    /// Maximum number of plans held at once.
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Merges another cache's counters into this one (capacity and entries
    /// are summed, so the aggregate still bounds total plan memory).
    pub fn merge(&mut self, other: &PlanCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.entries += other.entries;
        self.capacity += other.capacity;
    }
}

/// Capacity-bounded LRU cache of [`BeamformPlan`]s keyed on
/// `(probe, grid, sound speed, frame format)`.
///
/// The planned beamformer wrappers ([`PlannedDas`], [`PlannedMvdr`]) and the
/// learned-beamformer adapters each own one, so a serving router that
/// multiplexes N stream shapes over one beamformer instance keeps all N plans
/// warm instead of thrashing a single slot on every shape change. Memory is
/// bounded by `capacity × max plan size` (see [`BeamformPlan::memory_bytes`]);
/// the least-recently-used plan is evicted when a build would exceed the
/// capacity.
///
/// Lookups are serialized on an internal mutex; the expensive plan *build*
/// also happens under it, so concurrent first-frames of the same stream build
/// the plan once instead of racing.
pub struct PlanCache {
    slots: Mutex<Vec<CachedPlan>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

impl PlanCache {
    /// Default number of slots for the planned beamformer wrappers: enough
    /// for a few interleaved stream shapes without letting paper-scale plans
    /// (≈ 100 MB each) pile up unbounded.
    pub const DEFAULT_CAPACITY: usize = 4;

    /// Creates an empty cache holding at most `capacity` plans (clamped to
    /// ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of plans held at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the cached plan for the key, or builds (and caches) it with
    /// `build`, evicting the least-recently-used plan when at capacity.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; a failed build caches nothing.
    pub fn get_or_build(
        &self,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: &FrameFormat,
        build: impl FnOnce() -> BeamformResult<BeamformPlan>,
    ) -> BeamformResult<Arc<BeamformPlan>> {
        let mut slots = self.slots.lock().expect("plan cache poisoned");
        if let Some(pos) = slots.iter().position(|c| c.matches(array, grid, sound_speed, frame)) {
            // Move-to-front keeps the vector in recency order (front = MRU).
            let cached = slots.remove(pos);
            let plan = Arc::clone(&cached.plan);
            slots.insert(0, cached);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        let plan = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if slots.len() >= self.capacity {
            slots.truncate(self.capacity - 1);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        slots.insert(
            0,
            CachedPlan {
                array: array.clone(),
                grid: grid.clone(),
                sound_speed,
                frame: *frame,
                plan: Arc::clone(&plan),
            },
        );
        Ok(plan)
    }

    /// Whether a plan for the key is currently cached (does not touch the
    /// recency order or the hit/miss counters).
    pub fn contains(&self, array: &LinearArray, grid: &ImagingGrid, sound_speed: f32, frame: &FrameFormat) -> bool {
        self.slots
            .lock()
            .expect("plan cache poisoned")
            .iter()
            .any(|c| c.matches(array, grid, sound_speed, frame))
    }

    /// Total heap footprint of the currently cached plans in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.lock().expect("plan cache poisoned").iter().map(|c| c.plan.memory_bytes()).sum()
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.slots.lock().expect("plan cache poisoned").len(),
            capacity: self.capacity,
        }
    }

    fn builds(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A [`DelayAndSum`] beamformer that routes every frame through a cached
/// [`BeamformPlan`], rebuilding the plan only when the probe, grid, sound
/// speed or frame format change.
///
/// Implements [`crate::pipeline::Beamformer`], so it is a drop-in for the
/// direct `DelayAndSum` in batch and serving pipelines — with identical
/// (bitwise) outputs and the per-frame delay math amortised away. Streams
/// should warm the cache once via
/// [`prepare`](crate::pipeline::Beamformer::prepare) (the serve crate's
/// `BeamformEngine::warm` does this) so the first frame doesn't pay the build.
pub struct PlannedDas {
    das: DelayAndSum,
    cache: PlanCache,
}

impl PlannedDas {
    /// Wraps a DAS configuration with an (initially empty) plan cache of
    /// [`PlanCache::DEFAULT_CAPACITY`] slots.
    pub fn new(das: DelayAndSum) -> Self {
        Self::with_cache_capacity(das, PlanCache::DEFAULT_CAPACITY)
    }

    /// [`PlannedDas::new`] with an explicit plan-cache capacity (clamped to
    /// ≥ 1). Size it to the number of distinct stream shapes the wrapper will
    /// serve concurrently; memory is bounded by `capacity × plan size`.
    pub fn with_cache_capacity(das: DelayAndSum, capacity: usize) -> Self {
        Self { das, cache: PlanCache::new(capacity) }
    }

    /// The wrapped DAS configuration.
    pub fn das(&self) -> &DelayAndSum {
        &self.das
    }

    /// How many plans have been built over this wrapper's lifetime (1 for a
    /// homogeneous stream; +1 per cold probe/grid/sound-speed/frame-format
    /// lookup).
    pub fn plans_built(&self) -> u64 {
        self.cache.builds()
    }

    /// Snapshot of the plan-cache counters (hits / misses / evictions).
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats()
    }

    fn plan_for(
        &self,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: &FrameFormat,
    ) -> BeamformResult<Arc<BeamformPlan>> {
        self.cache.get_or_build(array, grid, sound_speed, frame, || {
            BeamformPlan::for_das(&self.das, array, grid, sound_speed, *frame)
        })
    }
}

impl crate::pipeline::Beamformer for PlannedDas {
    fn name(&self) -> &str {
        "DAS-planned"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let frame = FrameFormat::of(data);
        let plan = self.plan_for(array, grid, sound_speed, &frame)?;
        plan.beamform_iq_with_threads(data, runtime::default_threads())
    }

    fn prepare(&self, array: &LinearArray, grid: &ImagingGrid, sound_speed: f32, frame: &FrameFormat) {
        // Warm-up is best effort: invalid configurations surface their error
        // on the first real `beamform` call instead.
        let _ = self.plan_for(array, grid, sound_speed, frame);
    }

    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        Some(self.cache_stats())
    }
}

/// An [`Mvdr`] beamformer that gathers its aligned channel vectors through a
/// cached dense [`BeamformPlan`] (see [`PlannedDas`] for the caching
/// contract). The per-pixel covariance solve is unchanged; only the
/// per-frame delay/interpolation math is amortised.
pub struct PlannedMvdr {
    mvdr: Mvdr,
    cache: PlanCache,
}

impl PlannedMvdr {
    /// Wraps an MVDR configuration with an (initially empty) plan cache of
    /// [`PlanCache::DEFAULT_CAPACITY`] slots.
    pub fn new(mvdr: Mvdr) -> Self {
        Self::with_cache_capacity(mvdr, PlanCache::DEFAULT_CAPACITY)
    }

    /// [`PlannedMvdr::new`] with an explicit plan-cache capacity (clamped to
    /// ≥ 1); see [`PlannedDas::with_cache_capacity`].
    pub fn with_cache_capacity(mvdr: Mvdr, capacity: usize) -> Self {
        Self { mvdr, cache: PlanCache::new(capacity) }
    }

    /// The wrapped MVDR configuration.
    pub fn mvdr(&self) -> &Mvdr {
        &self.mvdr
    }

    /// How many plans have been built over this wrapper's lifetime.
    pub fn plans_built(&self) -> u64 {
        self.cache.builds()
    }

    /// Snapshot of the plan-cache counters (hits / misses / evictions).
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats()
    }

    fn plan_for(
        &self,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: &FrameFormat,
    ) -> BeamformResult<Arc<BeamformPlan>> {
        self.cache.get_or_build(array, grid, sound_speed, frame, || {
            BeamformPlan::for_mvdr(&self.mvdr, array, grid, sound_speed, *frame)
        })
    }
}

impl crate::pipeline::Beamformer for PlannedMvdr {
    fn name(&self) -> &str {
        "MVDR-planned"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let frame = FrameFormat::of(data);
        let plan = self.plan_for(array, grid, sound_speed, &frame)?;
        self.mvdr.beamform_iq_planned_with_threads(data, &plan, runtime::default_threads())
    }

    fn prepare(&self, array: &LinearArray, grid: &ImagingGrid, sound_speed: f32, frame: &FrameFormat) {
        let _ = self.plan_for(array, grid, sound_speed, frame);
    }

    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        Some(self.cache_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Beamformer;

    #[test]
    fn two_taps_matches_sample_at_semantics() {
        let signal = [1.0f32, -2.0, 3.0, -4.0];
        for method in [InterpMethod::Nearest, InterpMethod::Linear] {
            for idx in [-0.5f32, 0.0, 0.4, 1.5, 2.9, 3.0, 3.5, f32::NAN] {
                let (t0, t1, w0, w1) = two_taps(idx, signal.len(), method);
                let gathered = signal[t0] * w0 + signal[t1] * w1;
                let direct = usdsp::interp::sample_at(&signal, idx, method);
                assert_eq!(gathered.to_bits(), direct.to_bits(), "{method:?} idx {idx}");
            }
        }
    }

    #[test]
    fn plan_construction_is_identical_across_thread_counts() {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.01, 0.008, 13, 7);
        let frame = FrameFormat { num_samples: 300, sampling_frequency: array.sampling_frequency(), start_time: 0.0 };
        let das = DelayAndSum::with_hann_aperture();
        let reference = BeamformPlan::for_das_with_threads(&das, &array, &grid, 1540.0, frame, 1).unwrap();
        for threads in [2, 3, 5, 16] {
            let plan = BeamformPlan::for_das_with_threads(&das, &array, &grid, 1540.0, frame, threads).unwrap();
            assert_eq!(plan, reference, "threads {threads}");
        }
    }

    #[test]
    fn dense_plan_has_one_entry_per_pixel_channel() {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.01, 0.008, 6, 4);
        let frame = FrameFormat { num_samples: 128, sampling_frequency: array.sampling_frequency(), start_time: 0.0 };
        let plan = BeamformPlan::for_tof(&array, &grid, PlaneWave::zero_angle(), 1540.0, frame).unwrap();
        assert!(plan.is_dense());
        assert_eq!(plan.num_entries(), grid.num_pixels() * array.num_elements());
        assert!(plan.memory_bytes() > 0);
        assert_eq!(plan.channels(), array.num_elements());
        assert_eq!(plan.method(), InterpMethod::Linear);
        assert_eq!(plan.frame(), frame);
        assert_eq!(plan.sound_speed(), 1540.0);
        assert!(plan.das_config().is_none());
    }

    #[test]
    fn plan_validates_inputs() {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.01, 0.008, 6, 4);
        let frame = FrameFormat { num_samples: 64, sampling_frequency: array.sampling_frequency(), start_time: 0.0 };
        assert!(matches!(
            BeamformPlan::for_das(&DelayAndSum::default(), &array, &grid, -1.0, frame),
            Err(BeamformError::InvalidParameter { .. })
        ));
        let plan = BeamformPlan::for_das(&DelayAndSum::default(), &array, &grid, 1540.0, frame).unwrap();
        // Wrong channel count.
        let wrong = ChannelData::zeros(64, 8, array.sampling_frequency());
        assert!(matches!(plan.beamform_rf(&wrong), Err(BeamformError::ShapeMismatch { .. })));
        // Wrong sample count.
        let wrong = ChannelData::zeros(65, array.num_elements(), array.sampling_frequency());
        assert!(matches!(plan.beamform_rf(&wrong), Err(BeamformError::ShapeMismatch { .. })));
        // Dense kernels reject DAS plans and vice versa.
        let ok = ChannelData::zeros(64, array.num_elements(), array.sampling_frequency());
        assert!(matches!(plan.tof_correct(&ok), Err(BeamformError::InvalidParameter { .. })));
        let dense = BeamformPlan::for_tof(&array, &grid, PlaneWave::zero_angle(), 1540.0, frame).unwrap();
        assert!(matches!(dense.beamform_rf(&ok), Err(BeamformError::InvalidParameter { .. })));
    }

    #[test]
    fn zero_sample_format_builds_an_empty_plan_and_rejects_real_frames() {
        // `ChannelData` guarantees at least one sample, so a `num_samples: 0`
        // format can only come from a hand-built `FrameFormat`: the plan is
        // empty and every real acquisition fails the frame check.
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.01, 0.008, 4, 4);
        let frame = FrameFormat { num_samples: 0, sampling_frequency: array.sampling_frequency(), start_time: 0.0 };
        let das = DelayAndSum::default();
        let plan = BeamformPlan::for_das(&das, &array, &grid, 1540.0, frame).unwrap();
        assert_eq!(plan.num_entries(), 0);
        let data = ChannelData::zeros(16, array.num_elements(), array.sampling_frequency());
        assert!(matches!(plan.beamform_rf(&data), Err(BeamformError::ShapeMismatch { .. })));
    }

    #[test]
    fn planned_das_caches_and_rebuilds() {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.01, 0.008, 8, 6);
        let planned = PlannedDas::new(DelayAndSum::default());
        assert_eq!(planned.name(), "DAS-planned");
        assert_eq!(planned.plans_built(), 0);
        let a = ChannelData::zeros(128, array.num_elements(), array.sampling_frequency());
        planned.beamform(&a, &array, &grid, 1540.0).unwrap();
        planned.beamform(&a, &array, &grid, 1540.0).unwrap();
        assert_eq!(planned.plans_built(), 1, "same stream must reuse the plan");
        let b = ChannelData::zeros(200, array.num_elements(), array.sampling_frequency());
        planned.beamform(&b, &array, &grid, 1540.0).unwrap();
        assert_eq!(planned.plans_built(), 2, "cold format must build");
        planned.prepare(&array, &grid, 1540.0, &FrameFormat::of(&b));
        assert_eq!(planned.plans_built(), 2, "prepare must hit the warm cache");
        // Both formats now live in the multi-slot cache: returning to the
        // first one is a hit, not a rebuild (the single-slot cache thrashed
        // here before PR 4).
        planned.beamform(&a, &array, &grid, 1540.0).unwrap();
        assert_eq!(planned.plans_built(), 2, "returning to a warm format must not rebuild");
        let stats = planned.cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(Beamformer::plan_cache_stats(&planned), Some(stats));
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.01, 0.008, 4, 4);
        let cache = PlanCache::new(2);
        assert_eq!(cache.capacity(), 2);
        let das = DelayAndSum::default();
        let fs = array.sampling_frequency();
        let format = |n: usize| FrameFormat { num_samples: n, sampling_frequency: fs, start_time: 0.0 };
        let lookup = |frame: &FrameFormat| {
            cache
                .get_or_build(&array, &grid, 1540.0, frame, || {
                    BeamformPlan::for_das(&das, &array, &grid, 1540.0, *frame)
                })
                .unwrap()
        };
        let (a, b, c) = (format(64), format(96), format(128));
        lookup(&a); // build A          -> [A]
        lookup(&b); // build B          -> [B, A]
        lookup(&a); // hit A (refresh)  -> [A, B]
        lookup(&c); // build C, evict B -> [C, A]
        assert!(cache.contains(&array, &grid, 1540.0, &a), "recently used A must survive");
        assert!(cache.contains(&array, &grid, 1540.0, &c));
        assert!(!cache.contains(&array, &grid, 1540.0, &b), "LRU entry B must be evicted");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions, stats.entries), (1, 3, 1, 2));
        // Refresh A (hit), then bring back evicted B: the miss evicts C,
        // which is now the least recently used entry.
        lookup(&a);
        lookup(&b);
        assert!(!cache.contains(&array, &grid, 1540.0, &c));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 4, 2));
        assert!(cache.memory_bytes() > 0);
        let mut merged = PlanCacheStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.misses, 8);
        assert_eq!(merged.capacity, 4);
    }

    #[test]
    fn plan_cache_failed_build_caches_nothing() {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::for_array(&array, 0.01, 0.008, 4, 4);
        let cache = PlanCache::new(1);
        let frame = FrameFormat { num_samples: 64, sampling_frequency: array.sampling_frequency(), start_time: 0.0 };
        let err = cache.get_or_build(&array, &grid, 1540.0, &frame, || {
            Err(BeamformError::InvalidParameter { name: "test", reason: "boom".into() })
        });
        assert!(err.is_err());
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.entries), (0, 0), "a failed build must not occupy a slot");
    }
}
