//! Computational-cost accounting (GOPs per frame) for the classical beamformers.
//!
//! The paper motivates Tiny-VBF by operation counts: MVDR needs ≈ 98.78 GOPs per
//! 368 × 128 frame while Tiny-VBF needs 0.34 GOPs. These helpers provide the classical
//! side of that comparison; the learned models count their own FLOPs in the `neural`
//! and `tiny-vbf` crates.

/// Frame geometry used in the operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameDims {
    /// Number of depth rows.
    pub rows: usize,
    /// Number of lateral columns.
    pub cols: usize,
    /// Number of receive channels.
    pub channels: usize,
}

impl FrameDims {
    /// The paper's evaluation frame: 368 × 128 pixels from 128 channels.
    pub const fn paper() -> Self {
        Self { rows: 368, cols: 128, channels: 128 }
    }

    /// Total pixels in the frame.
    pub const fn pixels(&self) -> usize {
        self.rows * self.cols
    }
}

/// Operations per frame for Delay-and-Sum beamforming.
///
/// Per pixel and channel: delay computation (~6 ops), one interpolation (~4 ops) and a
/// multiply–accumulate (2 ops).
pub fn das_ops(dims: FrameDims) -> f64 {
    let per_channel = 12.0f64;
    dims.pixels() as f64 * dims.channels as f64 * per_channel
}

/// Operations per frame for MVDR with subaperture length `l`.
///
/// Per pixel: building the smoothed covariance costs `(M−L+1)·L²` complex MACs, the
/// Cholesky solve costs `L³/3` and the weight application another `(M−L+1)·L`.
/// A complex MAC is counted as 8 real operations.
pub fn mvdr_ops(dims: FrameDims, subaperture: usize) -> f64 {
    let m = dims.channels as f64;
    let l = subaperture.clamp(1, dims.channels) as f64;
    let subapertures = m - l + 1.0;
    let covariance = subapertures * l * l;
    let solve = l * l * l / 3.0;
    let apply = subapertures * l;
    let complex_mac = 8.0;
    dims.pixels() as f64 * (covariance + solve + apply) * complex_mac
}

/// Convenience: GOPs (10⁹ operations) for DAS.
pub fn das_gops(dims: FrameDims) -> f64 {
    das_ops(dims) / 1e9
}

/// Convenience: GOPs for MVDR with a half-aperture subaperture (the configuration whose
/// cost the paper quotes as ≈ 98.78 GOPs/frame).
pub fn mvdr_gops(dims: FrameDims) -> f64 {
    mvdr_ops(dims, dims.channels / 2) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frame_dimensions() {
        let dims = FrameDims::paper();
        assert_eq!(dims.pixels(), 47_104);
        assert_eq!(dims.channels, 128);
    }

    #[test]
    fn das_is_orders_of_magnitude_cheaper_than_mvdr() {
        let dims = FrameDims::paper();
        assert!(mvdr_gops(dims) > 50.0 * das_gops(dims));
    }

    #[test]
    fn mvdr_gops_is_same_order_as_paper_number() {
        // The paper (citing [5]) reports ~98.78 GOPs/frame for MVDR at 368x128.
        let gops = mvdr_gops(FrameDims::paper());
        assert!(gops > 30.0 && gops < 300.0, "gops {gops}");
    }

    #[test]
    fn costs_scale_with_frame_size() {
        let small = FrameDims { rows: 64, cols: 32, channels: 32 };
        let large = FrameDims::paper();
        assert!(das_ops(large) > das_ops(small));
        assert!(mvdr_ops(large, 64) > mvdr_ops(small, 16));
    }

    #[test]
    fn subaperture_is_clamped() {
        let dims = FrameDims { rows: 10, cols: 10, channels: 16 };
        assert_eq!(mvdr_ops(dims, 1000), mvdr_ops(dims, 16));
        assert!(mvdr_ops(dims, 0) > 0.0);
    }
}
