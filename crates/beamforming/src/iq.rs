//! IQ (analytic) image representation.
//!
//! The Tiny-VBF network predicts the *IQ demodulated beamformed image*: a complex value
//! per pixel whose magnitude is the envelope shown in the B-mode display. Classical
//! beamformers produce a real beamformed RF image first; [`rf_to_iq`] converts it by
//! taking the analytic signal along each image column (the depth/fast-time axis).

use crate::grid::ImagingGrid;
use crate::{BeamformError, BeamformResult};
use usdsp::hilbert::analytic_signal_batch;
use usdsp::Complex32;

/// A complex-valued beamformed image on an [`ImagingGrid`] (row-major storage).
#[derive(Debug, Clone, PartialEq)]
pub struct IqImage {
    data: Vec<Complex32>,
    grid: ImagingGrid,
}

impl IqImage {
    /// Creates a zero image on the given grid.
    pub fn zeros(grid: ImagingGrid) -> Self {
        let n = grid.num_pixels();
        Self { data: vec![Complex32::ZERO; n], grid }
    }

    /// Builds an image from row-major complex data.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::ShapeMismatch`] when the data length does not equal the
    /// number of grid pixels.
    pub fn from_data(data: Vec<Complex32>, grid: ImagingGrid) -> BeamformResult<Self> {
        if data.len() != grid.num_pixels() {
            return Err(BeamformError::ShapeMismatch {
                expected: format!("{} pixels", grid.num_pixels()),
                actual: format!("{} values", data.len()),
            });
        }
        Ok(Self { data, grid })
    }

    /// Number of depth rows.
    pub fn num_rows(&self) -> usize {
        self.grid.num_rows()
    }

    /// Number of lateral columns.
    pub fn num_cols(&self) -> usize {
        self.grid.num_cols()
    }

    /// Total pixel count.
    pub fn num_pixels(&self) -> usize {
        self.data.len()
    }

    /// The imaging grid this image lives on.
    pub fn grid(&self) -> &ImagingGrid {
        &self.grid
    }

    /// Pixel value at `(row, col)`.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Complex32 {
        self.data[row * self.grid.num_cols() + col]
    }

    /// Mutable pixel access.
    #[inline]
    pub fn value_mut(&mut self, row: usize, col: usize) -> &mut Complex32 {
        let cols = self.grid.num_cols();
        &mut self.data[row * cols + col]
    }

    /// Flat row-major view of the complex samples.
    pub fn as_slice(&self) -> &[Complex32] {
        &self.data
    }

    /// Envelope (per-pixel magnitude), row-major.
    pub fn envelope(&self) -> Vec<f32> {
        self.data.iter().map(|c| c.abs()).collect()
    }

    /// Peak envelope value.
    pub fn peak(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, c| m.max(c.abs()))
    }

    /// Interleaved real/imaginary representation `[re0, im0, re1, im1, …]` used as the
    /// network regression target.
    pub fn to_interleaved(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.data.len() * 2);
        for c in &self.data {
            out.push(c.re);
            out.push(c.im);
        }
        out
    }

    /// Rebuilds an image from the interleaved representation produced by
    /// [`to_interleaved`](Self::to_interleaved).
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::ShapeMismatch`] when the length is not
    /// `2 × num_pixels`.
    pub fn from_interleaved(values: &[f32], grid: ImagingGrid) -> BeamformResult<Self> {
        if values.len() != 2 * grid.num_pixels() {
            return Err(BeamformError::ShapeMismatch {
                expected: format!("{} interleaved values", 2 * grid.num_pixels()),
                actual: format!("{}", values.len()),
            });
        }
        let data = values.chunks_exact(2).map(|p| Complex32::new(p[0], p[1])).collect();
        Ok(Self { data, grid })
    }

    /// Mean squared difference between two images' interleaved IQ values (the paper's
    /// training loss domain).
    ///
    /// # Panics
    ///
    /// Panics when the images have different shapes.
    pub fn mse(&self, other: &IqImage) -> f32 {
        assert_eq!(self.data.len(), other.data.len(), "IqImage::mse shape mismatch");
        let n = self.data.len() as f32;
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| {
                let d = *a - *b;
                d.norm_sqr()
            })
            .sum::<f32>()
            / n
    }
}

/// Converts a real beamformed RF image (row-major, `grid`-shaped) into an IQ image by
/// computing the analytic signal along each depth column, using the
/// workspace-default worker threads (see [`runtime::default_threads`]).
///
/// # Errors
///
/// Returns [`BeamformError::ShapeMismatch`] when `rf.len()` differs from the pixel count.
pub fn rf_to_iq(rf: &[f32], grid: &ImagingGrid) -> BeamformResult<IqImage> {
    rf_to_iq_with_threads(rf, grid, runtime::default_threads())
}

/// [`rf_to_iq`] with an explicit worker-thread count.
///
/// The per-column Hilbert transforms run through
/// [`usdsp::hilbert::analytic_signal_batch`], so columns are processed
/// concurrently with one FFT scratch buffer per worker. Each column's analytic
/// signal depends only on that column, so the image is bitwise identical for
/// every `num_threads`.
///
/// # Errors
///
/// Same as [`rf_to_iq`].
pub fn rf_to_iq_with_threads(rf: &[f32], grid: &ImagingGrid, num_threads: usize) -> BeamformResult<IqImage> {
    if rf.len() != grid.num_pixels() {
        return Err(BeamformError::ShapeMismatch {
            expected: format!("{} pixels", grid.num_pixels()),
            actual: format!("{}", rf.len()),
        });
    }
    let rows = grid.num_rows();
    let cols = grid.num_cols();
    let columns: Vec<Vec<f32>> = (0..cols).map(|col| (0..rows).map(|row| rf[row * cols + col]).collect()).collect();
    let analytic = analytic_signal_batch(&columns, num_threads).map_err(|_| BeamformError::InvalidParameter {
        name: "rf",
        reason: "analytic signal failed on empty column".into(),
    })?;
    let mut image = IqImage::zeros(grid.clone());
    for (col, column) in analytic.iter().enumerate() {
        for (row, value) in column.iter().enumerate() {
            *image.value_mut(row, col) = *value;
        }
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrasound::LinearArray;

    fn grid(rows: usize, cols: usize) -> ImagingGrid {
        ImagingGrid::for_array(&LinearArray::small_test_array(), 0.005, 0.02, rows, cols)
    }

    #[test]
    fn construction_and_indexing() {
        let g = grid(4, 3);
        let mut img = IqImage::zeros(g.clone());
        assert_eq!(img.num_pixels(), 12);
        *img.value_mut(2, 1) = Complex32::new(1.0, -1.0);
        assert_eq!(img.value(2, 1), Complex32::new(1.0, -1.0));
        assert_eq!(img.num_rows(), 4);
        assert_eq!(img.num_cols(), 3);
        assert_eq!(img.grid(), &g);
    }

    #[test]
    fn from_data_validates_length() {
        let g = grid(2, 2);
        assert!(IqImage::from_data(vec![Complex32::ZERO; 3], g.clone()).is_err());
        assert!(IqImage::from_data(vec![Complex32::ZERO; 4], g).is_ok());
    }

    #[test]
    fn interleaved_round_trip() {
        let g = grid(2, 2);
        let data = vec![
            Complex32::new(1.0, 2.0),
            Complex32::new(-1.0, 0.5),
            Complex32::new(0.0, 0.0),
            Complex32::new(3.0, -4.0),
        ];
        let img = IqImage::from_data(data, g.clone()).unwrap();
        let inter = img.to_interleaved();
        assert_eq!(inter.len(), 8);
        let back = IqImage::from_interleaved(&inter, g.clone()).unwrap();
        assert_eq!(img, back);
        assert!(IqImage::from_interleaved(&inter[..7], g).is_err());
    }

    #[test]
    fn envelope_and_peak() {
        let g = grid(1, 2);
        let img = IqImage::from_data(vec![Complex32::new(3.0, 4.0), Complex32::ZERO], g).unwrap();
        assert_eq!(img.envelope(), vec![5.0, 0.0]);
        assert_eq!(img.peak(), 5.0);
    }

    #[test]
    fn mse_of_identical_images_is_zero() {
        let g = grid(2, 2);
        let img = IqImage::from_data(vec![Complex32::new(1.0, 1.0); 4], g).unwrap();
        assert_eq!(img.mse(&img), 0.0);
        let other = IqImage::from_data(vec![Complex32::new(2.0, 1.0); 4], img.grid().clone()).unwrap();
        assert!((img.mse(&other) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rf_to_iq_envelope_of_oscillating_column() {
        // An oscillating RF column of constant amplitude should produce a roughly flat
        // envelope in the interior.
        let rows = 128;
        let cols = 2;
        let g = grid(rows, cols);
        let mut rf = vec![0.0f32; rows * cols];
        for row in 0..rows {
            let v = (row as f32 * 0.9).sin();
            rf[row * cols] = v;
            rf[row * cols + 1] = 0.0;
        }
        let iq = rf_to_iq(&rf, &g).unwrap();
        for row in 20..rows - 20 {
            assert!((iq.value(row, 0).abs() - 1.0).abs() < 0.15, "row {row}");
            assert!(iq.value(row, 1).abs() < 1e-6);
        }
    }

    #[test]
    fn rf_to_iq_validates_shape() {
        let g = grid(4, 4);
        assert!(rf_to_iq(&vec![0.0; 15], &g).is_err());
    }
}
