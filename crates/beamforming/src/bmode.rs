//! B-mode image formation: envelope normalization and log compression.

use crate::grid::ImagingGrid;
use crate::iq::IqImage;
use crate::{BeamformError, BeamformResult};
use usdsp::stats::amplitude_to_db;

/// Dynamic range (dB) used for display/log compression throughout the paper's figures.
pub const DEFAULT_DYNAMIC_RANGE_DB: f32 = 60.0;

/// A log-compressed B-mode image.
///
/// Pixels are stored row-major in decibels relative to the image maximum, clipped to
/// `[-dynamic_range, 0]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BModeImage {
    db: Vec<f32>,
    grid: ImagingGrid,
    dynamic_range: f32,
}

impl BModeImage {
    /// Log-compresses an envelope image (row-major linear amplitudes) with the given
    /// dynamic range.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::ShapeMismatch`] when the envelope length does not match
    /// the grid and [`BeamformError::InvalidParameter`] for a non-positive dynamic
    /// range.
    pub fn from_envelope(envelope: &[f32], grid: ImagingGrid, dynamic_range: f32) -> BeamformResult<Self> {
        if envelope.len() != grid.num_pixels() {
            return Err(BeamformError::ShapeMismatch {
                expected: format!("{} pixels", grid.num_pixels()),
                actual: format!("{}", envelope.len()),
            });
        }
        if dynamic_range <= 0.0 {
            return Err(BeamformError::InvalidParameter { name: "dynamic_range", reason: "must be positive".into() });
        }
        let peak = envelope.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-12);
        let db = envelope
            .iter()
            .map(|&v| (amplitude_to_db(v.abs() / peak)).clamp(-dynamic_range, 0.0))
            .collect();
        Ok(Self { db, grid, dynamic_range })
    }

    /// Builds a B-mode image from an IQ image.
    ///
    /// # Errors
    ///
    /// Propagates the validation of [`BModeImage::from_envelope`].
    pub fn from_iq(iq: &IqImage, dynamic_range: f32) -> BeamformResult<Self> {
        Self::from_envelope(&iq.envelope(), iq.grid().clone(), dynamic_range)
    }

    /// Number of depth rows.
    pub fn num_rows(&self) -> usize {
        self.grid.num_rows()
    }

    /// Number of lateral columns.
    pub fn num_cols(&self) -> usize {
        self.grid.num_cols()
    }

    /// The imaging grid.
    pub fn grid(&self) -> &ImagingGrid {
        &self.grid
    }

    /// Dynamic range used for compression, in dB.
    pub fn dynamic_range(&self) -> f32 {
        self.dynamic_range
    }

    /// Pixel value in dB (relative to the image maximum) at `(row, col)`.
    #[inline]
    pub fn db(&self, row: usize, col: usize) -> f32 {
        self.db[row * self.grid.num_cols() + col]
    }

    /// Flat row-major dB values.
    pub fn as_slice(&self) -> &[f32] {
        &self.db
    }

    /// Linear amplitude (0–1 relative to the image maximum) at `(row, col)`.
    pub fn linear(&self, row: usize, col: usize) -> f32 {
        10.0f32.powf(self.db(row, col) / 20.0)
    }

    /// Extracts one depth row as dB values (a lateral profile, e.g. Fig. 9(b)).
    pub fn lateral_profile(&self, row: usize) -> Vec<f32> {
        (0..self.num_cols()).map(|c| self.db(row, c)).collect()
    }

    /// Extracts one lateral column as dB values (an axial profile).
    pub fn axial_profile(&self, col: usize) -> Vec<f32> {
        (0..self.num_rows()).map(|r| self.db(r, col)).collect()
    }

    /// Renders the image as a compact ASCII intensity map (one character per pixel,
    /// darkest `' '` to brightest `'@'`), useful for logging qualitative comparisons in
    /// the benchmark binaries.
    pub fn to_ascii(&self, max_cols: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let step = (self.num_cols() / max_cols.max(1)).max(1);
        let mut out = String::new();
        for row in (0..self.num_rows()).step_by(step) {
            for col in (0..self.num_cols()).step_by(step) {
                let norm = (self.db(row, col) + self.dynamic_range) / self.dynamic_range;
                let idx = ((norm * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrasound::LinearArray;
    use usdsp::Complex32;

    fn grid(rows: usize, cols: usize) -> ImagingGrid {
        ImagingGrid::for_array(&LinearArray::small_test_array(), 0.005, 0.02, rows, cols)
    }

    #[test]
    fn log_compression_maps_peak_to_zero_db() {
        let g = grid(2, 2);
        let img = BModeImage::from_envelope(&[1.0, 0.1, 0.01, 0.0], g, 60.0).unwrap();
        assert_eq!(img.db(0, 0), 0.0);
        assert!((img.db(0, 1) + 20.0).abs() < 1e-4);
        assert!((img.db(1, 0) + 40.0).abs() < 1e-4);
        assert_eq!(img.db(1, 1), -60.0); // clipped at the dynamic range floor
        assert_eq!(img.dynamic_range(), 60.0);
    }

    #[test]
    fn linear_round_trips_db() {
        let g = grid(1, 2);
        let img = BModeImage::from_envelope(&[2.0, 1.0], g, 60.0).unwrap();
        assert!((img.linear(0, 0) - 1.0).abs() < 1e-6);
        assert!((img.linear(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn validation_errors() {
        let g = grid(2, 2);
        assert!(BModeImage::from_envelope(&[1.0; 3], g.clone(), 60.0).is_err());
        assert!(BModeImage::from_envelope(&[1.0; 4], g, 0.0).is_err());
    }

    #[test]
    fn from_iq_uses_magnitude() {
        let g = grid(1, 2);
        let iq = IqImage::from_data(vec![Complex32::new(3.0, 4.0), Complex32::new(0.5, 0.0)], g).unwrap();
        let bmode = BModeImage::from_iq(&iq, 40.0).unwrap();
        assert_eq!(bmode.db(0, 0), 0.0);
        assert!((bmode.db(0, 1) - 20.0 * (0.5f32 / 5.0).log10()).abs() < 1e-4);
    }

    #[test]
    fn profiles_have_expected_lengths() {
        let g = grid(3, 4);
        let img = BModeImage::from_envelope(&vec![1.0; 12], g, 60.0).unwrap();
        assert_eq!(img.lateral_profile(1).len(), 4);
        assert_eq!(img.axial_profile(2).len(), 3);
    }

    #[test]
    fn ascii_rendering_is_nonempty_and_bounded() {
        let g = grid(8, 8);
        let envelope: Vec<f32> = (0..64).map(|i| i as f32 / 63.0).collect();
        let img = BModeImage::from_envelope(&envelope, g, 60.0).unwrap();
        let art = img.to_ascii(4);
        assert!(art.lines().count() <= 8);
        assert!(art.contains('@'));
    }

    #[test]
    fn all_zero_envelope_is_handled() {
        let g = grid(2, 2);
        let img = BModeImage::from_envelope(&[0.0; 4], g, 60.0).unwrap();
        // Everything is at the floor.
        assert!(img.as_slice().iter().all(|&v| v == -60.0 || v == 0.0));
    }
}
