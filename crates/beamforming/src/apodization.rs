//! Receive apodization.
//!
//! DAS with single-angle plane waves uses *data-independent* apodization — the paper
//! calls this out as the reason DAS loses contrast. Two flavours are provided: a fixed
//! full-aperture window and a depth-dependent (f-number limited) expanding aperture.

use crate::{BeamformError, BeamformResult};
use ultrasound::LinearArray;
use usdsp::Window;

/// Receive apodization strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Apodization {
    /// Fixed window across the full aperture, independent of pixel position.
    Fixed(
        /// Window shape applied across the aperture.
        Window,
    ),
    /// Dynamic aperture limited by an f-number: only elements within
    /// `|x_e − x_pixel| ≤ z / (2·f_number)` contribute, weighted by the window.
    DynamicAperture {
        /// Window shape applied across the active sub-aperture.
        window: Window,
        /// Receive f-number (depth / aperture); typical ultrasound values are 1–2.
        f_number: f32,
    },
}

impl Default for Apodization {
    fn default() -> Self {
        Apodization::Fixed(Window::Rectangular)
    }
}

impl Apodization {
    /// The paper's DAS baseline: boxcar weights over the whole aperture.
    pub fn boxcar() -> Self {
        Apodization::Fixed(Window::Rectangular)
    }

    /// A conventional dynamic-aperture Hann apodization with f-number 1.4.
    pub fn hann_dynamic() -> Self {
        Apodization::DynamicAperture { window: Window::Hann, f_number: 1.4 }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::InvalidParameter`] for a non-positive f-number.
    pub fn validate(&self) -> BeamformResult<()> {
        if let Apodization::DynamicAperture { f_number, .. } = self {
            if *f_number <= 0.0 {
                return Err(BeamformError::InvalidParameter { name: "f_number", reason: "must be positive".into() });
            }
        }
        Ok(())
    }

    /// Whether the weights depend on the pixel position.
    ///
    /// [`Apodization::Fixed`] weights are identical for every pixel, so DAS hoists
    /// their computation out of the per-pixel loop.
    pub fn is_pixel_independent(&self) -> bool {
        matches!(self, Apodization::Fixed(_))
    }

    /// Computes per-channel weights for a pixel at `(x, z)`.
    ///
    /// The weights are normalized to sum to 1 so beamformed amplitudes are comparable
    /// across depths and apodization choices. When no element falls inside a dynamic
    /// aperture the full aperture is used as a fallback (this only happens extremely
    /// close to the probe face).
    pub fn weights(&self, array: &LinearArray, x: f32, z: f32) -> Vec<f32> {
        let mut weights = Vec::new();
        self.weights_into(array, x, z, &mut weights);
        weights
    }

    /// [`Apodization::weights`] writing into a caller-provided buffer, letting hot
    /// loops reuse one allocation per worker instead of one per pixel.
    pub fn weights_into(&self, array: &LinearArray, x: f32, z: f32, weights: &mut Vec<f32>) {
        let n = array.num_elements();
        weights.clear();
        weights.resize(n, 0.0f32);
        match self {
            Apodization::Fixed(window) => {
                for (i, w) in weights.iter_mut().enumerate() {
                    let u = if n == 1 { 0.5 } else { i as f32 / (n - 1) as f32 };
                    *w = window.sample(u);
                }
            }
            Apodization::DynamicAperture { window, f_number } => {
                let half_aperture = (z / (2.0 * f_number)).max(array.pitch());
                let mut any = false;
                for (i, w) in weights.iter_mut().enumerate() {
                    let xe = array.element_x(i);
                    let d = (xe - x).abs();
                    if d <= half_aperture {
                        let u = 0.5 + 0.5 * (xe - x) / half_aperture;
                        *w = window.sample(u.clamp(0.0, 1.0));
                        any = true;
                    }
                }
                if !any {
                    for w in weights.iter_mut() {
                        *w = 1.0;
                    }
                }
            }
        }
        let sum: f32 = weights.iter().sum();
        if sum > 0.0 {
            for w in weights.iter_mut() {
                *w /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxcar_weights_are_uniform_and_normalized() {
        let array = LinearArray::small_test_array();
        let w = Apodization::boxcar().weights(&array, 0.0, 0.02);
        assert_eq!(w.len(), 32);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        for &v in &w {
            assert!((v - 1.0 / 32.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fixed_hann_tapers_edges() {
        let array = LinearArray::small_test_array();
        let w = Apodization::Fixed(Window::Hann).weights(&array, 0.0, 0.02);
        assert!(w[0] < w[16]);
        assert!(w[31] < w[16]);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn dynamic_aperture_grows_with_depth() {
        let array = LinearArray::l11_5v();
        let apo = Apodization::DynamicAperture { window: Window::Rectangular, f_number: 1.5 };
        let active = |z: f32| apo.weights(&array, 0.0, z).iter().filter(|&&w| w > 0.0).count();
        let shallow = active(0.005);
        let deep = active(0.04);
        assert!(deep > shallow, "deep {deep} shallow {shallow}");
    }

    #[test]
    fn dynamic_aperture_centres_on_pixel() {
        let array = LinearArray::l11_5v();
        let apo = Apodization::DynamicAperture { window: Window::Rectangular, f_number: 1.5 };
        let w = apo.weights(&array, 0.01, 0.02);
        // The weighted mean element position should be near x = 0.01.
        let xs = array.element_positions();
        let mean_x: f32 = w.iter().zip(xs.iter()).map(|(w, x)| w * x).sum();
        assert!((mean_x - 0.01).abs() < 1.5e-3, "mean_x {mean_x}");
    }

    #[test]
    fn extremely_shallow_pixel_falls_back_to_full_aperture() {
        let array = LinearArray::small_test_array();
        let apo = Apodization::DynamicAperture { window: Window::Hann, f_number: 10.0 };
        // At z close to 0 the aperture is clamped to at least one pitch, still tiny, but
        // the fallback keeps the weights usable.
        let w = apo.weights(&array, 1.0, 1e-6);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn validation_rejects_bad_f_number() {
        assert!(Apodization::DynamicAperture { window: Window::Hann, f_number: 0.0 }.validate().is_err());
        assert!(Apodization::hann_dynamic().validate().is_ok());
        assert!(Apodization::boxcar().validate().is_ok());
    }
}
