//! Small complex-Hermitian linear algebra for MVDR.
//!
//! MVDR needs, per pixel, the solution of `R w = a` where `R` is a subaperture
//! covariance matrix (Hermitian positive semi-definite after diagonal loading) of
//! dimension equal to the subaperture length (≤ 64). A dense complex matrix type with a
//! Cholesky solver is all that is required; no external linear-algebra crate is used.

use crate::{BeamformError, BeamformResult};
use usdsp::Complex32;

/// A dense, square, column-agnostic (row-major) complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexMatrix {
    data: Vec<Complex32>,
    dim: usize,
}

impl ComplexMatrix {
    /// Creates a zero matrix of dimension `dim × dim`.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "ComplexMatrix: dimension must be nonzero");
        Self { data: vec![Complex32::ZERO; dim * dim], dim }
    }

    /// Creates an identity matrix.
    pub fn identity(dim: usize) -> Self {
        let mut m = Self::zeros(dim);
        for i in 0..dim {
            *m.at_mut(i, i) = Complex32::ONE;
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Element `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> Complex32 {
        self.data[row * self.dim + col]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut Complex32 {
        &mut self.data[row * self.dim + col]
    }

    /// Adds `value` to every diagonal entry (diagonal loading).
    pub fn add_diagonal(&mut self, value: f32) {
        for i in 0..self.dim {
            let d = self.at(i, i);
            *self.at_mut(i, i) = d + Complex32::from_real(value);
        }
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> Complex32 {
        (0..self.dim).map(|i| self.at(i, i)).sum()
    }

    /// Accumulates the outer product `x xᴴ` scaled by `weight` into the matrix.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim`.
    pub fn accumulate_outer(&mut self, x: &[Complex32], weight: f32) {
        assert_eq!(x.len(), self.dim, "outer product dimension mismatch");
        for i in 0..self.dim {
            for j in 0..self.dim {
                let prod = x[i] * x[j].conj();
                let cur = self.at(i, j);
                *self.at_mut(i, j) = cur + prod.scale(weight);
            }
        }
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim`.
    pub fn mul_vec(&self, x: &[Complex32]) -> Vec<Complex32> {
        assert_eq!(x.len(), self.dim, "matrix-vector dimension mismatch");
        (0..self.dim)
            .map(|i| (0..self.dim).map(|j| self.at(i, j) * x[j]).sum())
            .collect()
    }

    /// Solves `A x = b` for Hermitian positive-definite `A` via Cholesky decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::SingularMatrix`] when the matrix is not positive
    /// definite (a pivot is non-positive or not finite).
    pub fn solve_hermitian(&self, b: &[Complex32]) -> BeamformResult<Vec<Complex32>> {
        if b.len() != self.dim {
            return Err(BeamformError::ShapeMismatch {
                expected: format!("rhs of length {}", self.dim),
                actual: format!("length {}", b.len()),
            });
        }
        let n = self.dim;
        // Cholesky factorization A = L Lᴴ with L lower-triangular.
        let mut l = vec![Complex32::ZERO; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.at(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k].conj();
                }
                if i == j {
                    let pivot = sum.re;
                    if !(pivot.is_finite()) || pivot <= 0.0 {
                        return Err(BeamformError::SingularMatrix);
                    }
                    l[i * n + j] = Complex32::from_real(pivot.sqrt());
                } else {
                    let diag = l[j * n + j];
                    l[i * n + j] = sum / diag;
                }
            }
        }
        // Forward substitution L y = b.
        let mut y = vec![Complex32::ZERO; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back substitution Lᴴ x = y.
        let mut x = vec![Complex32::ZERO; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= l[k * n + i].conj() * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Ok(x)
    }
}

/// Hermitian inner product `aᴴ b`.
///
/// # Panics
///
/// Panics when the vectors have different lengths.
pub fn hermitian_dot(a: &[Complex32], b: &[Complex32]) -> Complex32 {
    assert_eq!(a.len(), b.len(), "hermitian_dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex32, b: Complex32, tol: f32) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let m = ComplexMatrix::identity(4);
        let b: Vec<Complex32> = (0..4).map(|i| Complex32::new(i as f32, -(i as f32))).collect();
        let x = m.solve_hermitian(&b).unwrap();
        for (xi, bi) in x.iter().zip(b.iter()) {
            assert!(close(*xi, *bi, 1e-6));
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        // Build A = B Bᴴ + I (positive definite), pick x, compute b = A x, solve.
        let n = 6;
        let mut a = ComplexMatrix::identity(n);
        for k in 0..3 {
            let v: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new(((i + k) as f32 * 0.7).sin(), ((i * k) as f32 * 0.3).cos()))
                .collect();
            a.accumulate_outer(&v, 1.0);
        }
        let x_true: Vec<Complex32> = (0..n).map(|i| Complex32::new(i as f32 + 0.5, 1.0 - i as f32 * 0.2)).collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve_hermitian(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!(close(*xi, *ti, 1e-3), "{xi:?} vs {ti:?}");
        }
    }

    #[test]
    fn outer_product_accumulation_is_hermitian() {
        let mut m = ComplexMatrix::zeros(3);
        let v = vec![Complex32::new(1.0, 2.0), Complex32::new(-0.5, 0.3), Complex32::new(0.0, 1.0)];
        m.accumulate_outer(&v, 2.0);
        for i in 0..3 {
            for j in 0..3 {
                let a = m.at(i, j);
                let b = m.at(j, i).conj();
                assert!(close(a, b, 1e-6));
            }
            // Diagonal is real and non-negative.
            assert!(m.at(i, i).im.abs() < 1e-6);
            assert!(m.at(i, i).re >= 0.0);
        }
    }

    #[test]
    fn diagonal_loading_and_trace() {
        let mut m = ComplexMatrix::zeros(3);
        m.add_diagonal(2.5);
        assert!(close(m.trace(), Complex32::from_real(7.5), 1e-6));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let m = ComplexMatrix::zeros(3);
        let b = vec![Complex32::ONE; 3];
        assert_eq!(m.solve_hermitian(&b).unwrap_err(), BeamformError::SingularMatrix);
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let m = ComplexMatrix::identity(3);
        assert!(matches!(m.solve_hermitian(&[Complex32::ONE; 2]), Err(BeamformError::ShapeMismatch { .. })));
    }

    #[test]
    fn hermitian_dot_of_self_is_norm() {
        let v = vec![Complex32::new(3.0, 4.0), Complex32::new(0.0, 2.0)];
        let d = hermitian_dot(&v, &v);
        assert!(close(d, Complex32::from_real(29.0), 1e-5));
    }

    #[test]
    #[should_panic(expected = "dimension must be nonzero")]
    fn zero_dimension_panics() {
        let _ = ComplexMatrix::zeros(0);
    }
}
