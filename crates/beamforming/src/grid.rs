//! Imaging pixel grid.
//!
//! The paper reconstructs 368 (axial) × 128 (lateral) pixel frames. [`ImagingGrid`]
//! stores the physical coordinates of every pixel; pixel `(row, col)` sits at depth
//! `z[row]` and lateral position `x[col]`.

use crate::{BeamformError, BeamformResult};
use serde::{Deserialize, Serialize};
use ultrasound::LinearArray;

/// Axial depth rows and lateral columns of the reconstruction grid.
///
/// ```
/// use beamforming::ImagingGrid;
/// use ultrasound::LinearArray;
/// let grid = ImagingGrid::paper_default(&LinearArray::l11_5v());
/// assert_eq!(grid.num_rows(), 368);
/// assert_eq!(grid.num_cols(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImagingGrid {
    z_positions: Vec<f32>,
    x_positions: Vec<f32>,
}

impl ImagingGrid {
    /// Builds a grid from explicit pixel coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::InvalidParameter`] when either axis is empty or not
    /// strictly increasing.
    pub fn new(z_positions: Vec<f32>, x_positions: Vec<f32>) -> BeamformResult<Self> {
        if z_positions.is_empty() || x_positions.is_empty() {
            return Err(BeamformError::InvalidParameter { name: "grid", reason: "axes must be non-empty".into() });
        }
        let strictly_increasing = |v: &[f32]| v.windows(2).all(|w| w[1] > w[0]);
        if !strictly_increasing(&z_positions) || !strictly_increasing(&x_positions) {
            return Err(BeamformError::InvalidParameter { name: "grid", reason: "axes must be strictly increasing".into() });
        }
        Ok(Self { z_positions, x_positions })
    }

    /// Builds a uniform grid covering depths `[z_min, z_min + depth_extent]` and the
    /// probe's lateral aperture, with `rows × cols` pixels.
    pub fn for_array(array: &LinearArray, z_min: f32, depth_extent: f32, rows: usize, cols: usize) -> Self {
        let z_max = z_min + depth_extent;
        let half_width = array.aperture() / 2.0;
        let z_positions = linspace(z_min, z_max, rows);
        let x_positions = linspace(-half_width, half_width, cols);
        Self { z_positions, x_positions }
    }

    /// The paper's 368 × 128 grid spanning 5–45 mm depth over the full aperture.
    pub fn paper_default(array: &LinearArray) -> Self {
        Self::for_array(array, 5.0e-3, 40.0e-3, 368, 128)
    }

    /// A reduced grid for fast tests: 64 × 32 pixels over 5–30 mm.
    pub fn small(array: &LinearArray) -> Self {
        Self::for_array(array, 5.0e-3, 25.0e-3, 64, 32)
    }

    /// Number of depth rows.
    pub fn num_rows(&self) -> usize {
        self.z_positions.len()
    }

    /// Number of lateral columns.
    pub fn num_cols(&self) -> usize {
        self.x_positions.len()
    }

    /// Total number of pixels.
    pub fn num_pixels(&self) -> usize {
        self.num_rows() * self.num_cols()
    }

    /// Depth (metres) of row `row`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn z(&self, row: usize) -> f32 {
        self.z_positions[row]
    }

    /// Lateral position (metres) of column `col`.
    ///
    /// # Panics
    ///
    /// Panics when `col` is out of range.
    pub fn x(&self, col: usize) -> f32 {
        self.x_positions[col]
    }

    /// All depth positions.
    pub fn z_positions(&self) -> &[f32] {
        &self.z_positions
    }

    /// All lateral positions.
    pub fn x_positions(&self) -> &[f32] {
        &self.x_positions
    }

    /// Axial pixel pitch in metres (0 when the grid has a single row).
    pub fn axial_step(&self) -> f32 {
        if self.z_positions.len() < 2 {
            0.0
        } else {
            (self.z_positions[self.z_positions.len() - 1] - self.z_positions[0]) / (self.z_positions.len() - 1) as f32
        }
    }

    /// Lateral pixel pitch in metres (0 when the grid has a single column).
    pub fn lateral_step(&self) -> f32 {
        if self.x_positions.len() < 2 {
            0.0
        } else {
            (self.x_positions[self.x_positions.len() - 1] - self.x_positions[0]) / (self.x_positions.len() - 1) as f32
        }
    }

    /// Row index whose depth is closest to `z` metres.
    pub fn nearest_row(&self, z: f32) -> usize {
        nearest_index(&self.z_positions, z)
    }

    /// Column index whose lateral position is closest to `x` metres.
    pub fn nearest_col(&self, x: f32) -> usize {
        nearest_index(&self.x_positions, x)
    }
}

fn nearest_index(values: &[f32], target: f32) -> usize {
    let mut best = 0usize;
    let mut best_dist = f32::INFINITY;
    for (i, &v) in values.iter().enumerate() {
        let d = (v - target).abs();
        if d < best_dist {
            best_dist = d;
            best = i;
        }
    }
    best
}

/// Uniformly spaced points from `start` to `end` inclusive.
pub fn linspace(start: f32, end: f32, n: usize) -> Vec<f32> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![start];
    }
    let step = (end - start) / (n - 1) as f32;
    (0..n).map(|i| start + step * i as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_frame_size() {
        let grid = ImagingGrid::paper_default(&LinearArray::l11_5v());
        assert_eq!(grid.num_rows(), 368);
        assert_eq!(grid.num_cols(), 128);
        assert_eq!(grid.num_pixels(), 368 * 128);
        assert!((grid.z(0) - 5.0e-3).abs() < 1e-9);
        assert!((grid.z(367) - 45.0e-3).abs() < 1e-6);
    }

    #[test]
    fn for_array_spans_aperture() {
        let array = LinearArray::l11_5v();
        let grid = ImagingGrid::for_array(&array, 0.01, 0.02, 10, 5);
        assert!((grid.x(0) + array.aperture() / 2.0).abs() < 1e-7);
        assert!((grid.x(4) - array.aperture() / 2.0).abs() < 1e-7);
    }

    #[test]
    fn new_validates_axes() {
        assert!(ImagingGrid::new(vec![], vec![0.0]).is_err());
        assert!(ImagingGrid::new(vec![0.0, 0.0], vec![0.0]).is_err());
        assert!(ImagingGrid::new(vec![0.0, 1.0], vec![0.0, -1.0]).is_err());
        assert!(ImagingGrid::new(vec![0.0, 1.0], vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn steps_are_uniform() {
        let grid = ImagingGrid::for_array(&LinearArray::l11_5v(), 0.005, 0.040, 368, 128);
        assert!((grid.axial_step() - 0.040 / 367.0).abs() < 1e-9);
        assert!(grid.lateral_step() > 0.0);
        let single = ImagingGrid::new(vec![0.01], vec![0.0, 0.001]).unwrap();
        assert_eq!(single.axial_step(), 0.0);
    }

    #[test]
    fn nearest_indices() {
        let grid = ImagingGrid::new(vec![0.01, 0.02, 0.03], vec![-0.01, 0.0, 0.01]).unwrap();
        assert_eq!(grid.nearest_row(0.021), 1);
        assert_eq!(grid.nearest_row(0.029), 2);
        assert_eq!(grid.nearest_col(-0.02), 0);
        assert_eq!(grid.nearest_col(0.004), 1);
    }

    #[test]
    fn linspace_endpoints() {
        assert_eq!(linspace(0.0, 1.0, 0), Vec::<f32>::new());
        assert_eq!(linspace(2.0, 5.0, 1), vec![2.0]);
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v.len(), 5);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[4], 1.0);
        assert!((v[2] - 0.5).abs() < 1e-7);
    }
}
