//! A uniform interface over the classical beamformers plus end-to-end helpers.

pub use crate::das::DelayAndSum;
pub use crate::mvdr::Mvdr;
pub use crate::plan::{PlannedDas, PlannedMvdr};

use crate::bmode::BModeImage;
use crate::grid::ImagingGrid;
use crate::iq::IqImage;
use crate::plan::{FrameFormat, PlanCacheStats};
use crate::BeamformResult;
use ultrasound::{ChannelData, LinearArray};

/// Accuracy-proxy counters a lossy beamformer (e.g. a fixed-point Tiny-VBF
/// backend) accumulates while serving, so quality degradation is observable
/// under load without re-running a float reference per frame.
///
/// Energies are accumulated as `f64` sums across frames; the aggregate
/// signal-to-quantization-noise ratio follows as
/// `10·log10(signal/noise)` ([`QuantQualityStats::sqnr_db`]). A pure
/// floating-point backend accumulates zero noise and reports an infinite
/// SQNR.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuantQualityStats {
    /// Frames the counters cover.
    pub frames: u64,
    /// Accumulated signal energy (sum of squared reference values).
    pub signal_energy: f64,
    /// Accumulated quantization-noise energy (sum of squared
    /// reference − quantized differences).
    pub noise_energy: f64,
}

impl QuantQualityStats {
    /// Aggregate signal-to-quantization-noise ratio in dB over every counted
    /// frame. `f64::INFINITY` when no noise was accumulated (floating-point
    /// backends, or no frames yet).
    pub fn sqnr_db(&self) -> f64 {
        if self.noise_energy <= 0.0 {
            return f64::INFINITY;
        }
        10.0 * (self.signal_energy / self.noise_energy).log10()
    }

    /// Folds another snapshot into this one (for totals across engines).
    pub fn merge(&mut self, other: &QuantQualityStats) {
        self.frames += other.frames;
        self.signal_energy += other.signal_energy;
        self.noise_energy += other.noise_energy;
    }
}

/// Anything that turns raw channel data into an IQ image on a grid.
///
/// The `tiny-vbf` crate implements this trait for its learned beamformers so the
/// evaluation harness can score DAS, MVDR, Tiny-CNN and Tiny-VBF through one interface,
/// and the `serve` crate batches frames through [`Beamformer::beamform_batch`].
///
/// `Sync` is a supertrait so the default batch implementation can fan frames out
/// across worker threads; beamformer configurations are plain data, so this costs
/// implementations nothing.
pub trait Beamformer: Sync {
    /// Short human-readable name used in tables ("DAS", "MVDR", "Tiny-VBF", …).
    fn name(&self) -> &str;

    /// Beamforms one acquisition into an IQ image.
    ///
    /// # Errors
    ///
    /// Implementations return a [`crate::BeamformError`] when the inputs are
    /// inconsistent with the probe/grid or a numerical step fails.
    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage>;

    /// Beamforms a batch of acquisitions sharing one probe and grid, running
    /// frames concurrently under the workspace-default thread budget (see
    /// [`runtime::default_threads`]).
    ///
    /// The default implementation delegates to
    /// [`Beamformer::beamform_batch_with_threads`]; implementations that can
    /// amortise per-frame setup (model clones, precomputed tables) may
    /// override either method. Multi-frame workloads should prefer this entry
    /// point so those optimisations apply transparently.
    ///
    /// # Errors
    ///
    /// Returns the first per-frame error encountered, in frame order.
    fn beamform_batch(
        &self,
        frames: &[ChannelData],
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<Vec<IqImage>> {
        self.beamform_batch_with_threads(frames, array, grid, sound_speed, runtime::default_threads())
    }

    /// [`Beamformer::beamform_batch`] with an explicit *total* thread budget.
    ///
    /// The budget is split two ways via [`runtime::split_budget`]: frames of
    /// the batch run concurrently across `outer` workers, and each frame's own
    /// [`Beamformer::beamform`] keeps its internal row parallelism capped at
    /// `inner` threads (enforced by the runtime's nested-budget mechanism), so
    /// the total live worker count never exceeds `num_threads`. Each frame's
    /// image depends only on that frame's data, so the results are bitwise
    /// identical for every budget.
    ///
    /// # Errors
    ///
    /// Returns the first per-frame error encountered, in frame order. Note
    /// that all frames are still computed when one fails (they run
    /// concurrently); callers that want the per-frame outcomes should use
    /// [`Beamformer::beamform_batch_results`] instead.
    fn beamform_batch_with_threads(
        &self,
        frames: &[ChannelData],
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        num_threads: usize,
    ) -> BeamformResult<Vec<IqImage>> {
        self.beamform_batch_results(frames, array, grid, sound_speed, num_threads).into_iter().collect()
    }

    /// Frame-parallel batch beamforming with one [`BeamformResult`] per frame
    /// (in frame order) instead of an all-or-nothing result — the primitive
    /// behind both [`Beamformer::beamform_batch_with_threads`] and the `serve`
    /// crate's per-request error reporting, where one malformed frame must
    /// fail alone rather than poisoning (or forcing a recompute of) its whole
    /// batch.
    ///
    /// Thread budgeting and determinism are as in
    /// [`Beamformer::beamform_batch_with_threads`].
    fn beamform_batch_results(
        &self,
        frames: &[ChannelData],
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        num_threads: usize,
    ) -> Vec<BeamformResult<IqImage>> {
        let (outer, inner) = runtime::split_budget(num_threads, frames.len());
        runtime::par_collect_budgeted(frames.len(), outer, inner, |i| self.beamform(&frames[i], array, grid, sound_speed))
    }

    /// Warm any per-stream caches for frames of the given format.
    ///
    /// Beamformers that amortise per-stream precomputation — the planned
    /// wrappers ([`PlannedDas`], [`PlannedMvdr`]) build their
    /// [`crate::plan::BeamformPlan`] here — override this so a serving
    /// front-end can pay the one-time setup at engine construction instead of
    /// on the first streamed frame. The default is a no-op; implementations
    /// must treat it as best-effort (configuration errors surface on the next
    /// [`Beamformer::beamform`] call, not here).
    fn prepare(&self, _array: &LinearArray, _grid: &ImagingGrid, _sound_speed: f32, _frame: &FrameFormat) {}

    /// Counters of this beamformer's internal plan cache, if it has one.
    ///
    /// The planned wrappers ([`PlannedDas`], [`PlannedMvdr`]) and the learned
    /// adapters report their [`crate::plan::PlanCache`] here so a serving
    /// layer can prove cache behaviour (e.g. zero rebuilds after warm-up)
    /// through a `dyn Beamformer` without knowing the concrete type. The
    /// default is `None` (no cache).
    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        None
    }

    /// Accuracy-proxy counters of a lossy (e.g. fixed-point) beamformer, if
    /// it tracks them.
    ///
    /// Quantized backends report accumulated signal/quantization-noise
    /// energies here so a serving layer can surface per-backend SQNR under
    /// load through a `dyn Beamformer` (see `serve::router::EngineStats`).
    /// The default is `None` (exact beamformer, nothing to report).
    fn quant_quality_stats(&self) -> Option<QuantQualityStats> {
        None
    }

    /// Convenience: beamform and log-compress to a B-mode image.
    ///
    /// # Errors
    ///
    /// Propagates beamforming and compression errors.
    fn beamform_bmode(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        dynamic_range: f32,
    ) -> BeamformResult<BModeImage> {
        let iq = self.beamform(data, array, grid, sound_speed)?;
        BModeImage::from_iq(&iq, dynamic_range)
    }
}

impl Beamformer for DelayAndSum {
    fn name(&self) -> &str {
        "DAS"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        self.beamform_iq(data, array, grid, sound_speed)
    }
}

impl Beamformer for Mvdr {
    fn name(&self) -> &str {
        "MVDR"
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        self.beamform_iq(data, array, grid, sound_speed)
    }
}

/// Shared-ownership delegation: an `Arc<B>` beamforms exactly like `B`.
///
/// This lets one beamformer instance — and, for the planned wrappers, one
/// plan cache — be shared between a serving engine and its caller (e.g. to
/// inspect [`PlannedDas::plans_built`] while the engine owns the other
/// handle).
impl<B: Beamformer + Send + Sync + ?Sized> Beamformer for std::sync::Arc<B> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn beamform(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        (**self).beamform(data, array, grid, sound_speed)
    }

    fn beamform_batch_results(
        &self,
        frames: &[ChannelData],
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        num_threads: usize,
    ) -> Vec<BeamformResult<IqImage>> {
        (**self).beamform_batch_results(frames, array, grid, sound_speed, num_threads)
    }

    fn prepare(&self, array: &LinearArray, grid: &ImagingGrid, sound_speed: f32, frame: &FrameFormat) {
        (**self).prepare(array, grid, sound_speed, frame)
    }

    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        (**self).plan_cache_stats()
    }

    fn quant_quality_stats(&self) -> Option<QuantQualityStats> {
        (**self).quant_quality_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrasound::{Medium, Phantom, PlaneWave, PlaneWaveSimulator};

    #[test]
    fn trait_objects_cover_both_classical_beamformers() {
        let array = LinearArray::small_test_array();
        let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.03);
        let phantom = Phantom::builder(0.01, 0.03).add_point_target(0.0, 0.02, 1.0).build();
        let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap();
        let grid = ImagingGrid::for_array(&array, 0.018, 0.004, 12, 8);

        let beamformers: Vec<Box<dyn Beamformer>> = vec![Box::new(DelayAndSum::default()), Box::new(Mvdr::fast())];
        for bf in &beamformers {
            let iq = bf.beamform(&rf, &array, &grid, 1540.0).unwrap();
            assert_eq!(iq.num_pixels(), grid.num_pixels(), "{}", bf.name());
            let bmode = bf.beamform_bmode(&rf, &array, &grid, 1540.0, 60.0).unwrap();
            assert_eq!(bmode.num_rows(), grid.num_rows());
        }
        assert_eq!(beamformers[0].name(), "DAS");
        assert_eq!(beamformers[1].name(), "MVDR");
    }
}
