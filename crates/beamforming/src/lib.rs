//! Classical plane-wave beamforming for the Tiny-VBF reproduction.
//!
//! This crate implements the non-learned half of the paper's pipeline:
//!
//! * [`grid`] — the imaging pixel grid (368 × 128 in the paper),
//! * [`tof`] — plane-wave transmit/receive time-of-flight and the **ToF-corrected data
//!   cube** that is both the classical beamformers' working set and the Tiny-VBF /
//!   Tiny-CNN network input,
//! * [`apodization`] — receive apodization (boxcar, Hann, dynamic f-number aperture),
//! * [`das`] — the Delay-and-Sum baseline,
//! * [`mvdr`] — the Minimum Variance Distortionless Response beamformer used as the
//!   training target (subaperture smoothing, diagonal loading, complex Cholesky solve),
//! * [`linalg`] — the small complex-Hermitian linear algebra MVDR needs,
//! * [`iq`] — IQ conversion of beamformed RF columns,
//! * [`bmode`] — envelope detection, log compression and the B-mode image container,
//! * [`pipeline`] — a uniform [`pipeline::Beamformer`] trait plus end-to-end helpers,
//! * [`plan`] — precomputed delay/apodization tables ([`plan::BeamformPlan`]) and the
//!   plan-driven gather kernels that amortise the per-frame geometry across a stream,
//! * [`flops`] — GOPs/frame accounting for the classical beamformers.
//!
//! # Example
//!
//! ```
//! use beamforming::{grid::ImagingGrid, pipeline::{Beamformer, DelayAndSum}};
//! use ultrasound::picmus::{PicmusDataset, PicmusKind};
//!
//! let frame = PicmusDataset::resolution(PicmusKind::InSilico)
//!     .with_scale(0.15)
//!     .with_max_depth(0.022)
//!     .build(3)?;
//! let grid = ImagingGrid::for_array(&frame.array, 5.0e-3, 0.02, 48, 24);
//! let image = DelayAndSum::default().beamform(&frame.channel_data, &frame.array, &grid, 1540.0)?;
//! assert_eq!(image.num_pixels(), 48 * 24);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod apodization;
pub mod bmode;
pub mod das;
pub mod flops;
pub mod grid;
pub mod iq;
pub mod linalg;
pub mod mvdr;
pub mod pipeline;
pub mod plan;
pub mod tof;

pub use bmode::BModeImage;
pub use grid::ImagingGrid;
pub use iq::IqImage;
pub use plan::{BeamformPlan, FrameFormat, PlannedDas, PlannedMvdr};
pub use tof::TofCube;

use std::error::Error;
use std::fmt;

/// Errors produced by the beamforming pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum BeamformError {
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violated constraint.
        reason: String,
    },
    /// Input data dimensions are inconsistent with the probe or grid.
    ShapeMismatch {
        /// Description of what was expected.
        expected: String,
        /// Description of what was provided.
        actual: String,
    },
    /// A linear system could not be solved (singular covariance matrix).
    SingularMatrix,
}

impl fmt::Display for BeamformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeamformError::InvalidParameter { name, reason } => write!(f, "invalid parameter `{name}`: {reason}"),
            BeamformError::ShapeMismatch { expected, actual } => write!(f, "shape mismatch: expected {expected}, got {actual}"),
            BeamformError::SingularMatrix => write!(f, "covariance matrix is singular"),
        }
    }
}

impl Error for BeamformError {}

/// Convenience result alias used across the crate.
pub type BeamformResult<T> = Result<T, BeamformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(BeamformError::SingularMatrix.to_string().contains("singular"));
        assert!(BeamformError::InvalidParameter { name: "f_number", reason: "must be positive".into() }
            .to_string()
            .contains("f_number"));
        assert!(BeamformError::ShapeMismatch { expected: "128 channels".into(), actual: "64".into() }
            .to_string()
            .contains("128"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BeamformError>();
    }
}
