//! Delay-and-Sum (DAS) beamforming.
//!
//! DAS is the paper's conventional baseline: sample every channel at the pixel's
//! round-trip delay and sum with data-independent apodization weights. Its low cost is
//! why it ships in commercial systems; its data-independence is why single-angle DAS
//! images have poor contrast and resolution compared to MVDR and the learned
//! beamformers.

use crate::apodization::Apodization;
use crate::grid::ImagingGrid;
use crate::iq::{rf_to_iq, IqImage};
use crate::plan::{BeamformPlan, FrameFormat};
use crate::tof::TofCube;
use crate::{BeamformError, BeamformResult};
use ultrasound::{ChannelData, LinearArray, PlaneWave};
use usdsp::interp::{sample_at, InterpMethod};

/// Delay-and-Sum beamformer configuration.
///
/// ```
/// use beamforming::das::DelayAndSum;
/// use beamforming::grid::ImagingGrid;
/// use ultrasound::{ChannelData, LinearArray};
///
/// let das = DelayAndSum::default();
/// assert_eq!(das.transmit.angle, 0.0);
///
/// // Beamform one (here silent) acquisition onto an 8 × 8 grid.
/// let array = LinearArray::small_test_array();
/// let data = ChannelData::zeros(256, array.num_elements(), array.sampling_frequency());
/// let grid = ImagingGrid::for_array(&array, 0.01, 0.005, 8, 8);
/// let rf = das.beamform_rf(&data, &array, &grid, 1540.0)?;
/// assert_eq!(rf.len(), grid.num_pixels());
/// # Ok::<(), beamforming::BeamformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayAndSum {
    /// Receive apodization strategy.
    pub apodization: Apodization,
    /// Plane-wave transmit description (angle).
    pub transmit: PlaneWave,
    /// Fractional-delay interpolation method.
    pub interpolation: InterpMethod,
}

impl Default for DelayAndSum {
    fn default() -> Self {
        Self {
            apodization: Apodization::boxcar(),
            transmit: PlaneWave::zero_angle(),
            interpolation: InterpMethod::Linear,
        }
    }
}

impl DelayAndSum {
    /// DAS with a dynamic-aperture Hann apodization (a slightly stronger classical
    /// baseline than the boxcar used in the paper's tables).
    pub fn with_hann_aperture() -> Self {
        Self { apodization: Apodization::hann_dynamic(), ..Self::default() }
    }

    /// Beamforms a real RF image (row-major, one value per grid pixel) using the
    /// workspace-default worker threads (see [`runtime::default_threads`]).
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::ShapeMismatch`] when the channel count differs from the
    /// probe and [`BeamformError::InvalidParameter`] for invalid apodization or sound
    /// speed.
    pub fn beamform_rf(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<Vec<f32>> {
        self.beamform_rf_with_threads(data, array, grid, sound_speed, runtime::default_threads())
    }

    /// [`DelayAndSum::beamform_rf`] with an explicit worker-thread count.
    ///
    /// Image rows are distributed over disjoint chunks; every pixel depends only
    /// on its own coordinates, so the output is bitwise identical for every
    /// `num_threads`. Pixel-independent (fixed) apodization weights are computed
    /// once per frame instead of once per pixel, and each worker reuses a single
    /// weight buffer for the dynamic-aperture case.
    ///
    /// # Errors
    ///
    /// Same as [`DelayAndSum::beamform_rf`].
    pub fn beamform_rf_with_threads(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        num_threads: usize,
    ) -> BeamformResult<Vec<f32>> {
        self.apodization.validate()?;
        if sound_speed <= 0.0 {
            return Err(BeamformError::InvalidParameter { name: "sound_speed", reason: "must be positive".into() });
        }
        if data.num_channels() != array.num_elements() {
            return Err(BeamformError::ShapeMismatch {
                expected: format!("{} channels", array.num_elements()),
                actual: format!("{}", data.num_channels()),
            });
        }
        let rows = grid.num_rows();
        let cols = grid.num_cols();
        let fs = data.sampling_frequency();
        let start_time = data.start_time();
        let traces = data.to_channel_traces();
        let element_xs = array.element_positions();
        let fixed_weights =
            if self.apodization.is_pixel_independent() { Some(self.apodization.weights(array, 0.0, 0.0)) } else { None };

        let mut rf = vec![0.0f32; rows * cols];
        runtime::par_map_rows(&mut rf, cols, num_threads, |first_row, block| {
            // Sized for a full weight vector up front so the pixel-dependent
            // apodization path allocates once per block, not incrementally
            // across the block's first pixels.
            let mut scratch: Vec<f32> = Vec::with_capacity(element_xs.len());
            // Per-channel contributions, gathered first and then reduced in
            // `runtime::simd`'s lane order — the same reduction the planned
            // gather kernel uses, which keeps the two paths bitwise identical.
            let mut contrib: Vec<f32> = Vec::with_capacity(element_xs.len());
            for (local, rf_row) in block.chunks_mut(cols).enumerate() {
                let z = grid.z(first_row + local);
                for (col, out) in rf_row.iter_mut().enumerate() {
                    let x = grid.x(col);
                    let weights = match &fixed_weights {
                        Some(w) => w.as_slice(),
                        None => {
                            self.apodization.weights_into(array, x, z, &mut scratch);
                            scratch.as_slice()
                        }
                    };
                    let t_tx = self.transmit.transmit_delay(x, z, sound_speed);
                    contrib.clear();
                    for (ch, &w) in weights.iter().enumerate() {
                        if w == 0.0 {
                            continue;
                        }
                        let dx = x - element_xs[ch];
                        let t_rx = (dx * dx + z * z).sqrt() / sound_speed;
                        let idx = (t_tx + t_rx - start_time) * fs;
                        contrib.push(w * sample_at(&traces[ch], idx, self.interpolation));
                    }
                    *out = runtime::simd::reduce_lanes(&contrib);
                }
            }
        });
        Ok(rf)
    }

    /// Beamforms directly from a precomputed ToF-corrected cube using uniform weights.
    /// This is the "sum along the channel axis" operation the Tiny-CNN baseline applies
    /// to its predicted apodization weights; with all-ones weights it equals boxcar DAS.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::ShapeMismatch`] when the cube and grid disagree.
    pub fn beamform_cube(&self, cube: &TofCube, grid: &ImagingGrid) -> BeamformResult<Vec<f32>> {
        if cube.rows() != grid.num_rows() || cube.cols() != grid.num_cols() {
            return Err(BeamformError::ShapeMismatch {
                expected: format!("{}x{} cube", grid.num_rows(), grid.num_cols()),
                actual: format!("{}x{}", cube.rows(), cube.cols()),
            });
        }
        let uniform = vec![1.0 / cube.channels() as f32; cube.channels()];
        Ok(cube.sum_channels(&uniform))
    }

    /// Beamforms to an IQ image (RF beamforming followed by per-column analytic signal).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`beamform_rf`](Self::beamform_rf).
    pub fn beamform_iq(
        &self,
        data: &ChannelData,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
    ) -> BeamformResult<IqImage> {
        let rf = self.beamform_rf(data, array, grid, sound_speed)?;
        rf_to_iq(&rf, grid)
    }

    /// Precomputes a [`BeamformPlan`] for this configuration: one-time
    /// delay/apodization tables that every matching frame can replay through
    /// [`DelayAndSum::beamform_rf_planned`], skipping the per-sample geometry.
    ///
    /// # Errors
    ///
    /// Same validation as [`DelayAndSum::beamform_rf`].
    pub fn plan(
        &self,
        array: &LinearArray,
        grid: &ImagingGrid,
        sound_speed: f32,
        frame: FrameFormat,
    ) -> BeamformResult<BeamformPlan> {
        BeamformPlan::for_das(self, array, grid, sound_speed, frame)
    }

    /// [`DelayAndSum::beamform_rf`] through a precomputed plan, using the
    /// workspace-default worker threads. Bitwise identical to the direct path
    /// for every thread count; the inner loop is reduced to two multiply-adds
    /// per retained channel over the plan's tables.
    ///
    /// # Errors
    ///
    /// Returns [`BeamformError::InvalidParameter`] when the plan was built for
    /// a different DAS configuration and the planned kernels' own validation
    /// errors (see [`BeamformPlan::beamform_rf`]).
    pub fn beamform_rf_planned(&self, data: &ChannelData, plan: &BeamformPlan) -> BeamformResult<Vec<f32>> {
        self.beamform_rf_planned_with_threads(data, plan, runtime::default_threads())
    }

    /// [`DelayAndSum::beamform_rf_planned`] with an explicit worker-thread
    /// count.
    ///
    /// # Errors
    ///
    /// Same as [`DelayAndSum::beamform_rf_planned`].
    pub fn beamform_rf_planned_with_threads(
        &self,
        data: &ChannelData,
        plan: &BeamformPlan,
        num_threads: usize,
    ) -> BeamformResult<Vec<f32>> {
        self.check_plan(plan)?;
        plan.beamform_rf_with_threads(data, num_threads)
    }

    /// [`DelayAndSum::beamform_iq`] through a precomputed plan (planned RF
    /// gather + per-column analytic signal), bitwise identical to the direct
    /// path.
    ///
    /// # Errors
    ///
    /// Same as [`DelayAndSum::beamform_rf_planned`].
    pub fn beamform_iq_planned(&self, data: &ChannelData, plan: &BeamformPlan) -> BeamformResult<IqImage> {
        self.beamform_iq_planned_with_threads(data, plan, runtime::default_threads())
    }

    /// [`DelayAndSum::beamform_iq_planned`] with an explicit worker-thread
    /// count.
    ///
    /// # Errors
    ///
    /// Same as [`DelayAndSum::beamform_rf_planned`].
    pub fn beamform_iq_planned_with_threads(
        &self,
        data: &ChannelData,
        plan: &BeamformPlan,
        num_threads: usize,
    ) -> BeamformResult<IqImage> {
        self.check_plan(plan)?;
        plan.beamform_iq_with_threads(data, num_threads)
    }

    fn check_plan(&self, plan: &BeamformPlan) -> BeamformResult<()> {
        match plan.das_config() {
            Some(config) if config == self => Ok(()),
            _ => Err(BeamformError::InvalidParameter {
                name: "plan",
                reason: "plan was built for a different DAS configuration".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmode::BModeImage;
    use ultrasound::{Medium, Phantom, PlaneWaveSimulator};

    fn point_target_frame(depth: f32) -> (ChannelData, LinearArray) {
        let array = LinearArray::small_test_array();
        let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.03);
        let phantom = Phantom::builder(0.01, 0.03).add_point_target(0.0, depth, 1.0).build();
        (sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap(), array)
    }

    #[test]
    fn das_focuses_point_target_at_right_pixel() {
        let depth = 0.02;
        let (rf, array) = point_target_frame(depth);
        let grid = ImagingGrid::for_array(&array, 0.012, 0.016, 80, 24);
        let das = DelayAndSum::default();
        let image = das.beamform_iq(&rf, &array, &grid, 1540.0).unwrap();
        let envelope = image.envelope();
        // A perfectly centred target yields mirror-symmetric columns whose
        // envelopes can tie bitwise; take the first maximum so the tie
        // resolves to the column adjacent to the expected one.
        let (peak_idx, _) = envelope
            .iter()
            .enumerate()
            .fold((0usize, f32::MIN), |best, (i, &v)| if v > best.1 { (i, v) } else { best });
        let peak_row = peak_idx / grid.num_cols();
        let peak_col = peak_idx % grid.num_cols();
        let expected_row = grid.nearest_row(depth);
        let expected_col = grid.nearest_col(0.0);
        assert!((peak_row as i64 - expected_row as i64).abs() <= 2, "row {peak_row} vs {expected_row}");
        assert!((peak_col as i64 - expected_col as i64).abs() <= 1, "col {peak_col} vs {expected_col}");
    }

    #[test]
    fn beamformed_peak_is_much_brighter_than_background() {
        let (rf, array) = point_target_frame(0.02);
        let grid = ImagingGrid::for_array(&array, 0.012, 0.016, 80, 24);
        let image = DelayAndSum::default().beamform_iq(&rf, &array, &grid, 1540.0).unwrap();
        let bmode = BModeImage::from_iq(&image, 60.0).unwrap();
        // Pixel far from the target should be at least 25 dB down.
        let far_db = bmode.db(grid.nearest_row(0.026), grid.nearest_col(-0.004));
        assert!(far_db < -25.0, "far pixel at {far_db} dB");
    }

    #[test]
    fn hann_aperture_widens_the_mainlobe() {
        // The classical windowing trade-off: tapered (Hann) receive apodization trades
        // sidelobe level for a mainlobe that is at least as wide as the boxcar one.
        let (rf, array) = point_target_frame(0.02);
        let grid = ImagingGrid::for_array(&array, 0.018, 0.004, 17, 48);
        let boxcar = DelayAndSum::default().beamform_iq(&rf, &array, &grid, 1540.0).unwrap();
        let hann = DelayAndSum::with_hann_aperture().beamform_iq(&rf, &array, &grid, 1540.0).unwrap();
        let row = grid.nearest_row(0.02);
        let mainlobe_width = |img: &IqImage| {
            let profile: Vec<f32> = (0..grid.num_cols()).map(|c| img.value(row, c).abs()).collect();
            let peak = profile.iter().cloned().fold(0.0f32, f32::max).max(1e-12);
            profile.iter().filter(|&&v| v > 0.5 * peak).count()
        };
        let boxcar_width = mainlobe_width(&boxcar);
        let hann_width = mainlobe_width(&hann);
        assert!(hann_width >= boxcar_width, "hann {hann_width} boxcar {boxcar_width}");
        // Both remain focused on the correct column.
        let peak_col = |img: &IqImage| {
            (0..grid.num_cols())
                .max_by(|&a, &b| img.value(row, a).abs().partial_cmp(&img.value(row, b).abs()).unwrap())
                .unwrap()
        };
        assert!((peak_col(&hann) as i64 - grid.nearest_col(0.0) as i64).abs() <= 1);
    }

    #[test]
    fn beamform_cube_matches_uniform_rf_beamforming() {
        let (rf, array) = point_target_frame(0.02);
        let grid = ImagingGrid::for_array(&array, 0.015, 0.01, 20, 10);
        let das = DelayAndSum::default();
        let direct = das.beamform_rf(&rf, &array, &grid, 1540.0).unwrap();
        let cube = crate::tof::tof_correct(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0).unwrap();
        let via_cube = das.beamform_cube(&cube, &grid).unwrap();
        for (a, b) in direct.iter().zip(via_cube.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn input_validation() {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::small(&array);
        let das = DelayAndSum::default();
        let wrong = ChannelData::zeros(64, 16, 31.25e6);
        assert!(matches!(das.beamform_rf(&wrong, &array, &grid, 1540.0), Err(BeamformError::ShapeMismatch { .. })));
        let ok = ChannelData::zeros(64, 32, 31.25e6);
        assert!(matches!(das.beamform_rf(&ok, &array, &grid, -1.0), Err(BeamformError::InvalidParameter { .. })));
        let tiny_cube = crate::tof::TofCube::zeros(2, 2, 4);
        assert!(das.beamform_cube(&tiny_cube, &grid).is_err());
    }
}
