//! Plane-wave time-of-flight computation and ToF correction.
//!
//! For a 0°-steered plane wave the round-trip delay from transmit to pixel `(x, z)` and
//! back to element `e` at lateral position `x_e` is
//!
//! ```text
//! τ(x, z, e) = ( z·cosθ + x·sinθ  +  sqrt((x − x_e)² + z²) ) / c
//! ```
//!
//! Sampling every receive channel at its per-pixel delay produces the **ToF-corrected
//! data cube** `(rows × cols × channels)`. Summing that cube over channels is DAS; the
//! cube is also exactly the input tensor of the Tiny-VBF and Tiny-CNN networks.

use crate::grid::ImagingGrid;
use crate::plan::BeamformPlan;
use crate::{BeamformError, BeamformResult};
use ultrasound::{ChannelData, LinearArray, PlaneWave};
use usdsp::interp::{sample_at, InterpMethod};

/// Per-pixel, per-channel time-of-flight corrected samples.
///
/// Stored row-major as `data[((row * cols) + col) * channels + ch]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TofCube {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
    channels: usize,
}

impl TofCube {
    /// Creates a zero-filled cube.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn zeros(rows: usize, cols: usize, channels: usize) -> Self {
        assert!(rows > 0 && cols > 0 && channels > 0, "TofCube dimensions must be nonzero");
        Self { data: vec![0.0; rows * cols * channels], rows, cols, channels }
    }

    /// Number of depth rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of lateral columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of receive channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Value for pixel `(row, col)` on channel `ch`.
    #[inline]
    pub fn value(&self, row: usize, col: usize, ch: usize) -> f32 {
        self.data[(row * self.cols + col) * self.channels + ch]
    }

    /// Mutable access to one entry.
    #[inline]
    pub fn value_mut(&mut self, row: usize, col: usize, ch: usize) -> &mut f32 {
        &mut self.data[(row * self.cols + col) * self.channels + ch]
    }

    /// The channel vector for one pixel.
    pub fn pixel_channels(&self, row: usize, col: usize) -> &[f32] {
        let start = (row * self.cols + col) * self.channels;
        &self.data[start..start + self.channels]
    }

    /// Flat view of the whole cube.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the whole cube (row-major pixels × channels).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Sums over the channel axis, producing a beamformed RF image (`rows × cols`)
    /// weighted by `apodization` (one weight per channel).
    ///
    /// # Panics
    ///
    /// Panics when `apodization.len() != channels`.
    pub fn sum_channels(&self, apodization: &[f32]) -> Vec<f32> {
        assert_eq!(apodization.len(), self.channels, "apodization length must match channel count");
        let mut out = vec![0.0f32; self.rows * self.cols];
        for (pixel, out_value) in out.iter_mut().enumerate() {
            let start = pixel * self.channels;
            let mut acc = 0.0f32;
            for ch in 0..self.channels {
                acc += self.data[start + ch] * apodization[ch];
            }
            *out_value = acc;
        }
        out
    }

    /// Peak absolute value over the whole cube.
    pub fn peak(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Normalizes the cube in place to the `[-1, 1]` interval the paper feeds the
    /// network (peak normalization). Returns the applied scale.
    pub fn normalize(&mut self) -> f32 {
        let peak = self.peak();
        if peak <= 0.0 {
            return 1.0;
        }
        let scale = 1.0 / peak;
        for v in self.data.iter_mut() {
            *v *= scale;
        }
        scale
    }
}

/// Round-trip delay in seconds from a plane-wave transmit to pixel `(x, z)` and back to
/// an element at `x_e`.
pub fn round_trip_delay(tx: PlaneWave, x: f32, z: f32, element_x: f32, sound_speed: f32) -> f32 {
    let transmit = tx.transmit_delay(x, z, sound_speed);
    let dx = x - element_x;
    let receive = (dx * dx + z * z).sqrt() / sound_speed;
    transmit + receive
}

/// Computes the ToF-corrected data cube for one acquisition, splitting image
/// rows across the workspace-default worker threads (see
/// [`runtime::default_threads`]).
///
/// # Example
///
/// ```
/// use beamforming::grid::ImagingGrid;
/// use beamforming::tof::tof_correct;
/// use ultrasound::{ChannelData, LinearArray, PlaneWave};
///
/// let array = LinearArray::small_test_array();
/// let data = ChannelData::zeros(256, array.num_elements(), array.sampling_frequency());
/// let grid = ImagingGrid::for_array(&array, 0.01, 0.005, 8, 8);
/// let cube = tof_correct(&data, &array, &grid, PlaneWave::zero_angle(), 1540.0)?;
/// assert_eq!((cube.rows(), cube.cols(), cube.channels()), (8, 8, array.num_elements()));
/// # Ok::<(), beamforming::BeamformError>(())
/// ```
///
/// # Errors
///
/// Returns [`BeamformError::ShapeMismatch`] when the channel count of `data` does not
/// match the probe and [`BeamformError::InvalidParameter`] for a non-positive sound
/// speed.
pub fn tof_correct(
    data: &ChannelData,
    array: &LinearArray,
    grid: &ImagingGrid,
    tx: PlaneWave,
    sound_speed: f32,
) -> BeamformResult<TofCube> {
    tof_correct_with_threads(data, array, grid, tx, sound_speed, runtime::default_threads())
}

/// [`tof_correct`] with an explicit worker-thread count.
///
/// Every cube entry depends only on its own `(row, col, ch)` coordinates, so the
/// result is bitwise identical for every `num_threads` (asserted by the
/// determinism tests).
///
/// # Errors
///
/// Same as [`tof_correct`].
pub fn tof_correct_with_threads(
    data: &ChannelData,
    array: &LinearArray,
    grid: &ImagingGrid,
    tx: PlaneWave,
    sound_speed: f32,
    num_threads: usize,
) -> BeamformResult<TofCube> {
    if sound_speed <= 0.0 {
        return Err(BeamformError::InvalidParameter { name: "sound_speed", reason: "must be positive".into() });
    }
    if data.num_channels() != array.num_elements() {
        return Err(BeamformError::ShapeMismatch {
            expected: format!("{} channels (probe elements)", array.num_elements()),
            actual: format!("{} channels", data.num_channels()),
        });
    }
    let rows = grid.num_rows();
    let cols = grid.num_cols();
    let channels = data.num_channels();
    let fs = data.sampling_frequency();
    let start_time = data.start_time();
    let traces = data.to_channel_traces();
    let element_xs = array.element_positions();

    let mut cube = TofCube::zeros(rows, cols, channels);
    let row_stride = cols * channels;
    runtime::par_map_rows(&mut cube.data, row_stride, num_threads, |first_row, block| {
        for (local, row_data) in block.chunks_mut(row_stride).enumerate() {
            let z = grid.z(first_row + local);
            for col in 0..cols {
                let x = grid.x(col);
                let t_tx = tx.transmit_delay(x, z, sound_speed);
                let pixel = &mut row_data[col * channels..(col + 1) * channels];
                for (ch, out) in pixel.iter_mut().enumerate() {
                    let dx = x - element_xs[ch];
                    let t_rx = (dx * dx + z * z).sqrt() / sound_speed;
                    let sample_index = (t_tx + t_rx - start_time) * fs;
                    *out = sample_at(&traces[ch], sample_index, InterpMethod::Linear);
                }
            }
        }
    });
    Ok(cube)
}

/// [`tof_correct`] through a precomputed dense [`BeamformPlan`] (see
/// [`BeamformPlan::for_tof`]), using the workspace-default worker threads.
///
/// The per-sample delay geometry is replayed from the plan's tables instead of
/// being recomputed, so streams amortise the `sqrt`-heavy setup across frames;
/// the cube is bitwise identical to [`tof_correct`] for every thread count.
///
/// # Errors
///
/// Returns [`BeamformError::InvalidParameter`] when the plan is not dense and
/// [`BeamformError::ShapeMismatch`] when the frame does not match the planned
/// format.
pub fn tof_correct_planned(data: &ChannelData, plan: &BeamformPlan) -> BeamformResult<TofCube> {
    plan.tof_correct(data)
}

/// [`tof_correct_planned`] with an explicit worker-thread count.
///
/// # Errors
///
/// Same as [`tof_correct_planned`].
pub fn tof_correct_planned_with_threads(
    data: &ChannelData,
    plan: &BeamformPlan,
    num_threads: usize,
) -> BeamformResult<TofCube> {
    plan.tof_correct_with_threads(data, num_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultrasound::{Medium, Phantom, PlaneWaveSimulator};

    #[test]
    fn round_trip_delay_matches_geometry() {
        let c = 1540.0;
        let tx = PlaneWave::zero_angle();
        // Pixel straight below an element: transmit z/c plus receive z/c.
        let d = round_trip_delay(tx, 0.0, 0.02, 0.0, c);
        assert!((d - 2.0 * 0.02 / c).abs() < 1e-9);
        // Offset element is farther away.
        assert!(round_trip_delay(tx, 0.0, 0.02, 0.005, c) > d);
    }

    #[test]
    fn cube_indexing_and_channel_vector() {
        let mut cube = TofCube::zeros(2, 3, 4);
        *cube.value_mut(1, 2, 3) = 5.0;
        assert_eq!(cube.value(1, 2, 3), 5.0);
        assert_eq!(cube.pixel_channels(1, 2)[3], 5.0);
        assert_eq!(cube.rows(), 2);
        assert_eq!(cube.cols(), 3);
        assert_eq!(cube.channels(), 4);
        assert_eq!(cube.as_slice().len(), 24);
    }

    #[test]
    fn sum_channels_applies_apodization() {
        let mut cube = TofCube::zeros(1, 1, 3);
        *cube.value_mut(0, 0, 0) = 1.0;
        *cube.value_mut(0, 0, 1) = 2.0;
        *cube.value_mut(0, 0, 2) = 3.0;
        let summed = cube.sum_channels(&[1.0, 1.0, 1.0]);
        assert_eq!(summed, vec![6.0]);
        let weighted = cube.sum_channels(&[1.0, 0.0, 2.0]);
        assert_eq!(weighted, vec![7.0]);
    }

    #[test]
    fn normalize_scales_to_unit_peak() {
        let mut cube = TofCube::zeros(1, 1, 2);
        *cube.value_mut(0, 0, 0) = -4.0;
        *cube.value_mut(0, 0, 1) = 2.0;
        cube.normalize();
        assert_eq!(cube.peak(), 1.0);
        assert_eq!(cube.value(0, 0, 0), -1.0);
        let mut zero = TofCube::zeros(1, 1, 2);
        assert_eq!(zero.normalize(), 1.0);
    }

    #[test]
    fn tof_correction_aligns_point_target_across_channels() {
        // After ToF correction, a point target's echo should appear (with the same sign
        // and similar magnitude) on every channel at the pixel containing the target.
        let array = LinearArray::small_test_array();
        let medium = Medium::lossless(1540.0);
        let sim = PlaneWaveSimulator::new(array.clone(), medium, 0.03);
        let target_z = 0.02;
        let phantom = Phantom::builder(0.01, 0.03).add_point_target(0.0, target_z, 1.0).build();
        let rf = sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap();

        let grid = ImagingGrid::for_array(&array, 0.015, 0.01, 41, 11);
        let cube = tof_correct(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0).unwrap();

        let row = grid.nearest_row(target_z);
        let col = grid.nearest_col(0.0);
        let aligned = cube.pixel_channels(row, col);
        // Coherence across channels: the mean should be a large fraction of the mean
        // absolute value (same-sign alignment).
        let mean: f32 = aligned.iter().sum::<f32>() / aligned.len() as f32;
        let mean_abs: f32 = aligned.iter().map(|v| v.abs()).sum::<f32>() / aligned.len() as f32;
        assert!(mean_abs > 0.0);
        assert!(mean.abs() / mean_abs > 0.6, "coherence {} / {}", mean, mean_abs);

        // A pixel far from the target should have much less energy.
        let far_row = grid.nearest_row(0.024);
        let far = cube.pixel_channels(far_row, col);
        let far_mean_abs: f32 = far.iter().map(|v| v.abs()).sum::<f32>() / far.len() as f32;
        assert!(mean_abs > 5.0 * far_mean_abs, "target {} vs far {}", mean_abs, far_mean_abs);
    }

    #[test]
    fn tof_correct_validates_inputs() {
        let array = LinearArray::small_test_array();
        let grid = ImagingGrid::small(&array);
        let wrong_channels = ChannelData::zeros(100, 8, 31.25e6);
        assert!(matches!(
            tof_correct(&wrong_channels, &array, &grid, PlaneWave::zero_angle(), 1540.0),
            Err(BeamformError::ShapeMismatch { .. })
        ));
        let ok_data = ChannelData::zeros(100, array.num_elements(), 31.25e6);
        assert!(matches!(
            tof_correct(&ok_data, &array, &grid, PlaneWave::zero_angle(), 0.0),
            Err(BeamformError::InvalidParameter { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dimension_cube_panics() {
        let _ = TofCube::zeros(0, 1, 1);
    }
}
