//! Determinism and equivalence tests for the parallel beamforming hot paths:
//! the row-parallel ToF correction and DAS must produce *bitwise identical*
//! images for every worker-thread count, and the batch API must match
//! per-frame beamforming.

use beamforming::das::DelayAndSum;
use beamforming::grid::ImagingGrid;
use beamforming::pipeline::Beamformer;
use beamforming::tof::{tof_correct_with_threads, TofCube};
use ultrasound::{ChannelData, LinearArray, Medium, Phantom, PlaneWave, PlaneWaveSimulator};

fn speckle_frame() -> (ChannelData, LinearArray) {
    let array = LinearArray::small_test_array();
    let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.03);
    let phantom = Phantom::builder(0.012, 0.03)
        .seed(9)
        .speckle_density(80.0)
        .add_point_target(0.0, 0.02, 5.0)
        .add_point_target(-0.004, 0.014, 3.0)
        .build();
    (sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap(), array)
}

#[test]
fn tof_correction_is_identical_across_thread_counts() {
    let (rf, array) = speckle_frame();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.015, 37, 19);
    let serial: TofCube =
        tof_correct_with_threads(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0, 1).unwrap();
    for threads in [2, 3, 4, 16] {
        let parallel =
            tof_correct_with_threads(&rf, &array, &grid, PlaneWave::zero_angle(), 1540.0, threads).unwrap();
        assert_eq!(serial, parallel, "threads {threads}");
    }
}

#[test]
fn das_rf_is_identical_across_thread_counts() {
    let (rf, array) = speckle_frame();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.015, 41, 23);
    for das in [DelayAndSum::default(), DelayAndSum::with_hann_aperture()] {
        let serial = das.beamform_rf_with_threads(&rf, &array, &grid, 1540.0, 1).unwrap();
        for threads in [2, 5, 16] {
            let parallel = das.beamform_rf_with_threads(&rf, &array, &grid, 1540.0, threads).unwrap();
            assert_eq!(serial, parallel, "threads {threads}");
        }
    }
}

#[test]
fn beamform_batch_matches_per_frame_beamforming() {
    let array = LinearArray::small_test_array();
    let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.03);
    let phantom = Phantom::builder(0.012, 0.03).seed(4).add_point_target(0.0, 0.02, 1.0).build();
    let frames: Vec<ChannelData> = [-4.0f32, 0.0, 4.0]
        .iter()
        .map(|&deg| sim.simulate(&phantom, PlaneWave::from_degrees(deg)).unwrap())
        .collect();
    let grid = ImagingGrid::for_array(&array, 0.015, 0.01, 24, 12);
    let das = DelayAndSum::default();
    let batch = das.beamform_batch(&frames, &array, &grid, 1540.0).unwrap();
    assert_eq!(batch.len(), frames.len());
    for (frame, image) in frames.iter().zip(batch.iter()) {
        let single = das.beamform(frame, &array, &grid, 1540.0).unwrap();
        assert_eq!(&single, image);
    }
}

#[test]
fn frame_parallel_batch_is_identical_across_thread_budgets() {
    // Frames across a batch run concurrently (outer workers) while each frame
    // stays internally row-parallel (inner budget); no split may change bits.
    let array = LinearArray::small_test_array();
    let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.03);
    let phantom = Phantom::builder(0.012, 0.03).seed(12).speckle_density(40.0).add_point_target(0.0, 0.018, 2.0).build();
    let frames: Vec<ChannelData> = [-3.0f32, -1.0, 1.0, 3.0]
        .iter()
        .map(|&deg| sim.simulate(&phantom, PlaneWave::from_degrees(deg)).unwrap())
        .collect();
    let grid = ImagingGrid::for_array(&array, 0.015, 0.01, 20, 10);
    for beamformer in [&DelayAndSum::default() as &dyn Beamformer, &beamforming::mvdr::Mvdr::fast()] {
        let serial = beamformer.beamform_batch_with_threads(&frames, &array, &grid, 1540.0, 1).unwrap();
        for budget in [2, 4, 7, 16] {
            let parallel = beamformer.beamform_batch_with_threads(&frames, &array, &grid, 1540.0, budget).unwrap();
            assert_eq!(serial, parallel, "{} budget {budget}", beamformer.name());
        }
    }
}

#[test]
fn beamform_batch_propagates_frame_errors() {
    let array = LinearArray::small_test_array();
    let grid = ImagingGrid::small(&array);
    let bad = vec![ChannelData::zeros(64, 16, 31.25e6)];
    assert!(DelayAndSum::default().beamform_batch(&bad, &array, &grid, 1540.0).is_err());
}
