//! Bitwise equivalence of the planned gather kernels against the direct
//! DAS / ToF / MVDR paths, across thread counts, interpolation methods and
//! apodization modes — the correctness contract of the `plan` subsystem.

use beamforming::apodization::Apodization;
use beamforming::das::DelayAndSum;
use beamforming::grid::ImagingGrid;
use beamforming::iq::IqImage;
use beamforming::mvdr::Mvdr;
use beamforming::pipeline::Beamformer;
use beamforming::plan::{BeamformPlan, FrameFormat, PlannedDas, PlannedMvdr};
use beamforming::tof::{tof_correct_planned_with_threads, tof_correct_with_threads};
use ultrasound::{ChannelData, LinearArray, Medium, Phantom, PlaneWave, PlaneWaveSimulator};
use usdsp::interp::InterpMethod;
use usdsp::Window;

const THREAD_COUNTS: [usize; 3] = [1, 2, 5];

fn test_frame() -> (ChannelData, LinearArray) {
    let array = LinearArray::small_test_array();
    let sim = PlaneWaveSimulator::new(array.clone(), Medium::soft_tissue(), 0.03);
    let phantom = Phantom::builder(0.012, 0.03)
        .seed(11)
        .speckle_density(40.0)
        .add_point_target(0.0, 0.02, 1.0)
        .add_point_target(-0.003, 0.014, 0.7)
        .build();
    (sim.simulate(&phantom, PlaneWave::zero_angle()).unwrap(), array)
}

fn assert_bits_eq(direct: &[f32], planned: &[f32], context: &str) {
    assert_eq!(direct.len(), planned.len(), "{context}: length");
    for (i, (a, b)) in direct.iter().zip(planned.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: sample {i} ({a} vs {b})");
    }
}

fn assert_iq_bits_eq(direct: &IqImage, planned: &IqImage, context: &str) {
    assert_bits_eq(&direct.to_interleaved(), &planned.to_interleaved(), context);
}

#[test]
fn planned_das_rf_is_bitwise_identical_across_methods_apodizations_and_threads() {
    let (data, array) = test_frame();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.014, 21, 13);
    let frame = FrameFormat::of(&data);
    let apodizations = [
        ("boxcar", Apodization::boxcar()),
        ("fixed-hann", Apodization::Fixed(Window::Hann)),
        ("dynamic-hann", Apodization::hann_dynamic()),
    ];
    let methods = [InterpMethod::Nearest, InterpMethod::Linear, InterpMethod::Cubic];
    for (apo_name, apodization) in apodizations {
        for method in methods {
            let das = DelayAndSum { apodization, interpolation: method, ..DelayAndSum::default() };
            let plan = das.plan(&array, &grid, 1540.0, frame).unwrap();
            for threads in THREAD_COUNTS {
                let direct = das.beamform_rf_with_threads(&data, &array, &grid, 1540.0, threads).unwrap();
                let planned = das.beamform_rf_planned_with_threads(&data, &plan, threads).unwrap();
                assert_bits_eq(&direct, &planned, &format!("{apo_name}/{method:?}/threads {threads}"));
            }
        }
    }
}

#[test]
fn planned_das_iq_is_bitwise_identical() {
    let (data, array) = test_frame();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.014, 24, 10);
    let das = DelayAndSum::with_hann_aperture();
    let plan = das.plan(&array, &grid, 1540.0, FrameFormat::of(&data)).unwrap();
    let direct = das.beamform_iq(&data, &array, &grid, 1540.0).unwrap();
    for threads in THREAD_COUNTS {
        let planned = das.beamform_iq_planned_with_threads(&data, &plan, threads).unwrap();
        assert_iq_bits_eq(&direct, &planned, &format!("iq threads {threads}"));
    }
}

#[test]
fn planned_tof_cube_is_bitwise_identical_across_threads() {
    let (data, array) = test_frame();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.014, 18, 9);
    let plan =
        BeamformPlan::for_tof(&array, &grid, PlaneWave::zero_angle(), 1540.0, FrameFormat::of(&data)).unwrap();
    let direct = tof_correct_with_threads(&data, &array, &grid, PlaneWave::zero_angle(), 1540.0, 1).unwrap();
    for threads in THREAD_COUNTS {
        let reference =
            tof_correct_with_threads(&data, &array, &grid, PlaneWave::zero_angle(), 1540.0, threads).unwrap();
        let planned = tof_correct_planned_with_threads(&data, &plan, threads).unwrap();
        assert_bits_eq(direct.as_slice(), reference.as_slice(), &format!("direct determinism, threads {threads}"));
        assert_bits_eq(direct.as_slice(), planned.as_slice(), &format!("tof threads {threads}"));
    }
}

#[test]
fn planned_tof_handles_steered_transmit() {
    let (data, array) = test_frame();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.012, 11, 7);
    let tx = PlaneWave::from_degrees(4.0);
    let plan = BeamformPlan::for_tof(&array, &grid, tx, 1540.0, FrameFormat::of(&data)).unwrap();
    let direct = tof_correct_with_threads(&data, &array, &grid, tx, 1540.0, 3).unwrap();
    let planned = plan.tof_correct_with_threads(&data, 3).unwrap();
    assert_bits_eq(direct.as_slice(), planned.as_slice(), "steered tof");
}

#[test]
fn planned_mvdr_is_bitwise_identical_across_methods_and_threads() {
    let (data, array) = test_frame();
    let grid = ImagingGrid::for_array(&array, 0.014, 0.01, 12, 8);
    for method in [InterpMethod::Nearest, InterpMethod::Linear, InterpMethod::Cubic] {
        let mvdr = Mvdr { interpolation: method, ..Mvdr::fast() };
        let plan = BeamformPlan::for_mvdr(&mvdr, &array, &grid, 1540.0, FrameFormat::of(&data)).unwrap();
        let direct = mvdr.beamform_iq_with_threads(&data, &array, &grid, 1540.0, 1).unwrap();
        for threads in THREAD_COUNTS {
            let reference = mvdr.beamform_iq_with_threads(&data, &array, &grid, 1540.0, threads).unwrap();
            let planned = mvdr.beamform_iq_planned_with_threads(&data, &plan, threads).unwrap();
            assert_iq_bits_eq(&direct, &reference, &format!("mvdr direct determinism {method:?}/{threads}"));
            assert_iq_bits_eq(&direct, &planned, &format!("mvdr {method:?}/threads {threads}"));
        }
    }
}

#[test]
fn planned_wrappers_match_direct_beamformers_through_the_trait() {
    let (data, array) = test_frame();
    let grid = ImagingGrid::for_array(&array, 0.014, 0.01, 12, 8);
    let das_direct = DelayAndSum::default().beamform(&data, &array, &grid, 1540.0).unwrap();
    let planned_das = PlannedDas::new(DelayAndSum::default());
    let das_planned = planned_das.beamform(&data, &array, &grid, 1540.0).unwrap();
    assert_iq_bits_eq(&das_direct, &das_planned, "PlannedDas");

    let mvdr_direct = Mvdr::fast().beamform(&data, &array, &grid, 1540.0).unwrap();
    let planned_mvdr = PlannedMvdr::new(Mvdr::fast());
    let mvdr_planned = planned_mvdr.beamform(&data, &array, &grid, 1540.0).unwrap();
    assert_iq_bits_eq(&mvdr_direct, &mvdr_planned, "PlannedMvdr");
    assert_eq!(planned_das.plans_built(), 1);
    assert_eq!(planned_mvdr.plans_built(), 1);
}

#[test]
fn planned_batch_matches_direct_batch() {
    let (data, array) = test_frame();
    let grid = ImagingGrid::for_array(&array, 0.014, 0.01, 10, 6);
    let frames = vec![data.clone(), data.clone(), data];
    let direct = DelayAndSum::default().beamform_batch_with_threads(&frames, &array, &grid, 1540.0, 4).unwrap();
    let planned = PlannedDas::new(DelayAndSum::default());
    let planned_imgs = planned.beamform_batch_with_threads(&frames, &array, &grid, 1540.0, 4).unwrap();
    assert_eq!(planned.plans_built(), 1, "one plan must serve the whole batch");
    for (i, (a, b)) in direct.iter().zip(planned_imgs.iter()).enumerate() {
        assert_iq_bits_eq(a, b, &format!("batch frame {i}"));
    }
}

#[test]
fn planned_and_direct_outputs_are_bitwise_identical_across_simd_modes() {
    use runtime::simd::{self, SimdMode};
    // Restore the environment-default dispatch even if an assertion fires.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            simd::force_mode(None);
        }
    }
    let _restore = Restore;

    let (data, array) = test_frame();
    let grid = ImagingGrid::for_array(&array, 0.012, 0.014, 18, 9);
    let das = DelayAndSum::with_hann_aperture();
    let frame = FrameFormat::of(&data);
    let plan = das.plan(&array, &grid, 1540.0, frame).unwrap();
    let tof_plan =
        BeamformPlan::for_tof(&array, &grid, PlaneWave::zero_angle(), 1540.0, frame).unwrap();

    // The asserted reference: the scalar tier, single-threaded.
    simd::force_mode(Some(SimdMode::Scalar));
    let rf_ref = das.beamform_rf_with_threads(&data, &array, &grid, 1540.0, 1).unwrap();
    let iq_ref = das.beamform_iq_planned_with_threads(&data, &plan, 1).unwrap();
    let tof_ref = tof_correct_planned_with_threads(&data, &tof_plan, 1).unwrap();

    for mode in simd::available_modes() {
        simd::force_mode(Some(mode));
        for threads in THREAD_COUNTS {
            let ctx = format!("{mode:?}/threads {threads}");
            let direct = das.beamform_rf_with_threads(&data, &array, &grid, 1540.0, threads).unwrap();
            assert_bits_eq(&rf_ref, &direct, &format!("direct rf {ctx}"));
            let planned = das.beamform_rf_planned_with_threads(&data, &plan, threads).unwrap();
            assert_bits_eq(&rf_ref, &planned, &format!("planned rf {ctx}"));
            let iq = das.beamform_iq_planned_with_threads(&data, &plan, threads).unwrap();
            assert_iq_bits_eq(&iq_ref, &iq, &format!("planned iq {ctx}"));
            let tof = tof_correct_planned_with_threads(&data, &tof_plan, threads).unwrap();
            assert_bits_eq(tof_ref.as_slice(), tof.as_slice(), &format!("planned tof {ctx}"));
        }
    }
}

#[test]
fn plan_rejects_mismatched_configurations() {
    let (data, array) = test_frame();
    let grid = ImagingGrid::for_array(&array, 0.014, 0.01, 8, 6);
    let frame = FrameFormat::of(&data);
    let das = DelayAndSum::default();
    let plan = das.plan(&array, &grid, 1540.0, frame).unwrap();
    // A different DAS configuration must not accept this plan.
    let other = DelayAndSum::with_hann_aperture();
    assert!(other.beamform_rf_planned(&data, &plan).is_err());
    // MVDR must reject a DAS plan and a method-mismatched dense plan.
    let mvdr = Mvdr::fast();
    assert!(mvdr.beamform_iq_planned(&data, &plan).is_err());
    let cubic_plan = BeamformPlan::for_mvdr(
        &Mvdr { interpolation: InterpMethod::Cubic, ..Mvdr::fast() },
        &array,
        &grid,
        1540.0,
        frame,
    )
    .unwrap();
    assert!(mvdr.beamform_iq_planned(&data, &cubic_plan).is_err());
    // A frame with a different start time must be rejected.
    let mut shifted = data.clone();
    shifted.set_start_time(1e-6);
    assert!(das.beamform_rf_planned(&shifted, &plan).is_err());
}
