//! Property-based tests for the beamforming substrate.

use beamforming::grid::{linspace, ImagingGrid};
use beamforming::linalg::{hermitian_dot, ComplexMatrix};
use beamforming::tof::round_trip_delay;
use proptest::prelude::*;
use ultrasound::{LinearArray, PlaneWave};
use usdsp::Complex32;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn round_trip_delay_is_minimal_at_the_closest_element(
        x in -0.01f32..0.01,
        z in 0.005f32..0.04,
    ) {
        // For a 0-degree plane wave the element directly above the pixel has the
        // smallest round-trip delay.
        let array = LinearArray::l11_5v();
        let tx = PlaneWave::zero_angle();
        let closest = array
            .element_positions()
            .iter()
            .copied()
            .min_by(|a, b| (a - x).abs().partial_cmp(&(b - x).abs()).unwrap())
            .unwrap();
        let d_closest = round_trip_delay(tx, x, z, closest, 1540.0);
        for ch in (0..array.num_elements()).step_by(13) {
            let d = round_trip_delay(tx, x, z, array.element_x(ch), 1540.0);
            prop_assert!(d + 1e-12 >= d_closest);
        }
    }

    #[test]
    fn round_trip_delay_exceeds_two_way_depth_travel(x in -0.015f32..0.015, z in 0.003f32..0.045, e in -0.019f32..0.019) {
        let tx = PlaneWave::zero_angle();
        let d = round_trip_delay(tx, x, z, e, 1540.0);
        prop_assert!(d >= 2.0 * z / 1540.0 - 1e-9);
    }

    #[test]
    fn grid_positions_are_monotone_and_within_bounds(rows in 2usize..64, cols in 2usize..64, depth in 0.005f32..0.05) {
        let array = LinearArray::l11_5v();
        let grid = ImagingGrid::for_array(&array, 0.004, depth, rows, cols);
        prop_assert_eq!(grid.num_pixels(), rows * cols);
        for r in 1..rows {
            prop_assert!(grid.z(r) > grid.z(r - 1));
        }
        for c in 1..cols {
            prop_assert!(grid.x(c) > grid.x(c - 1));
        }
        prop_assert!((grid.z(rows - 1) - (0.004 + depth)).abs() < 1e-5);
    }

    #[test]
    fn nearest_row_returns_the_closest_row(rows in 2usize..64, t in 0.0f32..1.0) {
        let array = LinearArray::l11_5v();
        let grid = ImagingGrid::for_array(&array, 0.005, 0.04, rows, 4);
        let z = 0.005 + t * 0.04;
        let row = grid.nearest_row(z);
        for r in 0..rows {
            prop_assert!((grid.z(row) - z).abs() <= (grid.z(r) - z).abs() + 1e-7);
        }
    }

    #[test]
    fn linspace_is_uniform(n in 2usize..200, a in -1.0f32..1.0, len in 0.001f32..2.0) {
        let v = linspace(a, a + len, n);
        prop_assert_eq!(v.len(), n);
        let step = (v[n - 1] - v[0]) / (n - 1) as f32;
        for w in v.windows(2) {
            prop_assert!(((w[1] - w[0]) - step).abs() < 1e-4);
        }
    }

    #[test]
    fn cholesky_solve_recovers_random_hermitian_systems(seed in 0u64..500, dim in 2usize..10) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Build A = sum of outer products + I (positive definite).
        let mut a = ComplexMatrix::identity(dim);
        for _ in 0..dim {
            let v: Vec<Complex32> = (0..dim)
                .map(|_| Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            a.accumulate_outer(&v, 1.0);
        }
        let x_true: Vec<Complex32> = (0..dim)
            .map(|_| Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve_hermitian(&b).unwrap();
        for (xs, xt) in x.iter().zip(x_true.iter()) {
            prop_assert!((xs.re - xt.re).abs() < 1e-2 && (xs.im - xt.im).abs() < 1e-2);
        }
        // Hermitian quadratic form x^H A x is real and positive.
        let ax = a.mul_vec(&x_true);
        let quad = hermitian_dot(&x_true, &ax);
        prop_assert!(quad.re > 0.0);
        prop_assert!(quad.im.abs() < 1e-2 * quad.re.abs().max(1.0));
    }
}
