//! Shared parallelism utilities for the Tiny-VBF workspace.
//!
//! Every hot path in the reproduction — the plane-wave simulator, time-of-flight
//! correction, DAS, the network row sweep and the blocked matmul — partitions one
//! output buffer into disjoint contiguous chunks and fills each chunk
//! independently. This crate centralises that pattern (previously hand-rolled
//! with `crossbeam` in `ultrasound::planewave`) on top of [`std::thread::scope`]:
//!
//! * [`par_chunks_mut`] — split a mutable slice into per-worker chunks,
//! * [`par_map_rows`] — the same, but aligned to logical row boundaries,
//! * [`default_threads`] — the workspace-wide worker count
//!   (`TINY_VBF_THREADS` env override, otherwise the machine's parallelism).
//!
//! # Determinism
//!
//! Both helpers hand each worker a *disjoint* chunk plus its global offset, so a
//! worker can only write values that depend on the element/row index — never on
//! the chunking. As long as the per-row computation is itself deterministic, the
//! output is **bitwise identical for every thread count**, which the test-suites
//! assert (`planewave::single_thread_matches_multi_thread` and friends).
//!
//! # Example
//!
//! ```
//! let mut image = vec![0.0f32; 6 * 4]; // 6 rows × 4 cols
//! runtime::par_map_rows(&mut image, 4, 2, |first_row, rows| {
//!     for (i, row) in rows.chunks_mut(4).enumerate() {
//!         let r = first_row + i;
//!         for (c, px) in row.iter_mut().enumerate() {
//!             *px = (r * 4 + c) as f32;
//!         }
//!     }
//! });
//! assert_eq!(image[13], 13.0);
//! ```

#![deny(missing_docs)]

use std::sync::OnceLock;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "TINY_VBF_THREADS";

/// Upper bound on the automatically chosen thread count (an explicit
/// [`THREADS_ENV`] override may exceed it).
pub const MAX_AUTO_THREADS: usize = 16;

/// The workspace-wide default number of worker threads.
///
/// Resolution order, cached after the first call:
/// 1. the `TINY_VBF_THREADS` environment variable (values ≥ 1),
/// 2. [`std::thread::available_parallelism`], capped at [`MAX_AUTO_THREADS`],
/// 3. `1` when neither is available.
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(value) = std::env::var(THREADS_ENV) {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_AUTO_THREADS)
    })
}

/// Splits `data` into at most `num_threads` contiguous chunks and runs
/// `f(offset, chunk)` for each on scoped worker threads, where `offset` is the
/// index of the chunk's first element in `data`.
///
/// With `num_threads <= 1` (or a single-element slice) `f` runs on the calling
/// thread with no spawning overhead. Chunks are disjoint, so no locking is
/// needed and the result is independent of the thread count.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_chunks_mut<T, F>(data: &mut [T], num_threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_map_rows(data, 1, num_threads, f);
}

/// Splits `data` — a row-major buffer of rows of `row_len` elements — into at
/// most `num_threads` blocks of *whole* rows and runs `f(first_row, block)` for
/// each block on scoped worker threads.
///
/// `first_row` is the global index of the block's first row, letting workers
/// recover absolute coordinates. With `num_threads <= 1` the single block is
/// processed inline on the calling thread.
///
/// # Panics
///
/// Panics when `row_len` is zero or does not divide `data.len()`; propagates
/// panics from `f`.
pub fn par_map_rows<T, F>(data: &mut [T], row_len: usize, num_threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "par_map_rows: row_len must be nonzero");
    assert_eq!(data.len() % row_len, 0, "par_map_rows: data length must be a whole number of rows");
    if data.is_empty() {
        return;
    }
    let num_rows = data.len() / row_len;
    // Nested parallel regions run inline: a worker that is itself one of N
    // outer workers would only oversubscribe the machine by spawning more
    // threads (e.g. the per-row network sweep calling the parallel matmul).
    let workers = if in_parallel_region() { 1 } else { num_threads.max(1).min(num_rows.max(1)) };
    if workers <= 1 {
        f(0, data);
        return;
    }
    let rows_per_worker = num_rows.div_ceil(workers);
    let chunk_len = rows_per_worker * row_len;
    std::thread::scope(|scope| {
        for (chunk_index, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || {
                IN_PARALLEL_REGION.set(true);
                f(chunk_index * rows_per_worker, chunk);
            });
        }
    });
}

thread_local! {
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is a [`par_map_rows`] / [`par_chunks_mut`]
/// worker. Nested helper calls detect this and run inline instead of
/// oversubscribing the machine with threads-inside-threads.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.get()
}

/// Runs `f(index)` for every index in `0..count` across at most `num_threads`
/// scoped worker threads and collects the results in index order.
///
/// Useful when the per-item result is an owned value (an image, a tensor)
/// rather than a slice fill. `f` receives each global index exactly once;
/// ordering of the returned vector matches the index, independent of the
/// thread count.
pub fn par_collect<R, F>(count: usize, num_threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    par_map_rows(&mut slots, 1, num_threads, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(offset + i));
        }
    });
    slots.into_iter().map(|s| s.expect("par_collect worker skipped a slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn par_chunks_covers_every_element_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut data = vec![0u32; 37];
            par_chunks_mut(&mut data, threads, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (offset + i) as u32 + 1;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as u32 + 1, "threads {threads}, index {i}");
            }
        }
    }

    #[test]
    fn par_map_rows_keeps_rows_whole() {
        let row_len = 5;
        for threads in [1, 2, 4, 7] {
            let mut data = vec![0usize; 13 * row_len];
            par_map_rows(&mut data, row_len, threads, |first_row, block| {
                assert_eq!(block.len() % row_len, 0);
                for (local, row) in block.chunks_mut(row_len).enumerate() {
                    for v in row.iter_mut() {
                        *v = first_row + local;
                    }
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i / row_len);
            }
        }
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let reference: Vec<f64> = {
            let mut d = vec![0.0f64; 101];
            par_chunks_mut(&mut d, 1, |off, c| {
                for (i, v) in c.iter_mut().enumerate() {
                    *v = ((off + i) as f64).sin();
                }
            });
            d
        };
        for threads in [2, 3, 5, 16] {
            let mut d = vec![0.0f64; 101];
            par_chunks_mut(&mut d, threads, |off, c| {
                for (i, v) in c.iter_mut().enumerate() {
                    *v = ((off + i) as f64).sin();
                }
            });
            assert_eq!(d, reference, "threads {threads}");
        }
    }

    #[test]
    fn par_collect_preserves_order() {
        for threads in [1, 3, 9] {
            let out = par_collect(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_parallel_calls_run_inline_and_still_cover_everything() {
        assert!(!in_parallel_region());
        let mut outer = vec![0usize; 8];
        par_chunks_mut(&mut outer, 4, |off, chunk| {
            assert!(in_parallel_region(), "workers must be flagged as parallel");
            let mut inner = vec![0u32; 16];
            par_chunks_mut(&mut inner, 4, |ioff, ichunk| {
                for (i, v) in ichunk.iter_mut().enumerate() {
                    *v = (ioff + i) as u32 + 1;
                }
            });
            for (i, v) in inner.iter().enumerate() {
                assert_eq!(*v, i as u32 + 1, "nested call must cover all elements");
            }
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = off + i;
            }
        });
        assert!(!in_parallel_region(), "flag must not leak to the caller");
        for (i, v) in outer.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut data: Vec<f32> = Vec::new();
        par_chunks_mut(&mut data, 4, |_, _| panic!("must not be called"));
        assert!(par_collect(0, 4, |i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_rows_panic() {
        let mut data = vec![0.0f32; 7];
        par_map_rows(&mut data, 3, 2, |_, _| {});
    }
}
