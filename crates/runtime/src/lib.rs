//! Shared parallelism utilities for the Tiny-VBF workspace.
//!
//! Every hot path in the reproduction — the plane-wave simulator, time-of-flight
//! correction, DAS, the network row sweep and the blocked matmul — partitions one
//! output buffer into disjoint contiguous chunks and fills each chunk
//! independently. This crate centralises that pattern (previously hand-rolled
//! with `crossbeam` in `ultrasound::planewave`) on top of [`std::thread::scope`]:
//!
//! * [`par_chunks_mut`] — split a mutable slice into per-worker chunks,
//! * [`par_map_rows`] — the same, but aligned to logical row boundaries,
//! * [`par_collect`] — index-ordered collection of owned per-item results,
//! * [`default_threads`] — the workspace-wide worker count
//!   (`TINY_VBF_THREADS` env override, otherwise the machine's parallelism).
//!
//! # Thread budgets (two-level parallelism)
//!
//! Multi-frame entry points (`Beamformer::beamform_batch`,
//! `TinyVbf::forward_batch`, the `serve` micro-batcher) want frames of a batch
//! to run *concurrently* while each frame stays *internally* row-parallel,
//! without the product of the two levels oversubscribing the machine. The
//! budgeted variants make that split explicit:
//!
//! * [`split_budget`] — divide a total thread budget into
//!   `(outer_workers, inner_threads)` for `items` outer work units,
//! * [`par_map_rows_with_budget`] / [`par_collect_budgeted`] — like their
//!   plain counterparts, but each spawned worker is granted `inner_threads`
//!   for its own nested `par_*` calls (instead of the default nested grant
//!   of 1, which runs nested regions inline),
//! * [`fair_shares`] / [`par_collect_shares`] — *heterogeneous* budgets: one
//!   total divided proportionally to per-unit weights, each unit running
//!   with its own nested grant (the `serve` router dispatches unequal
//!   per-engine sub-batches this way).
//!
//! A nested call never exceeds the budget its thread was granted, so the total
//! live worker count stays ≤ `outer_workers × inner_threads` ≤ the budget that
//! was split.
//!
//! # Determinism
//!
//! Every helper hands each worker a *disjoint* chunk plus its global offset, so a
//! worker can only write values that depend on the element/row index — never on
//! the chunking. As long as the per-row computation is itself deterministic, the
//! output is **bitwise identical for every thread count and budget**, which the
//! test-suites assert (`planewave::single_thread_matches_multi_thread` and
//! friends).
//!
//! # Example
//!
//! ```
//! let mut image = vec![0.0f32; 6 * 4]; // 6 rows × 4 cols
//! runtime::par_map_rows(&mut image, 4, 2, |first_row, rows| {
//!     for (i, row) in rows.chunks_mut(4).enumerate() {
//!         let r = first_row + i;
//!         for (c, px) in row.iter_mut().enumerate() {
//!             *px = (r * 4 + c) as f32;
//!         }
//!     }
//! });
//! assert_eq!(image[13], 13.0);
//! ```

#![deny(missing_docs)]

pub mod backoff;
pub mod json;
pub mod poisson;
pub mod simd;

use std::sync::OnceLock;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "TINY_VBF_THREADS";

/// Upper bound on the automatically chosen thread count (an explicit
/// [`THREADS_ENV`] override may exceed it).
pub const MAX_AUTO_THREADS: usize = 16;

/// The workspace-wide default number of worker threads.
///
/// Resolution order, cached after the first call:
/// 1. the `TINY_VBF_THREADS` environment variable (values ≥ 1),
/// 2. [`std::thread::available_parallelism`], capped at [`MAX_AUTO_THREADS`],
/// 3. `1` when neither is available.
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(value) = std::env::var(THREADS_ENV) {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_AUTO_THREADS)
    })
}

/// Splits `data` into at most `num_threads` contiguous chunks and runs
/// `f(offset, chunk)` for each on scoped worker threads, where `offset` is the
/// index of the chunk's first element in `data`.
///
/// With `num_threads <= 1` (or a single-element slice) `f` runs on the calling
/// thread with no spawning overhead. Chunks are disjoint, so no locking is
/// needed and the result is independent of the thread count.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_chunks_mut<T, F>(data: &mut [T], num_threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_map_rows(data, 1, num_threads, f);
}

/// Splits `data` — a row-major buffer of rows of `row_len` elements — into at
/// most `num_threads` blocks of *whole* rows and runs `f(first_row, block)` for
/// each block on scoped worker threads.
///
/// `first_row` is the global index of the block's first row, letting workers
/// recover absolute coordinates. With `num_threads <= 1` the single block is
/// processed inline on the calling thread.
///
/// # Panics
///
/// Panics when `row_len` is zero or does not divide `data.len()`; propagates
/// panics from `f`.
pub fn par_map_rows<T, F>(data: &mut [T], row_len: usize, num_threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    // Workers get a nested budget of 1: a worker that is itself one of N outer
    // workers would only oversubscribe the machine by spawning more threads
    // (e.g. the per-row network sweep calling the parallel matmul).
    par_map_rows_with_budget(data, row_len, num_threads, 1, f);
}

/// [`par_map_rows`], but each spawned worker is granted `inner_threads` for
/// its own nested `par_*` calls (the plain variant grants 1, running nested
/// regions inline).
///
/// This is the two-level primitive behind the frame-parallel batch paths:
/// the outer level distributes frames, the inner level lets each frame keep
/// its row parallelism, and the total live worker count stays bounded by
/// `num_threads × inner_threads`. Use [`split_budget`] to derive the two
/// factors from one overall budget.
///
/// When called from inside an existing parallel region, the outer worker
/// count is additionally capped by the calling thread's own nested budget.
///
/// # Panics
///
/// Same as [`par_map_rows`].
pub fn par_map_rows_with_budget<T, F>(data: &mut [T], row_len: usize, num_threads: usize, inner_threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "par_map_rows: row_len must be nonzero");
    assert_eq!(data.len() % row_len, 0, "par_map_rows: data length must be a whole number of rows");
    if data.is_empty() {
        return;
    }
    let num_rows = data.len() / row_len;
    // A nested call never exceeds the budget granted to the current thread.
    let cap = NESTED_BUDGET.get().unwrap_or(usize::MAX);
    let workers = num_threads.max(1).min(cap.max(1)).min(num_rows.max(1));
    // Per-worker grants must share the caller's own grant: `workers` threads
    // each granted `worker_budget` may not exceed `cap` in total, otherwise a
    // nested budgeted call could blow past its budget (`cap²` in the worst
    // case).
    let worker_budget = inner_threads.max(1).min((cap / workers.max(1)).max(1));
    if workers <= 1 {
        // The single inline "worker" gets the same grant a spawned one would,
        // so the `workers × inner_threads` bound holds even when the outer
        // level collapses to one (e.g. a batch of one frame must not let the
        // frame's nested row sweep spawn `default_threads` workers when the
        // caller budgeted 1).
        let _restore = BudgetGuard::grant(worker_budget);
        f(0, data);
        return;
    }
    let rows_per_worker = num_rows.div_ceil(workers);
    let chunk_len = rows_per_worker * row_len;
    std::thread::scope(|scope| {
        for (chunk_index, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || {
                NESTED_BUDGET.set(Some(worker_budget));
                f(chunk_index * rows_per_worker, chunk);
            });
        }
    });
}

thread_local! {
    /// `None` on free-standing threads (nested calls may use any worker count);
    /// `Some(b)` on `par_*` workers, which may use at most `b` threads for
    /// their own nested parallel regions.
    static NESTED_BUDGET: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Restores the calling thread's previous nested budget on drop (the inline
/// execution path borrows the caller's thread, so the grant must not leak —
/// spawned workers just die with their thread-local).
struct BudgetGuard {
    previous: Option<usize>,
}

impl BudgetGuard {
    fn grant(budget: usize) -> Self {
        let previous = NESTED_BUDGET.get();
        NESTED_BUDGET.set(Some(budget));
        Self { previous }
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        NESTED_BUDGET.set(self.previous);
    }
}

/// Whether the current thread is a [`par_map_rows`] / [`par_chunks_mut`]
/// worker. Nested helper calls on such a thread are capped by the worker's
/// nested thread budget (1 unless granted more via
/// [`par_map_rows_with_budget`] / [`par_collect_budgeted`]), so plain nested
/// calls run inline instead of oversubscribing the machine with
/// threads-inside-threads.
pub fn in_parallel_region() -> bool {
    NESTED_BUDGET.get().is_some()
}

/// Splits a total thread budget into `(outer_workers, inner_threads)` for
/// `items` outer work units: the smallest per-item share that still covers
/// every item (`inner = ⌈total / items⌉`), then as many outer workers as that
/// share affords (`outer = ⌊total / inner⌋`). This keeps `outer × inner`
/// close to `total` even when `items` does not divide it — e.g. 9 frames on
/// 16 threads run as 8 × 2 (16 threads live), not 9 × 1. Both factors are
/// ≥ 1, `outer ≤ max(items, 1)` and `outer × inner ≤ max(total, 1)`.
///
/// ```
/// assert_eq!(runtime::split_budget(8, 4), (4, 2));   // 4 frames × 2 threads each
/// assert_eq!(runtime::split_budget(16, 9), (8, 2));  // non-dividing: keep all 16 busy
/// assert_eq!(runtime::split_budget(8, 100), (8, 1)); // more frames than threads
/// assert_eq!(runtime::split_budget(8, 1), (1, 8));   // one frame keeps all threads
/// assert_eq!(runtime::split_budget(0, 3), (1, 1));
/// ```
pub fn split_budget(total: usize, items: usize) -> (usize, usize) {
    let total = total.max(1);
    let inner = total.div_ceil(items.clamp(1, total));
    let outer = (total / inner).max(1);
    (outer, inner)
}

/// Divides a total thread budget across work units proportionally to their
/// `weights` (largest-remainder allocation): every unit receives at least 1,
/// and the shares sum to exactly `total` when `total >= weights.len()`
/// (otherwise every unit gets the minimum share of 1). Zero weights are
/// treated as 1 so every unit stays schedulable. The allocation is
/// deterministic — remainder ties break toward the lower index.
///
/// This is how a serving router shares one bounded thread budget across
/// *heterogeneous* engines in one dispatch: a sub-batch with 3× the frames
/// gets roughly 3× the threads, instead of the uniform split of
/// [`split_budget`].
///
/// ```
/// assert_eq!(runtime::fair_shares(8, &[3, 1]), vec![6, 2]);
/// assert_eq!(runtime::fair_shares(16, &[2, 1, 1]), vec![8, 4, 4]);
/// assert_eq!(runtime::fair_shares(2, &[5, 5, 5]), vec![1, 1, 1]); // floor of 1 each
/// assert_eq!(runtime::fair_shares(5, &[0, 1]), vec![3, 2]); // zero weight -> weight 1, tie -> lower index
/// ```
pub fn fair_shares(total: usize, weights: &[usize]) -> Vec<usize> {
    let k = weights.len();
    if k == 0 {
        return Vec::new();
    }
    let total = total.max(1);
    if total <= k {
        return vec![1; k];
    }
    let weights: Vec<usize> = weights.iter().map(|&w| w.max(1)).collect();
    let weight_sum: usize = weights.iter().sum();
    // Everyone starts at the floor of 1; the surplus is split proportionally,
    // with the integer leftovers going to the largest remainders.
    let surplus = total - k;
    let mut shares = vec![1usize; k];
    let mut used = 0;
    for (share, &w) in shares.iter_mut().zip(&weights) {
        let extra = surplus * w / weight_sum;
        *share += extra;
        used += extra;
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(surplus * weights[i] % weight_sum), i));
    for &i in order.iter().take(surplus - used) {
        shares[i] += 1;
    }
    shares
}

/// Runs `f(index)` for every index in `0..shares.len()` on scoped worker
/// threads, granting worker `i` a nested thread budget of `shares[i]` —
/// the *heterogeneous-grant* counterpart of [`par_collect_budgeted`], whose
/// workers all receive the same inner budget.
///
/// Pair it with [`fair_shares`] to run unequal work units (e.g. a routing
/// server's per-engine sub-batches) concurrently under one total budget:
/// large units get proportionally more threads for their own nested `par_*`
/// calls. Results are collected in index order, so the output is independent
/// of scheduling, and — as with every helper here — `f`'s own determinism
/// makes the result identical for every budget.
///
/// The caller's own nested budget is honoured: when the requested shares sum
/// past the calling thread's grant they are rescaled with [`fair_shares`],
/// and at most one item per live worker is in flight, so the concurrently
/// active grants never sum past the caller's budget (each item always keeps
/// the floor grant of 1, i.e. fully inline nesting).
pub fn par_collect_shares<R, F>(shares: &[usize], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let count = shares.len();
    if count == 0 {
        return Vec::new();
    }
    let cap = NESTED_BUDGET.get().unwrap_or(usize::MAX);
    // Compare the *clamped* shares against the cap: every item runs with a
    // floor grant of 1, so zero shares still consume budget.
    let budgets: Vec<usize> = shares.iter().map(|&s| s.max(1)).collect();
    let budgets = if budgets.iter().sum::<usize>() > cap { fair_shares(cap, &budgets) } else { budgets };
    let workers = count.min(cap.max(1));
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    if workers <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            let _restore = BudgetGuard::grant(budgets[i]);
            *slot = Some(f(i));
        }
    } else {
        let per_worker = count.div_ceil(workers);
        std::thread::scope(|scope| {
            for (chunk_index, chunk) in slots.chunks_mut(per_worker).enumerate() {
                let f = &f;
                let budgets = &budgets;
                scope.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let i = chunk_index * per_worker + j;
                        NESTED_BUDGET.set(Some(budgets[i]));
                        *slot = Some(f(i));
                    }
                });
            }
        });
    }
    slots.into_iter().map(|s| s.expect("par_collect_shares worker skipped a slot")).collect()
}

/// Runs `f(index)` for every index in `0..count` across at most `num_threads`
/// scoped worker threads and collects the results in index order.
///
/// Useful when the per-item result is an owned value (an image, a tensor)
/// rather than a slice fill. `f` receives each global index exactly once;
/// ordering of the returned vector matches the index, independent of the
/// thread count.
pub fn par_collect<R, F>(count: usize, num_threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_collect_budgeted(count, num_threads, 1, f)
}

/// [`par_collect`], but each worker is granted `inner_threads` for nested
/// `par_*` calls — the owned-result counterpart of
/// [`par_map_rows_with_budget`].
///
/// This is how a batch of frames runs frame-concurrently while each frame's
/// own computation stays row-parallel: `par_collect_budgeted(frames, outer,
/// inner, |i| beamform(frame[i]))` with `(outer, inner) = split_budget(total,
/// frames)`.
pub fn par_collect_budgeted<R, F>(count: usize, num_threads: usize, inner_threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    par_map_rows_with_budget(&mut slots, 1, num_threads, inner_threads, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(offset + i));
        }
    });
    slots.into_iter().map(|s| s.expect("par_collect worker skipped a slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn par_chunks_covers_every_element_once() {
        for threads in [1, 2, 3, 8, 64] {
            let mut data = vec![0u32; 37];
            par_chunks_mut(&mut data, threads, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (offset + i) as u32 + 1;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as u32 + 1, "threads {threads}, index {i}");
            }
        }
    }

    #[test]
    fn par_map_rows_keeps_rows_whole() {
        let row_len = 5;
        for threads in [1, 2, 4, 7] {
            let mut data = vec![0usize; 13 * row_len];
            par_map_rows(&mut data, row_len, threads, |first_row, block| {
                assert_eq!(block.len() % row_len, 0);
                for (local, row) in block.chunks_mut(row_len).enumerate() {
                    for v in row.iter_mut() {
                        *v = first_row + local;
                    }
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i / row_len);
            }
        }
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let reference: Vec<f64> = {
            let mut d = vec![0.0f64; 101];
            par_chunks_mut(&mut d, 1, |off, c| {
                for (i, v) in c.iter_mut().enumerate() {
                    *v = ((off + i) as f64).sin();
                }
            });
            d
        };
        for threads in [2, 3, 5, 16] {
            let mut d = vec![0.0f64; 101];
            par_chunks_mut(&mut d, threads, |off, c| {
                for (i, v) in c.iter_mut().enumerate() {
                    *v = ((off + i) as f64).sin();
                }
            });
            assert_eq!(d, reference, "threads {threads}");
        }
    }

    #[test]
    fn par_collect_preserves_order() {
        for threads in [1, 3, 9] {
            let out = par_collect(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_parallel_calls_run_inline_and_still_cover_everything() {
        assert!(!in_parallel_region());
        let mut outer = vec![0usize; 8];
        par_chunks_mut(&mut outer, 4, |off, chunk| {
            assert!(in_parallel_region(), "workers must be flagged as parallel");
            let mut inner = vec![0u32; 16];
            par_chunks_mut(&mut inner, 4, |ioff, ichunk| {
                for (i, v) in ichunk.iter_mut().enumerate() {
                    *v = (ioff + i) as u32 + 1;
                }
            });
            for (i, v) in inner.iter().enumerate() {
                assert_eq!(*v, i as u32 + 1, "nested call must cover all elements");
            }
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = off + i;
            }
        });
        assert!(!in_parallel_region(), "flag must not leak to the caller");
        for (i, v) in outer.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut data: Vec<f32> = Vec::new();
        par_chunks_mut(&mut data, 4, |_, _| panic!("must not be called"));
        assert!(par_collect(0, 4, |i| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_rows_panic() {
        let mut data = vec![0.0f32; 7];
        par_map_rows(&mut data, 3, 2, |_, _| {});
    }

    #[test]
    fn split_budget_is_bounded_and_positive() {
        for total in 0..20 {
            for items in 0..20 {
                let (outer, inner) = split_budget(total, items);
                assert!(outer >= 1 && inner >= 1, "total {total} items {items}");
                assert!(outer * inner <= total.max(1), "total {total} items {items} -> {outer}x{inner}");
                if items >= 1 {
                    assert!(outer <= items.max(1));
                }
            }
        }
        assert_eq!(split_budget(16, 4), (4, 4));
        assert_eq!(split_budget(6, 4), (3, 2));
        assert_eq!(split_budget(7, 3), (2, 3));
    }

    #[test]
    fn budgeted_workers_may_nest_up_to_their_grant() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Outer: 2 workers each granted 3 inner threads. The nested call asks
        // for 8 but must be capped at 3; its grand-children get budget 1.
        let observed_inner = AtomicUsize::new(0);
        let mut outer = vec![0usize; 2];
        par_map_rows_with_budget(&mut outer, 1, 2, 3, |off, chunk| {
            assert!(in_parallel_region());
            let mut inner = vec![0usize; 12];
            let spawned = AtomicUsize::new(0);
            par_map_rows(&mut inner, 1, 8, |ioff, ichunk| {
                spawned.fetch_add(1, Ordering::Relaxed);
                // Grand-children are back to inline-only nesting.
                let mut leaf = vec![0u8; 4];
                par_chunks_mut(&mut leaf, 4, |_, c| {
                    assert_eq!(c.len(), 4, "leaf nested call must run inline as one chunk");
                });
                for (i, v) in ichunk.iter_mut().enumerate() {
                    *v = ioff + i;
                }
            });
            observed_inner.fetch_max(spawned.load(Ordering::Relaxed), Ordering::Relaxed);
            for (i, v) in inner.iter().enumerate() {
                assert_eq!(*v, i);
            }
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = off + i;
            }
        });
        assert_eq!(outer, vec![0, 1]);
        assert!(observed_inner.load(Ordering::Relaxed) <= 3, "nested call exceeded its budget");
    }

    #[test]
    fn nested_budgeted_call_cannot_exceed_its_own_grant() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A worker granted 4 threads issues a budgeted (4 × 4) call: the call
        // may use at most its grant of 4 in total, so its workers' own grants
        // collapse to 1 (leaf nesting must run inline).
        let leaf_chunks = AtomicUsize::new(0);
        let out = par_collect_budgeted(1, 1, 4, |_| {
            par_collect_budgeted(8, 4, 4, |i| {
                let mut leaf = vec![0u8; 6];
                par_map_rows(&mut leaf, 1, 6, |_, chunk| {
                    if chunk.len() == 6 {
                        leaf_chunks.fetch_add(1, Ordering::Relaxed);
                    }
                });
                i
            })
        });
        assert_eq!(out[0], (0..8).collect::<Vec<_>>());
        assert_eq!(leaf_chunks.load(Ordering::Relaxed), 8, "grand-children must run inline (grant 4 / 4 workers = 1)");
    }

    #[test]
    fn inline_outer_level_still_caps_nested_calls() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Outer level collapses to one worker (count = 1) with an inner grant
        // of 4: the nested call may spawn up to 4 workers, not the requested 8.
        let chunks_seen = AtomicUsize::new(0);
        let out = par_collect_budgeted(1, 1, 4, |_| {
            assert!(in_parallel_region(), "inline execution must carry the grant");
            let mut inner = vec![0usize; 12];
            par_map_rows(&mut inner, 1, 8, |off, chunk| {
                chunks_seen.fetch_add(1, Ordering::Relaxed);
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = off + i;
                }
            });
            inner
        });
        assert!(!in_parallel_region(), "grant must be restored after the inline call");
        assert_eq!(out[0], (0..12).collect::<Vec<_>>());
        assert_eq!(chunks_seen.load(Ordering::Relaxed), 4, "12 rows across a grant of 4");

        // Plain single-thread call: the inline grant is 1, so nesting is inline.
        let mut top = vec![0u8; 3];
        par_map_rows(&mut top, 1, 1, |_, _| {
            let mut leaf = vec![0u8; 8];
            let calls = AtomicUsize::new(0);
            par_chunks_mut(&mut leaf, 8, |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(calls.load(Ordering::Relaxed), 1, "num_threads 1 must mean fully serial");
        });
    }

    #[test]
    fn fair_shares_cover_the_budget_with_a_floor_of_one() {
        for total in 0..24 {
            for k in 1..6 {
                let weights: Vec<usize> = (0..k).map(|i| i * 3 % 5).collect();
                let shares = fair_shares(total, &weights);
                assert_eq!(shares.len(), k);
                assert!(shares.iter().all(|&s| s >= 1), "total {total} k {k}");
                if total >= k {
                    assert_eq!(shares.iter().sum::<usize>(), total.max(1), "total {total} k {k}");
                } else {
                    assert_eq!(shares, vec![1; k]);
                }
                // Deterministic.
                assert_eq!(shares, fair_shares(total, &weights));
            }
        }
        assert!(fair_shares(7, &[]).is_empty());
        // Heavier units never get fewer threads than lighter ones.
        let shares = fair_shares(13, &[1, 4, 2]);
        assert!(shares[1] >= shares[2] && shares[2] >= shares[0], "{shares:?}");
    }

    #[test]
    fn par_collect_shares_orders_results_and_grants_each_share() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Item 0 gets 3 threads, item 1 gets 1: a nested call from item 0 may
        // spawn up to 3 workers, item 1 must run nested regions inline.
        let max_chunks = [AtomicUsize::new(0), AtomicUsize::new(0)];
        let out = par_collect_shares(&[3, 1], |i| {
            assert!(in_parallel_region(), "share workers must carry their grant");
            let mut data = vec![0usize; 12];
            let chunks = AtomicUsize::new(0);
            par_map_rows(&mut data, 1, 8, |off, chunk| {
                chunks.fetch_add(1, Ordering::Relaxed);
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = off + j;
                }
            });
            max_chunks[i].fetch_max(chunks.load(Ordering::Relaxed), Ordering::Relaxed);
            assert_eq!(data, (0..12).collect::<Vec<_>>());
            i * 10
        });
        assert_eq!(out, vec![0, 10]);
        assert!(max_chunks[0].load(Ordering::Relaxed) <= 3, "item 0 exceeded its grant of 3");
        assert_eq!(max_chunks[1].load(Ordering::Relaxed), 1, "item 1's grant of 1 must run nesting inline");
        assert!(par_collect_shares(&[], |_: usize| 0usize).is_empty());
    }

    #[test]
    fn par_collect_shares_respects_the_callers_nested_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // The caller is itself granted 2 threads but asks for shares summing
        // to 16: the shares must be rescaled into the caller's grant, so no
        // item may nest wider than 2.
        let widest = AtomicUsize::new(0);
        par_collect_budgeted(1, 1, 2, |_| {
            let out = par_collect_shares(&[8, 8], |i| {
                let mut data = vec![0u8; 8];
                let chunks = AtomicUsize::new(0);
                par_map_rows(&mut data, 1, 8, |_, _| {
                    chunks.fetch_add(1, Ordering::Relaxed);
                });
                widest.fetch_max(chunks.load(Ordering::Relaxed), Ordering::Relaxed);
                i
            });
            assert_eq!(out, vec![0, 1]);
        });
        assert!(widest.load(Ordering::Relaxed) <= 2, "rescaled shares must fit the caller's grant");
    }

    #[test]
    fn par_collect_budgeted_matches_serial() {
        let reference: Vec<usize> = (0..17).map(|i| i * 3 + 1).collect();
        for (outer, inner) in [(1, 1), (2, 2), (4, 3), (17, 1)] {
            let out = par_collect_budgeted(17, outer, inner, |i| i * 3 + 1);
            assert_eq!(out, reference, "outer {outer} inner {inner}");
        }
    }
}
