//! Deterministic seeded Poisson arrival-process sampler.
//!
//! The scenario benchmark harness (`crates/bench`) offers *open-loop* load:
//! requests are sent at pre-scheduled instants regardless of how fast the
//! server responds, which is what exposes queueing collapse — a closed loop
//! self-throttles and hides it. The canonical open-loop model is a Poisson
//! process: independent exponentially-distributed inter-arrival gaps with
//! mean `1/rate`.
//!
//! [`PoissonArrivals`] draws those gaps from the workspace's vendored
//! seeded PRNG, so a load agent's schedule is a pure function of
//! `(rate, seed)`: re-running a scenario replays the identical offered
//! load, and distinct agents get independent schedules by seed offset. The
//! property tests in `tests/proptest_runtime.rs` pin determinism and the
//! `1/rate` mean.
//!
//! # Example
//!
//! ```
//! use runtime::poisson::PoissonArrivals;
//!
//! let mut arrivals = PoissonArrivals::new(1000.0, 42).unwrap(); // 1 kHz offered load
//! let first = arrivals.next_gap();
//! assert!(first > std::time::Duration::ZERO);
//! // Same (rate, seed) ⇒ same schedule.
//! assert_eq!(PoissonArrivals::new(1000.0, 42).unwrap().next_gap(), first);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Upper bound on one sampled gap, in seconds. The exponential tail is
/// unbounded; a pathological draw must not stall a bench agent for minutes,
/// and truncating at 10⁴ mean gaps changes the observable mean by far less
/// than the property-test tolerance.
const MAX_GAP_MEANS: f64 = 1.0e4;

/// A seeded Poisson arrival process: an infinite stream of exponential
/// inter-arrival gaps with mean `1/rate_hz`.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: StdRng,
    mean_gap_s: f64,
}

impl PoissonArrivals {
    /// Creates a sampler for `rate_hz` arrivals per second. Fails when the
    /// rate is not a finite positive number.
    pub fn new(rate_hz: f64, seed: u64) -> Result<Self, String> {
        if !rate_hz.is_finite() || rate_hz <= 0.0 {
            return Err(format!("Poisson arrival rate must be finite and positive, got {rate_hz}"));
        }
        Ok(Self { rng: StdRng::seed_from_u64(seed), mean_gap_s: 1.0 / rate_hz })
    }

    /// Draws the next inter-arrival gap (always positive and finite).
    pub fn next_gap(&mut self) -> Duration {
        // Inverse-CDF sampling: gap = -ln(1 - U) / rate with U ∈ [0, 1).
        // `1 - U` is in (0, 1], so the log is finite and ≤ 0.
        let u: f64 = self.rng.gen();
        let gaps = (-(1.0 - u).ln()).min(MAX_GAP_MEANS);
        // Clamp away exact zero so consecutive arrivals stay ordered.
        Duration::from_secs_f64((gaps * self.mean_gap_s).max(1.0e-9))
    }

    /// The first `n` *absolute* arrival offsets from the schedule start
    /// (cumulative sums of [`PoissonArrivals::next_gap`]), in order.
    pub fn schedule(&mut self, n: usize) -> Vec<Duration> {
        let mut at = Duration::ZERO;
        (0..n)
            .map(|_| {
                at += self.next_gap();
                at
            })
            .collect()
    }

    /// Mean inter-arrival gap (`1/rate`) this sampler was built with.
    pub fn mean_gap(&self) -> Duration {
        Duration::from_secs_f64(self.mean_gap_s)
    }
}

impl Iterator for PoissonArrivals {
    type Item = Duration;

    /// Yields inter-arrival gaps forever.
    fn next(&mut self) -> Option<Duration> {
        Some(self.next_gap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_rates() {
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(PoissonArrivals::new(rate, 1).is_err(), "rate {rate} must be rejected");
        }
    }

    #[test]
    fn schedule_is_strictly_increasing() {
        let mut arrivals = PoissonArrivals::new(5000.0, 7).unwrap();
        let schedule = arrivals.schedule(256);
        for pair in schedule.windows(2) {
            assert!(pair[0] < pair[1], "arrival offsets must be strictly ordered");
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a: Vec<Duration> = PoissonArrivals::new(100.0, 1).unwrap().take(32).collect();
        let b: Vec<Duration> = PoissonArrivals::new(100.0, 2).unwrap().take(32).collect();
        assert_ne!(a, b);
    }
}
