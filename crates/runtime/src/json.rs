//! Minimal JSON value model, parser and writer.
//!
//! The workspace builds offline and the vendored `serde` stand-in is a
//! no-op marker crate, so machine-readable reports (the scenario benchmark
//! harness, the `serve` stats wire format, `BENCH_baseline.json`) need a
//! real JSON implementation of their own. This module provides the small,
//! dependency-free subset those consumers use:
//!
//! * [`Json`] — an order-preserving value tree (objects keep insertion
//!   order, so written reports have a stable, diff-friendly field order),
//! * [`Json::parse`] — a strict recursive-descent parser with a depth
//!   limit and byte-offset error reporting,
//! * [`Json::to_string_compact`] / [`Json::to_string_pretty`] — writers
//!   whose `f64` formatting round-trips exactly (shortest representation),
//!   so `parse(write(v)) == v` for every finite value.
//!
//! Non-finite numbers have no JSON representation; [`Json::num`] maps them
//! to `null` (and the parser rejects `NaN`/`Infinity` tokens), which keeps
//! every value this module can hold serializable.
//!
//! # Example
//!
//! ```
//! use runtime::json::Json;
//!
//! let value = Json::obj([
//!     ("name", Json::str("baseline_latency")),
//!     ("p50_us", Json::num(812.0)),
//!     ("ok", Json::Bool(true)),
//! ]);
//! let text = value.to_string_compact();
//! assert_eq!(text, r#"{"name":"baseline_latency","p50_us":812,"ok":true}"#);
//! assert_eq!(Json::parse(&text).unwrap(), value);
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects combined).
const MAX_DEPTH: usize = 128;

/// A JSON value.
///
/// Objects are stored as insertion-ordered `(key, value)` vectors rather
/// than a map: report schemas stay in the order they were built, and the
/// handful of key lookups the workspace performs are over objects far too
/// small for a map to win.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (integers are written without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A number value; non-finite inputs become [`Json::Null`] (JSON cannot
    /// represent them).
    pub fn num(value: f64) -> Json {
        if value.is_finite() {
            Json::Num(value)
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object (`None` for other variants or missing
    /// keys; the first matching key wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives, fractions and
    /// magnitudes above 2^53 where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a `usize` (same exactness rules as [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` for [`Json::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses one JSON document (trailing non-whitespace is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Writes the value on one line with no spaces — the framing used by
    /// the bench agents' line-oriented stdio/TCP protocol.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Writes the value indented by two spaces per level (the layout of the
    /// committed report files).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_str(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Writes a finite `f64`. Integral values in the exactly-representable
/// range print without a decimal point; everything else uses Rust's
/// shortest round-trip `f64` formatting, so parsing the output recovers
/// the bit-identical value.
fn write_num(out: &mut String, n: f64) {
    use fmt::Write as _;
    if n.fract() == 0.0 && n.abs() <= 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than the supported limit"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uXXXX` holding the low half.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the escape already
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // remainder is valid UTF-8; find the next char boundary).
                    let rest = &self.bytes[self.pos..];
                    let len = match std::str::from_utf8(rest) {
                        Ok(s) => s.chars().next().map_or(1, char::len_utf8),
                        Err(_) => 1,
                    };
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let value: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        if !value.is_finite() {
            return Err(self.error("number overflows f64"));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse(r#""a\nbA""#).unwrap(), Json::str("a\nbA"));
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let parsed = Json::parse(r#"{"b": [1, {"x": null}], "a": "z"}"#).unwrap();
        let pairs = parsed.as_obj().unwrap();
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
        assert_eq!(parsed.get("b").unwrap().as_arr().unwrap()[0], Json::Num(1.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "[1] 2", "nan", "Infinity"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_unpaired_surrogates() {
        assert!(Json::parse(r#""\ud800""#).is_err());
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("😀"));
    }

    #[test]
    fn compact_round_trip_is_exact() {
        let value = Json::obj([
            ("count", Json::num(18446744073709551615u64 as f64)),
            ("pi", Json::num(std::f64::consts::PI)),
            ("tiny", Json::num(5.0e-324)),
            ("text", Json::str("line\n\"quoted\" \\ unicode ü")),
            ("list", Json::arr([Json::Null, Json::Bool(false), Json::num(-0.5)])),
            ("empty_obj", Json::obj::<String>([])),
            ("empty_arr", Json::arr([])),
        ]);
        let compact = value.to_string_compact();
        assert!(!compact.contains('\n'), "compact form must stay on one line");
        assert_eq!(Json::parse(&compact).unwrap(), value);
        assert_eq!(Json::parse(&value.to_string_pretty()).unwrap(), value);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::num(42.0).to_string_compact(), "42");
        assert_eq!(Json::num(-7.0).to_string_compact(), "-7");
        assert_eq!(Json::num(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn depth_limit_rejects_pathological_input() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
    }
}
