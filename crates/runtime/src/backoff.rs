//! Deterministic exponential backoff with jitter.
//!
//! Every retry loop in the workspace that talks across a process boundary
//! (the shard client's connect/request retries, the bench agents'
//! startup connects) needs the same policy: wait `base × 2^attempt`,
//! capped, with a random jitter factor so a fleet of clients whose peer
//! just died does not retry in lockstep and re-stampede it the moment it
//! comes back.
//!
//! The jitter is drawn from the workspace's vendored seeded PRNG, so a
//! backoff sequence is a pure function of `(config, seed)` — scenario
//! benchmark runs that retry are replayable, and the property tests in
//! `tests/proptest_runtime.rs` can pin the envelope exactly:
//!
//! * every delay lies in `[envelope/2, envelope]` where
//!   `envelope = min(cap, base × 2^attempt)` (the "equal jitter" band),
//! * the same `(config, seed)` always yields the identical sequence,
//! * delays never exceed `cap`, for any attempt count.
//!
//! # Example
//!
//! ```
//! use runtime::backoff::Backoff;
//! use std::time::Duration;
//!
//! let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_millis(200), 42);
//! let first = backoff.next_delay();
//! assert!(first >= Duration::from_millis(5) && first <= Duration::from_millis(10));
//! // Same (config, seed) ⇒ same sequence.
//! let mut replay = Backoff::new(Duration::from_millis(10), Duration::from_millis(200), 42);
//! assert_eq!(replay.next_delay(), first);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Exponent cap: beyond 2^32 doublings every sane base has long since hit
/// the cap, and `checked_mul` keeps the arithmetic overflow-free anyway.
const MAX_DOUBLINGS: u32 = 32;

/// A seeded exponential-backoff delay generator.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: StdRng,
}

impl Backoff {
    /// Creates a generator whose `n`-th delay (0-indexed) is jittered over
    /// the envelope `min(cap, base × 2^n)`. A zero `base` always yields
    /// zero delays (retry immediately); `cap` below `base` clamps the
    /// envelope from the first attempt.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self { base, cap, attempt: 0, rng: StdRng::seed_from_u64(seed) }
    }

    /// The deterministic upper envelope of the `attempt`-th delay:
    /// `min(cap, base × 2^attempt)`.
    pub fn envelope(&self, attempt: u32) -> Duration {
        let doublings = attempt.min(MAX_DOUBLINGS);
        self.base
            .checked_mul(1u32 << doublings.min(31))
            .map_or(self.cap, |d| d.min(self.cap))
            .min(self.cap)
    }

    /// Number of delays drawn so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Draws the next delay: uniformly jittered over the upper half of the
    /// current envelope (`[envelope/2, envelope]`), then advances the
    /// attempt counter. The half-floor keeps retries spaced out enough to
    /// be useful while the jitter decorrelates concurrent clients.
    pub fn next_delay(&mut self) -> Duration {
        let envelope = self.envelope(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        if envelope.is_zero() {
            return Duration::ZERO;
        }
        let jitter: f64 = self.rng.gen_range(0.5f64..1.0);
        // `mul_f64` cannot overflow here: jitter < 1 and envelope ≤ cap.
        envelope.mul_f64(jitter)
    }

    /// Resets the attempt counter (the jitter stream keeps advancing, so a
    /// reset does not replay the previous delays).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_follow_the_capped_envelope() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let mut backoff = Backoff::new(base, cap, 7);
        for attempt in 0..12u32 {
            let envelope = backoff.envelope(attempt);
            assert_eq!(envelope, base.saturating_mul(1 << attempt.min(6)).min(cap));
            let delay = backoff.next_delay();
            assert!(delay <= envelope, "attempt {attempt}: {delay:?} > {envelope:?}");
            assert!(delay >= envelope / 2, "attempt {attempt}: {delay:?} < half envelope");
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let a: Vec<Duration> =
            std::iter::repeat_with({
                let mut b = Backoff::new(Duration::from_millis(5), Duration::from_secs(1), 99);
                move || b.next_delay()
            })
            .take(16)
            .collect();
        let b: Vec<Duration> =
            std::iter::repeat_with({
                let mut b = Backoff::new(Duration::from_millis(5), Duration::from_secs(1), 99);
                move || b.next_delay()
            })
            .take(16)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_base_retries_immediately() {
        let mut backoff = Backoff::new(Duration::ZERO, Duration::from_secs(1), 1);
        for _ in 0..4 {
            assert_eq!(backoff.next_delay(), Duration::ZERO);
        }
    }

    #[test]
    fn reset_restarts_the_envelope() {
        let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 3);
        for _ in 0..6 {
            backoff.next_delay();
        }
        backoff.reset();
        assert_eq!(backoff.attempts(), 0);
        assert!(backoff.next_delay() <= Duration::from_millis(10));
    }
}
