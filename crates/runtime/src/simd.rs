//! Portable SIMD kernels with runtime dispatch.
//!
//! Every hot inner loop in the workspace (planned DAS/ToF/MVDR gathers, the
//! register-tiled matmul, Hilbert/FIR passes, and the integer fixed-point
//! datapath) funnels through this module. Three dispatch tiers exist:
//!
//! * **Scalar** — straightforward per-element loops. For reductions the
//!   scalar path is written in the *lane-order* defined below, and is the
//!   asserted bitwise reference for the other tiers.
//! * **Portable** — the same arithmetic restructured around fixed-width
//!   `[T; N]` lane blocks so LLVM can autovectorize it on any target.
//! * **Native** — the portable bodies recompiled under
//!   `#[target_feature(enable = "avx2")]` (x86-64) or `"neon"` (aarch64),
//!   selected by runtime CPU detection, plus hand-written intrinsics where
//!   autovectorization cannot reach (the i16 pair-madd kernel). The native
//!   wrappers deliberately do **not** enable FMA: fusing a multiply-add
//!   would change rounding and break bitwise identity with the reference.
//!
//! The active tier is picked once from the [`SIMD_ENV`] environment variable
//! (`scalar`, `portable` or `native`) falling back to auto-detection, and can
//! be overridden in-process with [`force_mode`] (used by equivalence tests to
//! sweep tiers). Because every tier is bitwise identical, concurrent tests
//! observing a forced mode mid-sweep still compute identical results.
//!
//! # Lane-order reduction contract
//!
//! Reducing kernels ([`reduce_lanes`], [`das_gather_reduce`]) accumulate
//! element `e` into lane `e % 8`, tree-reduce the eight lanes as
//! `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, then fold the ragged tail in
//! element order. All tiers implement exactly this order, which is why their
//! floating-point results are bit-for-bit equal.
//!
//! # Adding a kernel
//!
//! 1. Write the scalar body (the reference) and, if it reduces, make it use
//!    the lane order above.
//! 2. Write the portable body over `[T; N]` chunks with the identical
//!    per-element / per-lane arithmetic order.
//! 3. Add a `#[target_feature]` wrapper in the `native` module (usually just
//!    calling the portable body; intrinsics only when required — and never
//!    FMA or reassociating ones).
//! 4. Dispatch through [`mode`] and extend the proptest suite in
//!    `tests/simd_equivalence.rs` with the new kernel.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable selecting the dispatch tier: `scalar`, `portable` or
/// `native`. Unset or unrecognised values auto-detect (native when the CPU
/// supports it, portable otherwise).
pub const SIMD_ENV: &str = "TINY_VBF_SIMD";

/// Fixed lane width for `f32` kernels. Matches a 256-bit AVX2 register; NEON
/// targets process the same logical 8-lane block as two 128-bit halves.
pub const F32_LANES: usize = 8;

/// The dispatch tier a kernel call runs under. See the module docs for the
/// exact semantics of each tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Plain per-element loops; the bitwise reference.
    Scalar,
    /// Autovectorization-friendly fixed-width lane blocks.
    Portable,
    /// `#[target_feature]` specializations behind runtime CPU detection.
    Native,
}

impl SimdMode {
    /// Stable lowercase label (`"scalar"` / `"portable"` / `"native"`),
    /// matching the [`SIMD_ENV`] vocabulary.
    pub fn label(&self) -> &'static str {
        match self {
            SimdMode::Scalar => "scalar",
            SimdMode::Portable => "portable",
            SimdMode::Native => "native",
        }
    }
}

/// 0 = no override, 1 = scalar, 2 = portable, 3 = native.
static FORCED: AtomicU8 = AtomicU8::new(0);
static DEFAULT: OnceLock<SimdMode> = OnceLock::new();

/// Whether this CPU supports the native tier (AVX2 on x86-64, NEON on
/// aarch64). Other architectures report `false` and fall back to portable.
pub fn native_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(target_arch = "aarch64")]
    {
        true // NEON is baseline for the aarch64 targets we build.
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

fn detect() -> SimdMode {
    let requested = std::env::var(SIMD_ENV).unwrap_or_default();
    let mode = match requested.to_ascii_lowercase().as_str() {
        "scalar" => SimdMode::Scalar,
        "portable" => SimdMode::Portable,
        "native" => SimdMode::Native,
        _ => {
            if native_available() {
                SimdMode::Native
            } else {
                SimdMode::Portable
            }
        }
    };
    clamp_to_available(mode)
}

fn clamp_to_available(mode: SimdMode) -> SimdMode {
    if mode == SimdMode::Native && !native_available() {
        SimdMode::Portable
    } else {
        mode
    }
}

/// The dispatch tier kernels currently run under. Resolved once from
/// [`SIMD_ENV`] + CPU detection, unless overridden by [`force_mode`].
/// Guaranteed never to return [`SimdMode::Native`] on a CPU without the
/// required features.
pub fn mode() -> SimdMode {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdMode::Scalar,
        2 => SimdMode::Portable,
        3 => SimdMode::Native,
        _ => *DEFAULT.get_or_init(detect),
    }
}

/// Override the dispatch tier in-process (`None` restores the environment
/// default). Intended for equivalence tests that sweep tiers; requesting
/// `Native` on a CPU without it silently clamps to `Portable`. Because all
/// tiers are bitwise identical, racing callers still get identical numbers.
pub fn force_mode(mode: Option<SimdMode>) {
    let raw = match mode.map(clamp_to_available) {
        None => 0,
        Some(SimdMode::Scalar) => 1,
        Some(SimdMode::Portable) => 2,
        Some(SimdMode::Native) => 3,
    };
    FORCED.store(raw, Ordering::Relaxed);
}

/// Every tier that can run on this machine, scalar first. Test helper for
/// exhaustive mode sweeps.
pub fn available_modes() -> Vec<SimdMode> {
    let mut modes = vec![SimdMode::Scalar, SimdMode::Portable];
    if native_available() {
        modes.push(SimdMode::Native);
    }
    modes
}

#[inline(always)]
fn lane_tree(l: &[f32; F32_LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

// ---------------------------------------------------------------------------
// f32 kernels: scalar references
// ---------------------------------------------------------------------------

fn axpy_scalar(acc: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (o, &v) in acc.iter_mut().zip(x) {
        *o += a * v;
    }
}

fn scale_scalar(values: &mut [f32], factor: f32) {
    for v in values {
        *v *= factor;
    }
}

fn reduce_scalar(values: &[f32]) -> f32 {
    let chunks = values.len() / F32_LANES;
    let mut lanes = [0.0f32; F32_LANES];
    for c in 0..chunks {
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane += values[c * F32_LANES + j];
        }
    }
    let mut acc = lane_tree(&lanes);
    for &v in &values[chunks * F32_LANES..] {
        acc += v;
    }
    acc
}

fn gather_two_tap_scalar(flat: &[f32], tap0: &[u32], tap1: &[u32], w0: &[f32], w1: &[f32], out: &mut [f32]) {
    debug_assert!(tap1.len() == tap0.len() && w0.len() == tap0.len() && w1.len() == tap0.len());
    debug_assert_eq!(out.len(), tap0.len());
    for (j, o) in out.iter_mut().enumerate() {
        *o = flat[tap0[j] as usize] * w0[j] + flat[tap1[j] as usize] * w1[j];
    }
}

fn gather_two_tap_interleaved_scalar(
    flat: &[f32],
    tap0: &[u32],
    tap1: &[u32],
    w0: &[f32],
    w1: &[f32],
    out: &mut [f32],
) {
    debug_assert!(tap1.len() == tap0.len() && w0.len() == tap0.len() && w1.len() == tap0.len());
    debug_assert_eq!(out.len(), 2 * tap0.len());
    for j in 0..tap0.len() {
        let t0 = 2 * tap0[j] as usize;
        let t1 = 2 * tap1[j] as usize;
        out[2 * j] = flat[t0] * w0[j] + flat[t1] * w1[j];
        out[2 * j + 1] = flat[t0 + 1] * w0[j] + flat[t1 + 1] * w1[j];
    }
}

fn das_gather_reduce_scalar(
    flat: &[f32],
    tap0: &[u32],
    tap1: &[u32],
    w0: &[f32],
    w1: &[f32],
    apod: &[f32],
) -> f32 {
    let len = tap0.len();
    debug_assert!(tap1.len() == len && w0.len() == len && w1.len() == len && apod.len() == len);
    let chunks = len / F32_LANES;
    let mut lanes = [0.0f32; F32_LANES];
    for c in 0..chunks {
        for (j, lane) in lanes.iter_mut().enumerate() {
            let e = c * F32_LANES + j;
            let v = flat[tap0[e] as usize] * w0[e] + flat[tap1[e] as usize] * w1[e];
            *lane += apod[e] * v;
        }
    }
    let mut acc = lane_tree(&lanes);
    for e in chunks * F32_LANES..len {
        let v = flat[tap0[e] as usize] * w0[e] + flat[tap1[e] as usize] * w1[e];
        acc += apod[e] * v;
    }
    acc
}

// ---------------------------------------------------------------------------
// f32 kernels: portable lane bodies (identical arithmetic order)
// ---------------------------------------------------------------------------

#[inline(always)]
fn axpy_lanes(acc: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    let mut oc = acc.chunks_exact_mut(F32_LANES);
    let mut xc = x.chunks_exact(F32_LANES);
    for (o, v) in (&mut oc).zip(&mut xc) {
        let v: &[f32; F32_LANES] = v.try_into().unwrap();
        for (j, o) in o.iter_mut().enumerate() {
            *o += a * v[j];
        }
    }
    for (o, &v) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += a * v;
    }
}

#[inline(always)]
fn scale_lanes(values: &mut [f32], factor: f32) {
    let mut vc = values.chunks_exact_mut(F32_LANES);
    for block in &mut vc {
        for v in block.iter_mut() {
            *v *= factor;
        }
    }
    for v in vc.into_remainder() {
        *v *= factor;
    }
}

#[inline(always)]
fn reduce_lanes_body(values: &[f32]) -> f32 {
    let mut lanes = [0.0f32; F32_LANES];
    let mut vc = values.chunks_exact(F32_LANES);
    for block in &mut vc {
        let block: &[f32; F32_LANES] = block.try_into().unwrap();
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane += block[j];
        }
    }
    let mut acc = lane_tree(&lanes);
    for &v in vc.remainder() {
        acc += v;
    }
    acc
}

#[inline(always)]
fn gather_two_tap_lanes(flat: &[f32], tap0: &[u32], tap1: &[u32], w0: &[f32], w1: &[f32], out: &mut [f32]) {
    debug_assert!(tap1.len() == tap0.len() && w0.len() == tap0.len() && w1.len() == tap0.len());
    debug_assert_eq!(out.len(), tap0.len());
    let len = tap0.len();
    let blocks = len / F32_LANES;
    for b in 0..blocks {
        let base = b * F32_LANES;
        let mut vals = [0.0f32; F32_LANES];
        for (j, val) in vals.iter_mut().enumerate() {
            let e = base + j;
            *val = flat[tap0[e] as usize] * w0[e] + flat[tap1[e] as usize] * w1[e];
        }
        out[base..base + F32_LANES].copy_from_slice(&vals);
    }
    for e in blocks * F32_LANES..len {
        out[e] = flat[tap0[e] as usize] * w0[e] + flat[tap1[e] as usize] * w1[e];
    }
}

#[inline(always)]
fn gather_two_tap_interleaved_lanes(
    flat: &[f32],
    tap0: &[u32],
    tap1: &[u32],
    w0: &[f32],
    w1: &[f32],
    out: &mut [f32],
) {
    gather_two_tap_interleaved_scalar(flat, tap0, tap1, w0, w1, out);
}

#[inline(always)]
fn das_gather_reduce_body(
    flat: &[f32],
    tap0: &[u32],
    tap1: &[u32],
    w0: &[f32],
    w1: &[f32],
    apod: &[f32],
) -> f32 {
    let len = tap0.len();
    debug_assert!(tap1.len() == len && w0.len() == len && w1.len() == len && apod.len() == len);
    let chunks = len / F32_LANES;
    let mut lanes = [0.0f32; F32_LANES];
    for c in 0..chunks {
        let base = c * F32_LANES;
        let mut vals = [0.0f32; F32_LANES];
        for (j, val) in vals.iter_mut().enumerate() {
            let e = base + j;
            *val = flat[tap0[e] as usize] * w0[e] + flat[tap1[e] as usize] * w1[e];
        }
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane += apod[base + j] * vals[j];
        }
    }
    let mut acc = lane_tree(&lanes);
    for e in chunks * F32_LANES..len {
        let v = flat[tap0[e] as usize] * w0[e] + flat[tap1[e] as usize] * w1[e];
        acc += apod[e] * v;
    }
    acc
}

// ---------------------------------------------------------------------------
// Integer kernels (exact arithmetic — every tier is trivially identical, the
// native tier just executes more of it per instruction)
// ---------------------------------------------------------------------------

#[inline(always)]
fn i64_axpy_body(acc: &mut [i64], a: i32, x: &[i32]) {
    debug_assert_eq!(acc.len(), x.len());
    let a = a as i64;
    for (o, &v) in acc.iter_mut().zip(x) {
        *o += a * v as i64;
    }
}

#[inline(always)]
fn madd_pairs_body(acc: &mut [i32], a_pair: i32, pairs: &[i32]) {
    debug_assert_eq!(acc.len(), pairs.len());
    let a0 = a_pair as i16 as i32;
    let a1 = (a_pair >> 16) as i16 as i32;
    for (o, &p) in acc.iter_mut().zip(pairs) {
        let w0 = p as i16 as i32;
        let w1 = (p >> 16) as i16 as i32;
        *o += a0 * w0 + a1 * w1;
    }
}

#[inline(always)]
fn madd_block_body(acc: &mut [i32], a_pairs: &[i32], b_pairs: &[i32]) {
    let m = acc.len();
    debug_assert_eq!(b_pairs.len(), a_pairs.len() * m);
    for (p, &ap) in a_pairs.iter().enumerate() {
        madd_pairs_body(acc, ap, &b_pairs[p * m..(p + 1) * m]);
    }
}

#[inline(always)]
fn i64_mac_row_body(acc: &mut [i64], a_row: &[i32], b: &[i32]) {
    let m = acc.len();
    debug_assert_eq!(b.len(), a_row.len() * m);
    for (p, &a) in a_row.iter().enumerate() {
        i64_axpy_body(acc, a, &b[p * m..(p + 1) * m]);
    }
}

#[inline(always)]
fn madd_dot_body(a_pairs: &[i32], b_pairs: &[i32]) -> i64 {
    debug_assert_eq!(a_pairs.len(), b_pairs.len());
    let mut acc = 0i64;
    for (&a, &b) in a_pairs.iter().zip(b_pairs) {
        let a0 = a as i16 as i32;
        let a1 = (a >> 16) as i16 as i32;
        let b0 = b as i16 as i32;
        let b1 = (b >> 16) as i16 as i32;
        acc += (a0 * b0 + a1 * b1) as i64;
    }
    acc
}

#[inline(always)]
fn accumulate_i32_into_i64_body(acc: &mut [i64], add: &[i32]) {
    debug_assert_eq!(acc.len(), add.len());
    for (o, &v) in acc.iter_mut().zip(add) {
        *o += v as i64;
    }
}

/// Pack two i16-range fixed-point codes into the `(lo, hi)` pair layout the
/// [`madd_pairs`] kernel consumes. Both values must fit in `i16`.
#[inline(always)]
pub fn pack_i16_pair(lo: i32, hi: i32) -> i32 {
    debug_assert!((-32768..=32767).contains(&lo) && (-32768..=32767).contains(&hi));
    (((hi as u16 as u32) << 16) | (lo as u16 as u32)) as i32
}

// ---------------------------------------------------------------------------
// Fixed-point boundary conversion kernels (f32 <-> codes)
// ---------------------------------------------------------------------------

/// Scalar reference for [`quantize_codes`]: `round(v / 2^-frac)` half away
/// from zero, saturated to `[min_raw, max_raw]`, NaN to code 0. `inv_step`
/// must be the exact power of two `2^frac` so the multiply equals the
/// division bit-for-bit.
fn quantize_codes_scalar(values: &[f32], inv_step: f32, max_raw: i32, min_raw: i32, out: &mut [i32]) {
    debug_assert_eq!(values.len(), out.len());
    let max_f = max_raw as f32;
    let min_f = min_raw as f32;
    for (o, &v) in out.iter_mut().zip(values) {
        let scaled = (v * inv_step).round();
        *o = if scaled.is_nan() {
            0
        } else if scaled >= max_f {
            max_raw
        } else if scaled <= min_f {
            min_raw
        } else {
            scaled as i32
        };
    }
}

/// Element-wise with one rounding per element, so the scalar loop is already
/// the canonical order; the portable tier shares it verbatim.
#[inline(always)]
fn quantize_codes_body(values: &[f32], inv_step: f32, max_raw: i32, min_raw: i32, out: &mut [i32]) {
    quantize_codes_scalar(values, inv_step, max_raw, min_raw, out)
}

/// Scalar reference for [`codes_to_f32`]: `code as f32 * step`. With `step`
/// a power of two the multiply is exact, so every tier agrees trivially.
fn codes_to_f32_scalar(codes: &[i32], step: f32, out: &mut [f32]) {
    debug_assert_eq!(codes.len(), out.len());
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = c as f32 * step;
    }
}

#[inline(always)]
fn codes_to_f32_body(codes: &[i32], step: f32, out: &mut [f32]) {
    codes_to_f32_scalar(codes, step, out)
}

/// Scalar reference for [`shift_round_saturate_i32`]: drop `shift` fractional
/// bits from exact i32 accumulators — round half away from zero — then clamp
/// to `[min_raw, max_raw]`. Matches `FixedFormat::requantize_i64` on every
/// input except `i32::MIN` (the magnitude fold would wrap), which callers
/// must exclude through their accumulator bound.
fn shift_round_saturate_i32_scalar(values: &[i32], shift: u32, min_raw: i32, max_raw: i32, out: &mut [i32]) {
    debug_assert_eq!(values.len(), out.len());
    debug_assert!(shift < 32);
    if shift == 0 {
        for (o, &v) in out.iter_mut().zip(values) {
            *o = v.clamp(min_raw, max_raw);
        }
        return;
    }
    for (o, &v) in out.iter_mut().zip(values) {
        debug_assert!(v != i32::MIN);
        let sign = v >> 31;
        let mag = (v ^ sign) - sign;
        // `(mag + half) >> shift` without the overflowing add: the rounding
        // carry out of the discarded bits is exactly bit `shift - 1` of the
        // magnitude.
        let rounded = (mag >> shift) + ((mag >> (shift - 1)) & 1);
        *o = ((rounded ^ sign) - sign).clamp(min_raw, max_raw);
    }
}

#[inline(always)]
fn shift_round_saturate_i32_body(values: &[i32], shift: u32, min_raw: i32, max_raw: i32, out: &mut [i32]) {
    shift_round_saturate_i32_scalar(values, shift, min_raw, max_raw, out)
}

// ---------------------------------------------------------------------------
// Native tier
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod native {
    use super::*;

    // SAFETY (all wrappers): dispatch reaches this module only when `mode()`
    // returned `Native`, which `clamp_to_available` guarantees implies AVX2
    // was detected at runtime. `avx2` deliberately does not imply `fma`, so
    // no multiply-add can be fused and every body stays bitwise identical to
    // its scalar reference.

    #[target_feature(enable = "avx2")]
    unsafe fn axpy_avx2(acc: &mut [f32], a: f32, x: &[f32]) {
        axpy_lanes(acc, a, x)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn scale_avx2(values: &mut [f32], factor: f32) {
        scale_lanes(values, factor)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn reduce_avx2(values: &[f32]) -> f32 {
        reduce_lanes_body(values)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gather_two_tap_avx2(
        flat: &[f32],
        tap0: &[u32],
        tap1: &[u32],
        w0: &[f32],
        w1: &[f32],
        out: &mut [f32],
    ) {
        gather_two_tap_lanes(flat, tap0, tap1, w0, w1, out)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gather_two_tap_interleaved_avx2(
        flat: &[f32],
        tap0: &[u32],
        tap1: &[u32],
        w0: &[f32],
        w1: &[f32],
        out: &mut [f32],
    ) {
        gather_two_tap_interleaved_lanes(flat, tap0, tap1, w0, w1, out)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn das_gather_reduce_avx2(
        flat: &[f32],
        tap0: &[u32],
        tap1: &[u32],
        w0: &[f32],
        w1: &[f32],
        apod: &[f32],
    ) -> f32 {
        das_gather_reduce_body(flat, tap0, tap1, w0, w1, apod)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn i64_axpy_avx2(acc: &mut [i64], a: i32, x: &[i32]) {
        i64_axpy_body(acc, a, x)
    }

    /// 16 integer MACs per instruction via `_mm256_madd_epi16`. Exact: the
    /// caller bounds `2 * |a| * |w|` per lane below `i32::MAX`, which also
    /// excludes the lone wrapping case of `madd` (both products equal to
    /// `(-32768)^2`).
    #[target_feature(enable = "avx2")]
    unsafe fn madd_pairs_avx2(acc: &mut [i32], a_pair: i32, pairs: &[i32]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(acc.len(), pairs.len());
        let av = _mm256_set1_epi32(a_pair);
        let n = acc.len();
        let blocks = n / 8;
        for b in 0..blocks {
            let i = b * 8;
            // SAFETY: i + 8 <= n for both slices; loads/stores are unaligned.
            let p = _mm256_loadu_si256(pairs.as_ptr().add(i) as *const __m256i);
            let o = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            let r = _mm256_add_epi32(o, _mm256_madd_epi16(p, av));
            _mm256_storeu_si256(acc.as_mut_ptr().add(i) as *mut __m256i, r);
        }
        // Half-width tail: narrow panels (e.g. head_dim-wide attention
        // outputs) would otherwise fall through to the scalar loop entirely.
        let mut i = blocks * 8;
        if n - i >= 4 {
            // SAFETY: i + 4 <= n for both slices.
            let p = _mm_loadu_si128(pairs.as_ptr().add(i) as *const __m128i);
            let o = _mm_loadu_si128(acc.as_ptr().add(i) as *const __m128i);
            let r = _mm_add_epi32(o, _mm_madd_epi16(p, _mm256_castsi256_si128(av)));
            _mm_storeu_si128(acc.as_mut_ptr().add(i) as *mut __m128i, r);
            i += 4;
        }
        madd_pairs_body(&mut acc[i..], a_pair, &pairs[i..]);
    }

    /// Register-resident dot product over packed i16 pairs: the i32 lane
    /// accumulator never touches memory, so narrow output panels avoid the
    /// store-to-load chain of [`madd_pairs_avx2`]. Exact under the caller's
    /// per-lane bound `2 * ceil(len/8) * max|a| * max|w| < i32::MAX`; the
    /// ragged tail accumulates directly in i64 and needs no bound.
    #[target_feature(enable = "avx2")]
    unsafe fn madd_dot_avx2(a_pairs: &[i32], b_pairs: &[i32]) -> i64 {
        use std::arch::x86_64::*;
        debug_assert_eq!(a_pairs.len(), b_pairs.len());
        let n = a_pairs.len();
        let blocks = n / 8;
        let mut acc = 0i64;
        if blocks > 0 {
            let mut lanes = _mm256_setzero_si256();
            for b in 0..blocks {
                let i = b * 8;
                // SAFETY: i + 8 <= n for both slices; loads are unaligned.
                let a = _mm256_loadu_si256(a_pairs.as_ptr().add(i) as *const __m256i);
                let w = _mm256_loadu_si256(b_pairs.as_ptr().add(i) as *const __m256i);
                lanes = _mm256_add_epi32(lanes, _mm256_madd_epi16(a, w));
            }
            let lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(lanes));
            let hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(lanes));
            let sum = _mm256_add_epi64(lo, hi);
            let s128 = _mm_add_epi64(_mm256_castsi256_si128(sum), _mm256_extracti128_si256::<1>(sum));
            let s = _mm_add_epi64(s128, _mm_unpackhi_epi64(s128, s128));
            acc = _mm_cvtsi128_si64(s);
        }
        acc + madd_dot_body(&a_pairs[blocks * 8..], &b_pairs[blocks * 8..])
    }

    /// Widen four i32 lanes to i64 and add — exact sign extension, so the
    /// result is identical to the per-element reference.
    #[target_feature(enable = "avx2")]
    unsafe fn accumulate_i32_into_i64_avx2(acc: &mut [i64], add: &[i32]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(acc.len(), add.len());
        let n = acc.len();
        let blocks = n / 4;
        for b in 0..blocks {
            let i = b * 4;
            // SAFETY: i + 4 <= n for both slices; loads/stores are unaligned.
            let a = _mm_loadu_si128(add.as_ptr().add(i) as *const __m128i);
            let o = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            let r = _mm256_add_epi64(o, _mm256_cvtepi32_epi64(a));
            _mm256_storeu_si256(acc.as_mut_ptr().add(i) as *mut __m256i, r);
        }
        accumulate_i32_into_i64_body(&mut acc[blocks * 4..], &add[blocks * 4..]);
    }

    /// Vectorized [`quantize_codes`]. Bitwise identity with the scalar
    /// reference:
    ///
    /// * round half away from zero is computed as `trunc(x + copysign(0.5,
    ///   x))`, which equals `f32::round` for every `|x| < 2^23` (0.5 divides
    ///   the ulp there, so the add is exact); any `|x| >= 2^23` is integral,
    ///   lies outside the 24-bit code range, and saturates to the same bound
    ///   in both paths, so the zone where the two roundings could differ is
    ///   unobservable.
    /// * saturation compares the rounded value against `max_raw as f32` /
    ///   `min_raw as f32` exactly like the reference (ordered compares, so
    ///   NaN lanes fall through and are blended to code 0 afterwards).
    /// * the final cvt sees an integral value clamped into `[min_raw,
    ///   max_raw]`, hence exact under any rounding mode.
    #[target_feature(enable = "avx2")]
    unsafe fn quantize_codes_avx2(values: &[f32], inv_step: f32, max_raw: i32, min_raw: i32, out: &mut [i32]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(values.len(), out.len());
        let inv = _mm256_set1_ps(inv_step);
        let max_f = _mm256_set1_ps(max_raw as f32);
        let min_f = _mm256_set1_ps(min_raw as f32);
        let max_i = _mm256_set1_epi32(max_raw);
        let min_i = _mm256_set1_epi32(min_raw);
        let half = _mm256_set1_ps(0.5);
        let sign_bit = _mm256_set1_ps(-0.0);
        let zero = _mm256_setzero_si256();
        let n = values.len();
        let blocks = n / 8;
        for b in 0..blocks {
            let i = b * 8;
            // SAFETY: i + 8 <= n for both slices; loads/stores are unaligned.
            let v = _mm256_loadu_ps(values.as_ptr().add(i));
            let scaled = _mm256_mul_ps(v, inv);
            let signed_half = _mm256_or_ps(half, _mm256_and_ps(scaled, sign_bit));
            let rounded = _mm256_round_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(
                _mm256_add_ps(scaled, signed_half),
            );
            let sat_hi = _mm256_cmp_ps::<_CMP_GE_OQ>(rounded, max_f);
            let sat_lo = _mm256_cmp_ps::<_CMP_LE_OQ>(rounded, min_f);
            let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(scaled, scaled);
            // Clamp before the cvt so every lane converts exactly (a NaN lane
            // becomes `min_f` under max_ps's second-operand rule and is then
            // blended to zero).
            let clamped = _mm256_min_ps(_mm256_max_ps(rounded, min_f), max_f);
            let mut codes = _mm256_cvtps_epi32(clamped);
            codes = _mm256_blendv_epi8(codes, max_i, _mm256_castps_si256(sat_hi));
            codes = _mm256_blendv_epi8(codes, min_i, _mm256_castps_si256(sat_lo));
            codes = _mm256_blendv_epi8(codes, zero, _mm256_castps_si256(nan));
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, codes);
        }
        quantize_codes_body(&values[blocks * 8..], inv_step, max_raw, min_raw, &mut out[blocks * 8..]);
    }

    /// Vectorized [`codes_to_f32`]: cvtdq2ps rounds to nearest exactly like
    /// `c as f32`, and the power-of-two multiply is exact, so the result is
    /// bitwise identical by construction.
    #[target_feature(enable = "avx2")]
    unsafe fn codes_to_f32_avx2(codes: &[i32], step: f32, out: &mut [f32]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(codes.len(), out.len());
        let stepv = _mm256_set1_ps(step);
        let n = codes.len();
        let blocks = n / 8;
        for b in 0..blocks {
            let i = b * 8;
            // SAFETY: i + 8 <= n for both slices; loads/stores are unaligned.
            let c = _mm256_loadu_si256(codes.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(_mm256_cvtepi32_ps(c), stepv));
        }
        codes_to_f32_body(&codes[blocks * 8..], step, &mut out[blocks * 8..]);
    }

    /// 8-wide requantize: pure integer shifts/adds/compares, so every lane
    /// computes exactly the scalar reference's value — bitwise identical by
    /// construction. The rounding carry is recovered from bit `shift − 1` of
    /// the magnitude, mirroring the scalar overflow-free formulation.
    #[target_feature(enable = "avx2")]
    unsafe fn shift_round_saturate_i32_avx2(values: &[i32], shift: u32, min_raw: i32, max_raw: i32, out: &mut [i32]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(values.len(), out.len());
        let minv = _mm256_set1_epi32(min_raw);
        let maxv = _mm256_set1_epi32(max_raw);
        let n = values.len();
        let blocks = n / 8;
        if shift == 0 {
            for b in 0..blocks {
                let i = b * 8;
                // SAFETY: i + 8 <= n for both slices; loads/stores unaligned.
                let v = _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i);
                let clamped = _mm256_min_epi32(_mm256_max_epi32(v, minv), maxv);
                _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, clamped);
            }
        } else {
            let cnt = _mm_cvtsi32_si128(shift as i32);
            let cnt1 = _mm_cvtsi32_si128(shift as i32 - 1);
            let one = _mm256_set1_epi32(1);
            for b in 0..blocks {
                let i = b * 8;
                // SAFETY: i + 8 <= n for both slices; loads/stores unaligned.
                let v = _mm256_loadu_si256(values.as_ptr().add(i) as *const __m256i);
                let sign = _mm256_srai_epi32::<31>(v);
                let mag = _mm256_sub_epi32(_mm256_xor_si256(v, sign), sign);
                let q = _mm256_sra_epi32(mag, cnt);
                let carry = _mm256_and_si256(_mm256_sra_epi32(mag, cnt1), one);
                let r = _mm256_add_epi32(q, carry);
                let res = _mm256_sub_epi32(_mm256_xor_si256(r, sign), sign);
                let clamped = _mm256_min_epi32(_mm256_max_epi32(res, minv), maxv);
                _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, clamped);
            }
        }
        shift_round_saturate_i32_body(&values[blocks * 8..], shift, min_raw, max_raw, &mut out[blocks * 8..]);
    }

    /// Whole-block madd: one dispatch for an entire packed weight panel.
    /// Same-feature calls inline, so the inner intrinsic loop fuses.
    #[target_feature(enable = "avx2")]
    unsafe fn madd_block_avx2(acc: &mut [i32], a_pairs: &[i32], b_pairs: &[i32]) {
        let m = acc.len();
        debug_assert_eq!(b_pairs.len(), a_pairs.len() * m);
        for (p, &ap) in a_pairs.iter().enumerate() {
            madd_pairs_avx2(acc, ap, &b_pairs[p * m..(p + 1) * m]);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn i64_mac_row_avx2(acc: &mut [i64], a_row: &[i32], b: &[i32]) {
        i64_mac_row_body(acc, a_row, b)
    }

    pub fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
        debug_assert!(native_available());
        unsafe { axpy_avx2(acc, a, x) }
    }
    pub fn scale(values: &mut [f32], factor: f32) {
        debug_assert!(native_available());
        unsafe { scale_avx2(values, factor) }
    }
    pub fn reduce(values: &[f32]) -> f32 {
        debug_assert!(native_available());
        unsafe { reduce_avx2(values) }
    }
    pub fn gather_two_tap(flat: &[f32], tap0: &[u32], tap1: &[u32], w0: &[f32], w1: &[f32], out: &mut [f32]) {
        debug_assert!(native_available());
        unsafe { gather_two_tap_avx2(flat, tap0, tap1, w0, w1, out) }
    }
    pub fn gather_two_tap_interleaved(
        flat: &[f32],
        tap0: &[u32],
        tap1: &[u32],
        w0: &[f32],
        w1: &[f32],
        out: &mut [f32],
    ) {
        debug_assert!(native_available());
        unsafe { gather_two_tap_interleaved_avx2(flat, tap0, tap1, w0, w1, out) }
    }
    pub fn das_gather_reduce(
        flat: &[f32],
        tap0: &[u32],
        tap1: &[u32],
        w0: &[f32],
        w1: &[f32],
        apod: &[f32],
    ) -> f32 {
        debug_assert!(native_available());
        unsafe { das_gather_reduce_avx2(flat, tap0, tap1, w0, w1, apod) }
    }
    pub fn i64_axpy(acc: &mut [i64], a: i32, x: &[i32]) {
        debug_assert!(native_available());
        unsafe { i64_axpy_avx2(acc, a, x) }
    }
    pub fn madd_pairs(acc: &mut [i32], a_pair: i32, pairs: &[i32]) {
        debug_assert!(native_available());
        unsafe { madd_pairs_avx2(acc, a_pair, pairs) }
    }
    pub fn accumulate_i32_into_i64(acc: &mut [i64], add: &[i32]) {
        debug_assert!(native_available());
        unsafe { accumulate_i32_into_i64_avx2(acc, add) }
    }
    pub fn madd_block(acc: &mut [i32], a_pairs: &[i32], b_pairs: &[i32]) {
        debug_assert!(native_available());
        unsafe { madd_block_avx2(acc, a_pairs, b_pairs) }
    }
    pub fn i64_mac_row(acc: &mut [i64], a_row: &[i32], b: &[i32]) {
        debug_assert!(native_available());
        unsafe { i64_mac_row_avx2(acc, a_row, b) }
    }
    pub fn quantize_codes(values: &[f32], inv_step: f32, max_raw: i32, min_raw: i32, out: &mut [i32]) {
        debug_assert!(native_available());
        unsafe { quantize_codes_avx2(values, inv_step, max_raw, min_raw, out) }
    }
    pub fn codes_to_f32(codes: &[i32], step: f32, out: &mut [f32]) {
        debug_assert!(native_available());
        unsafe { codes_to_f32_avx2(codes, step, out) }
    }
    pub fn madd_dot(a_pairs: &[i32], b_pairs: &[i32]) -> i64 {
        debug_assert!(native_available());
        unsafe { madd_dot_avx2(a_pairs, b_pairs) }
    }
    pub fn shift_round_saturate_i32(values: &[i32], shift: u32, min_raw: i32, max_raw: i32, out: &mut [i32]) {
        debug_assert!(native_available());
        unsafe { shift_round_saturate_i32_avx2(values, shift, min_raw, max_raw, out) }
    }
}

#[cfg(target_arch = "aarch64")]
mod native {
    use super::*;

    // SAFETY (all wrappers): `native_available()` is unconditionally true on
    // aarch64 (NEON is baseline), and `#[target_feature(enable = "neon")]`
    // only re-enables what the target already guarantees — no rounding
    // behaviour changes, so bitwise identity with the reference holds.

    pub fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(acc: &mut [f32], a: f32, x: &[f32]) {
            axpy_lanes(acc, a, x)
        }
        unsafe { go(acc, a, x) }
    }
    pub fn scale(values: &mut [f32], factor: f32) {
        #[target_feature(enable = "neon")]
        unsafe fn go(values: &mut [f32], factor: f32) {
            scale_lanes(values, factor)
        }
        unsafe { go(values, factor) }
    }
    pub fn reduce(values: &[f32]) -> f32 {
        #[target_feature(enable = "neon")]
        unsafe fn go(values: &[f32]) -> f32 {
            reduce_lanes_body(values)
        }
        unsafe { go(values) }
    }
    pub fn gather_two_tap(flat: &[f32], tap0: &[u32], tap1: &[u32], w0: &[f32], w1: &[f32], out: &mut [f32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(flat: &[f32], tap0: &[u32], tap1: &[u32], w0: &[f32], w1: &[f32], out: &mut [f32]) {
            gather_two_tap_lanes(flat, tap0, tap1, w0, w1, out)
        }
        unsafe { go(flat, tap0, tap1, w0, w1, out) }
    }
    pub fn gather_two_tap_interleaved(
        flat: &[f32],
        tap0: &[u32],
        tap1: &[u32],
        w0: &[f32],
        w1: &[f32],
        out: &mut [f32],
    ) {
        #[target_feature(enable = "neon")]
        unsafe fn go(flat: &[f32], tap0: &[u32], tap1: &[u32], w0: &[f32], w1: &[f32], out: &mut [f32]) {
            gather_two_tap_interleaved_lanes(flat, tap0, tap1, w0, w1, out)
        }
        unsafe { go(flat, tap0, tap1, w0, w1, out) }
    }
    pub fn das_gather_reduce(
        flat: &[f32],
        tap0: &[u32],
        tap1: &[u32],
        w0: &[f32],
        w1: &[f32],
        apod: &[f32],
    ) -> f32 {
        #[target_feature(enable = "neon")]
        unsafe fn go(flat: &[f32], tap0: &[u32], tap1: &[u32], w0: &[f32], w1: &[f32], apod: &[f32]) -> f32 {
            das_gather_reduce_body(flat, tap0, tap1, w0, w1, apod)
        }
        unsafe { go(flat, tap0, tap1, w0, w1, apod) }
    }
    pub fn i64_axpy(acc: &mut [i64], a: i32, x: &[i32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(acc: &mut [i64], a: i32, x: &[i32]) {
            i64_axpy_body(acc, a, x)
        }
        unsafe { go(acc, a, x) }
    }
    pub fn madd_pairs(acc: &mut [i32], a_pair: i32, pairs: &[i32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(acc: &mut [i32], a_pair: i32, pairs: &[i32]) {
            madd_pairs_body(acc, a_pair, pairs)
        }
        unsafe { go(acc, a_pair, pairs) }
    }
    pub fn accumulate_i32_into_i64(acc: &mut [i64], add: &[i32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(acc: &mut [i64], add: &[i32]) {
            accumulate_i32_into_i64_body(acc, add)
        }
        unsafe { go(acc, add) }
    }
    pub fn madd_block(acc: &mut [i32], a_pairs: &[i32], b_pairs: &[i32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(acc: &mut [i32], a_pairs: &[i32], b_pairs: &[i32]) {
            madd_block_body(acc, a_pairs, b_pairs)
        }
        unsafe { go(acc, a_pairs, b_pairs) }
    }
    pub fn i64_mac_row(acc: &mut [i64], a_row: &[i32], b: &[i32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(acc: &mut [i64], a_row: &[i32], b: &[i32]) {
            i64_mac_row_body(acc, a_row, b)
        }
        unsafe { go(acc, a_row, b) }
    }
    pub fn quantize_codes(values: &[f32], inv_step: f32, max_raw: i32, min_raw: i32, out: &mut [i32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(values: &[f32], inv_step: f32, max_raw: i32, min_raw: i32, out: &mut [i32]) {
            quantize_codes_body(values, inv_step, max_raw, min_raw, out)
        }
        unsafe { go(values, inv_step, max_raw, min_raw, out) }
    }
    pub fn codes_to_f32(codes: &[i32], step: f32, out: &mut [f32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(codes: &[i32], step: f32, out: &mut [f32]) {
            codes_to_f32_body(codes, step, out)
        }
        unsafe { go(codes, step, out) }
    }
    pub fn madd_dot(a_pairs: &[i32], b_pairs: &[i32]) -> i64 {
        #[target_feature(enable = "neon")]
        unsafe fn go(a_pairs: &[i32], b_pairs: &[i32]) -> i64 {
            madd_dot_body(a_pairs, b_pairs)
        }
        unsafe { go(a_pairs, b_pairs) }
    }
    pub fn shift_round_saturate_i32(values: &[i32], shift: u32, min_raw: i32, max_raw: i32, out: &mut [i32]) {
        #[target_feature(enable = "neon")]
        unsafe fn go(values: &[i32], shift: u32, min_raw: i32, max_raw: i32, out: &mut [i32]) {
            shift_round_saturate_i32_body(values, shift, min_raw, max_raw, out)
        }
        unsafe { go(values, shift, min_raw, max_raw, out) }
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod native {
    // `native_available()` is false here, so these aliases are unreachable
    // through `mode()`; they exist only to keep dispatch uniform.
    use super::*;

    pub fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
        axpy_lanes(acc, a, x)
    }
    pub fn scale(values: &mut [f32], factor: f32) {
        scale_lanes(values, factor)
    }
    pub fn reduce(values: &[f32]) -> f32 {
        reduce_lanes_body(values)
    }
    pub fn gather_two_tap(flat: &[f32], tap0: &[u32], tap1: &[u32], w0: &[f32], w1: &[f32], out: &mut [f32]) {
        gather_two_tap_lanes(flat, tap0, tap1, w0, w1, out)
    }
    pub fn gather_two_tap_interleaved(
        flat: &[f32],
        tap0: &[u32],
        tap1: &[u32],
        w0: &[f32],
        w1: &[f32],
        out: &mut [f32],
    ) {
        gather_two_tap_interleaved_lanes(flat, tap0, tap1, w0, w1, out)
    }
    pub fn das_gather_reduce(
        flat: &[f32],
        tap0: &[u32],
        tap1: &[u32],
        w0: &[f32],
        w1: &[f32],
        apod: &[f32],
    ) -> f32 {
        das_gather_reduce_body(flat, tap0, tap1, w0, w1, apod)
    }
    pub fn i64_axpy(acc: &mut [i64], a: i32, x: &[i32]) {
        i64_axpy_body(acc, a, x)
    }
    pub fn madd_pairs(acc: &mut [i32], a_pair: i32, pairs: &[i32]) {
        madd_pairs_body(acc, a_pair, pairs)
    }
    pub fn accumulate_i32_into_i64(acc: &mut [i64], add: &[i32]) {
        accumulate_i32_into_i64_body(acc, add)
    }
    pub fn madd_block(acc: &mut [i32], a_pairs: &[i32], b_pairs: &[i32]) {
        madd_block_body(acc, a_pairs, b_pairs)
    }
    pub fn i64_mac_row(acc: &mut [i64], a_row: &[i32], b: &[i32]) {
        i64_mac_row_body(acc, a_row, b)
    }
    pub fn quantize_codes(values: &[f32], inv_step: f32, max_raw: i32, min_raw: i32, out: &mut [i32]) {
        quantize_codes_body(values, inv_step, max_raw, min_raw, out)
    }
    pub fn codes_to_f32(codes: &[i32], step: f32, out: &mut [f32]) {
        codes_to_f32_body(codes, step, out)
    }
    pub fn madd_dot(a_pairs: &[i32], b_pairs: &[i32]) -> i64 {
        madd_dot_body(a_pairs, b_pairs)
    }
    pub fn shift_round_saturate_i32(values: &[i32], shift: u32, min_raw: i32, max_raw: i32, out: &mut [i32]) {
        shift_round_saturate_i32_body(values, shift, min_raw, max_raw, out)
    }
}

// ---------------------------------------------------------------------------
// Dispatched public kernels
// ---------------------------------------------------------------------------

/// `acc[i] += a * x[i]`. Element-wise, so every tier is bitwise identical.
pub fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
    match mode() {
        SimdMode::Scalar => axpy_scalar(acc, a, x),
        SimdMode::Portable => axpy_lanes(acc, a, x),
        SimdMode::Native => native::axpy(acc, a, x),
    }
}

/// `values[i] *= factor`. Element-wise, so every tier is bitwise identical.
pub fn scale(values: &mut [f32], factor: f32) {
    match mode() {
        SimdMode::Scalar => scale_scalar(values, factor),
        SimdMode::Portable => scale_lanes(values, factor),
        SimdMode::Native => native::scale(values, factor),
    }
}

/// Sum a slice in the module's lane-order reduction (see the module docs).
/// The scalar tier is the reference; all tiers match it bit-for-bit.
pub fn reduce_lanes(values: &[f32]) -> f32 {
    match mode() {
        SimdMode::Scalar => reduce_scalar(values),
        SimdMode::Portable => reduce_lanes_body(values),
        SimdMode::Native => native::reduce(values),
    }
}

/// Two-tap interpolating gather: `out[j] = flat[tap0[j]]*w0[j] +
/// flat[tap1[j]]*w1[j]`. Element-wise, bitwise identical across tiers.
pub fn gather_two_tap(flat: &[f32], tap0: &[u32], tap1: &[u32], w0: &[f32], w1: &[f32], out: &mut [f32]) {
    match mode() {
        SimdMode::Scalar => gather_two_tap_scalar(flat, tap0, tap1, w0, w1, out),
        SimdMode::Portable => gather_two_tap_lanes(flat, tap0, tap1, w0, w1, out),
        SimdMode::Native => native::gather_two_tap(flat, tap0, tap1, w0, w1, out),
    }
}

/// Two-tap gather over interleaved complex data (`flat[2t]`, `flat[2t+1]` are
/// the re/im of element `t`); writes `2 * tap0.len()` floats. Element-wise,
/// bitwise identical across tiers.
pub fn gather_two_tap_interleaved(
    flat: &[f32],
    tap0: &[u32],
    tap1: &[u32],
    w0: &[f32],
    w1: &[f32],
    out: &mut [f32],
) {
    match mode() {
        SimdMode::Scalar => gather_two_tap_interleaved_scalar(flat, tap0, tap1, w0, w1, out),
        SimdMode::Portable => gather_two_tap_interleaved_lanes(flat, tap0, tap1, w0, w1, out),
        SimdMode::Native => native::gather_two_tap_interleaved(flat, tap0, tap1, w0, w1, out),
    }
}

/// Fused planned-DAS kernel: gathers both taps, applies apodization and
/// reduces in the module's lane order. Equivalent to materialising
/// `apod[e] * (flat[tap0[e]]*w0[e] + flat[tap1[e]]*w1[e])` and calling
/// [`reduce_lanes`], without the intermediate buffer.
pub fn das_gather_reduce(
    flat: &[f32],
    tap0: &[u32],
    tap1: &[u32],
    w0: &[f32],
    w1: &[f32],
    apod: &[f32],
) -> f32 {
    match mode() {
        SimdMode::Scalar => das_gather_reduce_scalar(flat, tap0, tap1, w0, w1, apod),
        SimdMode::Portable => das_gather_reduce_body(flat, tap0, tap1, w0, w1, apod),
        SimdMode::Native => native::das_gather_reduce(flat, tap0, tap1, w0, w1, apod),
    }
}

/// `acc[i] += a * x[i]` in exact 64-bit integer arithmetic. The generic
/// fixed-point MAC row kernel; identical across tiers by exactness.
pub fn i64_axpy(acc: &mut [i64], a: i32, x: &[i32]) {
    match mode() {
        SimdMode::Scalar | SimdMode::Portable => i64_axpy_body(acc, a, x),
        SimdMode::Native => native::i64_axpy(acc, a, x),
    }
}

/// Dual-MAC over packed i16 pairs: with `a_pair = pack(a0, a1)` and
/// `pairs[i] = pack(w0_i, w1_i)`, computes `acc[i] += a0*w0_i + a1*w1_i`.
/// The native tier maps this to `_mm256_madd_epi16` (16 MACs/instruction);
/// callers must bound `2 * max|a| * max|w|` below `i32::MAX` so the i32
/// accumulator cannot overflow (see `core::quantized`). Exact across tiers.
pub fn madd_pairs(acc: &mut [i32], a_pair: i32, pairs: &[i32]) {
    match mode() {
        SimdMode::Scalar | SimdMode::Portable => madd_pairs_body(acc, a_pair, pairs),
        SimdMode::Native => native::madd_pairs(acc, a_pair, pairs),
    }
}

/// Spill an i32 accumulator tile into the i64 row accumulator:
/// `acc[i] += add[i]`. Exact across tiers.
pub fn accumulate_i32_into_i64(acc: &mut [i64], add: &[i32]) {
    match mode() {
        SimdMode::Scalar | SimdMode::Portable => accumulate_i32_into_i64_body(acc, add),
        SimdMode::Native => native::accumulate_i32_into_i64(acc, add),
    }
}

/// [`madd_pairs`] over a whole packed panel in one dispatch: `a_pairs[p]`
/// against the `p`-th row of `b_pairs` (layout `a_pairs.len() × acc.len()`).
/// The caller's overflow bound must cover the entire panel. Exact across
/// tiers.
pub fn madd_block(acc: &mut [i32], a_pairs: &[i32], b_pairs: &[i32]) {
    match mode() {
        SimdMode::Scalar | SimdMode::Portable => madd_block_body(acc, a_pairs, b_pairs),
        SimdMode::Native => native::madd_block(acc, a_pairs, b_pairs),
    }
}

/// [`i64_axpy`] over a whole row-major panel in one dispatch: accumulates
/// `a_row[p] * b[p][..]` for every `p` (layout `a_row.len() × acc.len()`).
/// Exact across tiers.
pub fn i64_mac_row(acc: &mut [i64], a_row: &[i32], b: &[i32]) {
    match mode() {
        SimdMode::Scalar | SimdMode::Portable => i64_mac_row_body(acc, a_row, b),
        SimdMode::Native => native::i64_mac_row(acc, a_row, b),
    }
}

/// Dot product over packed i16 pairs: with `a_pairs[i] = pack(a0_i, a1_i)`
/// and `b_pairs[i] = pack(w0_i, w1_i)`, returns `Σ a0_i*w0_i + a1_i*w1_i` as
/// exact `i64`. The native tier keeps its i32 lane accumulator in a register
/// (no memory round-trip), so callers must bound
/// `2 * ceil(len/8) * max|a| * max|w| < i32::MAX` — each of the eight lanes
/// absorbs `ceil(len/8)` dual-products. Exact across tiers (integer sums in
/// any order are identical when no intermediate overflows).
pub fn madd_dot(a_pairs: &[i32], b_pairs: &[i32]) -> i64 {
    match mode() {
        SimdMode::Scalar | SimdMode::Portable => madd_dot_body(a_pairs, b_pairs),
        SimdMode::Native => native::madd_dot(a_pairs, b_pairs),
    }
}

/// Quantize a float slice onto a fixed-point grid:
/// `out[i] = clamp(round(values[i] * inv_step))` with round half away from
/// zero, saturation to `[min_raw, max_raw]` and NaN mapping to code 0.
/// `inv_step` must be the exact power of two `2^frac` of the target grid.
/// Element-wise with one rounding per element; the native tier's rounding
/// construction is proven bitwise identical in `quantize_codes_avx2`.
pub fn quantize_codes(values: &[f32], inv_step: f32, max_raw: i32, min_raw: i32, out: &mut [i32]) {
    match mode() {
        SimdMode::Scalar => quantize_codes_scalar(values, inv_step, max_raw, min_raw, out),
        SimdMode::Portable => quantize_codes_body(values, inv_step, max_raw, min_raw, out),
        SimdMode::Native => native::quantize_codes(values, inv_step, max_raw, min_raw, out),
    }
}

/// Dequantize fixed-point codes back to floats: `out[i] = codes[i] as f32 *
/// step`. With `step` a power of two both operations are exactly rounded the
/// same way in every tier, so the result is bitwise identical.
pub fn codes_to_f32(codes: &[i32], step: f32, out: &mut [f32]) {
    match mode() {
        SimdMode::Scalar => codes_to_f32_scalar(codes, step, out),
        SimdMode::Portable => codes_to_f32_body(codes, step, out),
        SimdMode::Native => native::codes_to_f32(codes, step, out),
    }
}

/// Requantize exact i32 accumulators onto a narrower fixed-point grid:
/// `out[i] = clamp(round_half_away(values[i] / 2^shift))`, saturating to
/// `[min_raw, max_raw]`. Pure integer arithmetic, so every tier is bitwise
/// identical. Callers must keep accumulators strictly above `i32::MIN`
/// (the integer-matmul overflow bounds already guarantee this).
pub fn shift_round_saturate_i32(values: &[i32], shift: u32, min_raw: i32, max_raw: i32, out: &mut [i32]) {
    match mode() {
        SimdMode::Scalar => shift_round_saturate_i32_scalar(values, shift, min_raw, max_raw, out),
        SimdMode::Portable => shift_round_saturate_i32_body(values, shift, min_raw, max_raw, out),
        SimdMode::Native => native::shift_round_saturate_i32(values, shift, min_raw, max_raw, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contributions(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.173).collect()
    }

    #[test]
    fn reduce_matches_scalar_reference_on_ragged_lengths() {
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 64, 129] {
            let vals = contributions(n);
            let reference = reduce_scalar(&vals);
            for m in available_modes() {
                force_mode(Some(m));
                assert_eq!(reduce_lanes(&vals).to_bits(), reference.to_bits(), "mode {:?} n {}", m, n);
            }
            force_mode(None);
        }
    }

    #[test]
    fn das_reduce_is_fused_reduce_of_contributions() {
        let n = 43;
        let flat: Vec<f32> = contributions(97);
        let tap0: Vec<u32> = (0..n).map(|i| (i * 13 % 97) as u32).collect();
        let tap1: Vec<u32> = (0..n).map(|i| (i * 29 % 97) as u32).collect();
        let w0: Vec<f32> = (0..n).map(|i| (i % 7) as f32 * 0.11).collect();
        let w1: Vec<f32> = (0..n).map(|i| 1.0 - (i % 7) as f32 * 0.11).collect();
        let apod: Vec<f32> = (0..n).map(|i| (i % 5) as f32 * 0.21).collect();
        let contrib: Vec<f32> = (0..n)
            .map(|e| apod[e] * (flat[tap0[e] as usize] * w0[e] + flat[tap1[e] as usize] * w1[e]))
            .collect();
        let reference = reduce_scalar(&contrib);
        for m in available_modes() {
            force_mode(Some(m));
            let fused = das_gather_reduce(&flat, &tap0, &tap1, &w0, &w1, &apod);
            assert_eq!(fused.to_bits(), reference.to_bits(), "mode {:?}", m);
        }
        force_mode(None);
    }

    #[test]
    fn madd_pairs_decomposes_packed_products_exactly() {
        let acc_init: Vec<i32> = (0..37).map(|i| i * 1000 - 18000).collect();
        let pairs: Vec<i32> = (0..37).map(|i| pack_i16_pair(i * 7 - 128, -i * 3 + 40)).collect();
        let a_pair = pack_i16_pair(-300, 522);
        let mut expect = acc_init.clone();
        for (o, &p) in expect.iter_mut().zip(&pairs) {
            let w0 = p as i16 as i32;
            let w1 = (p >> 16) as i16 as i32;
            *o += -300 * w0 + 522 * w1;
        }
        for m in available_modes() {
            force_mode(Some(m));
            let mut acc = acc_init.clone();
            madd_pairs(&mut acc, a_pair, &pairs);
            assert_eq!(acc, expect, "mode {:?}", m);
        }
        force_mode(None);
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in [SimdMode::Scalar, SimdMode::Portable, SimdMode::Native] {
            assert!(["scalar", "portable", "native"].contains(&m.label()));
        }
    }
}
