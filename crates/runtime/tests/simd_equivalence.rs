//! Property-based bitwise-equivalence suite for `runtime::simd`.
//!
//! The dispatch contract (`runtime::simd` module docs) is that every kernel
//! produces **bitwise identical** results in all three tiers — the scalar
//! lane-order reference, the portable autovectorized path, and the
//! `#[target_feature]` native path — for every input shape, including ragged
//! lengths that exercise the vector tails. Each property here draws random
//! shapes/values from a seeded PRNG, computes the kernel under
//! `SimdMode::Scalar`, and asserts exact equality (`f32::to_bits` for float
//! results) under every other available tier.
//!
//! `force_mode` is process-global, so every property serializes on one mutex
//! and restores the default mode on exit (panic included).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use runtime::simd::{self, SimdMode};
use std::sync::Mutex;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the dispatch mode forced to `mode`, holding the global lock
/// so concurrent test threads cannot observe the override, and restoring the
/// environment default even when `f` panics.
fn with_mode<T>(mode: SimdMode, f: impl FnOnce() -> T) -> T {
    let _lock = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            simd::force_mode(None);
        }
    }
    let _restore = Restore;
    simd::force_mode(Some(mode));
    f()
}

/// Every mode other than scalar that this machine can run.
fn alternative_modes() -> Vec<SimdMode> {
    simd::available_modes().into_iter().filter(|m| *m != SimdMode::Scalar).collect()
}

fn floats(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.1) {
                0.0
            } else {
                rng.gen_range(-8.0f32..8.0)
            }
        })
        .collect()
}

fn codes(rng: &mut StdRng, n: usize, max: i32) -> Vec<i32> {
    (0..n).map(|_| rng.gen_range(-max..=max)).collect()
}

fn taps(rng: &mut StdRng, n: usize, limit: usize) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..limit) as u32).collect()
}

fn assert_bits_eq(reference: &[f32], got: &[f32], what: &str, mode: SimdMode) {
    assert_eq!(reference.len(), got.len(), "{what}: length under {mode:?}");
    for (i, (a, b)) in reference.iter().zip(got).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}[{i}]: {a} vs {b} under {mode:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn axpy_is_bitwise_identical_across_modes(seed in 0u64..1_000_000, n in 0usize..97) {
        let mut rng = StdRng::seed_from_u64(seed);
        let acc0 = floats(&mut rng, n);
        let x = floats(&mut rng, n);
        let a = rng.gen_range(-4.0f32..4.0);
        let reference = with_mode(SimdMode::Scalar, || {
            let mut acc = acc0.clone();
            simd::axpy(&mut acc, a, &x);
            acc
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut acc = acc0.clone();
                simd::axpy(&mut acc, a, &x);
                acc
            });
            assert_bits_eq(&reference, &got, "axpy", mode);
        }
    }

    #[test]
    fn scale_is_bitwise_identical_across_modes(seed in 0u64..1_000_000, n in 0usize..97) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values0 = floats(&mut rng, n);
        let factor = rng.gen_range(-4.0f32..4.0);
        let reference = with_mode(SimdMode::Scalar, || {
            let mut v = values0.clone();
            simd::scale(&mut v, factor);
            v
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut v = values0.clone();
                simd::scale(&mut v, factor);
                v
            });
            assert_bits_eq(&reference, &got, "scale", mode);
        }
    }

    #[test]
    fn reduce_lanes_is_bitwise_identical_across_modes(seed in 0u64..1_000_000, n in 0usize..131) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = floats(&mut rng, n);
        let reference = with_mode(SimdMode::Scalar, || simd::reduce_lanes(&values));
        for mode in alternative_modes() {
            let got = with_mode(mode, || simd::reduce_lanes(&values));
            prop_assert_eq!(reference.to_bits(), got.to_bits(), "reduce_lanes: {} vs {} under {:?}", reference, got, mode);
        }
    }

    #[test]
    fn gather_two_tap_is_bitwise_identical_across_modes(seed in 0u64..1_000_000, t in 0usize..97, m in 1usize..257) {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat = floats(&mut rng, m);
        let tap0 = taps(&mut rng, t, m);
        let tap1 = taps(&mut rng, t, m);
        let w0 = floats(&mut rng, t);
        let w1 = floats(&mut rng, t);
        let reference = with_mode(SimdMode::Scalar, || {
            let mut out = vec![0.0f32; t];
            simd::gather_two_tap(&flat, &tap0, &tap1, &w0, &w1, &mut out);
            out
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut out = vec![0.0f32; t];
                simd::gather_two_tap(&flat, &tap0, &tap1, &w0, &w1, &mut out);
                out
            });
            assert_bits_eq(&reference, &got, "gather_two_tap", mode);
        }
    }

    #[test]
    fn gather_two_tap_interleaved_is_bitwise_identical_across_modes(seed in 0u64..1_000_000, t in 0usize..97, m in 1usize..257) {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat = floats(&mut rng, 2 * m);
        let tap0 = taps(&mut rng, t, m);
        let tap1 = taps(&mut rng, t, m);
        let w0 = floats(&mut rng, t);
        let w1 = floats(&mut rng, t);
        let reference = with_mode(SimdMode::Scalar, || {
            let mut out = vec![0.0f32; 2 * t];
            simd::gather_two_tap_interleaved(&flat, &tap0, &tap1, &w0, &w1, &mut out);
            out
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut out = vec![0.0f32; 2 * t];
                simd::gather_two_tap_interleaved(&flat, &tap0, &tap1, &w0, &w1, &mut out);
                out
            });
            assert_bits_eq(&reference, &got, "gather_two_tap_interleaved", mode);
        }
    }

    #[test]
    fn das_gather_reduce_is_bitwise_identical_across_modes(seed in 0u64..1_000_000, t in 0usize..131, m in 1usize..257) {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat = floats(&mut rng, m);
        let tap0 = taps(&mut rng, t, m);
        let tap1 = taps(&mut rng, t, m);
        let w0 = floats(&mut rng, t);
        let w1 = floats(&mut rng, t);
        let apod = floats(&mut rng, t);
        let reference = with_mode(SimdMode::Scalar, || simd::das_gather_reduce(&flat, &tap0, &tap1, &w0, &w1, &apod));
        for mode in alternative_modes() {
            let got = with_mode(mode, || simd::das_gather_reduce(&flat, &tap0, &tap1, &w0, &w1, &apod));
            prop_assert_eq!(reference.to_bits(), got.to_bits(), "das_gather_reduce: {} vs {} under {:?}", reference, got, mode);
        }
        // The fused kernel must equal reduce_lanes over the explicit
        // contribution vector — the contract the planned DAS sweep relies on.
        let contrib: Vec<f32> = (0..t)
            .map(|e| apod[e] * (flat[tap0[e] as usize] * w0[e] + flat[tap1[e] as usize] * w1[e]))
            .collect();
        let fused = with_mode(SimdMode::Scalar, || simd::reduce_lanes(&contrib));
        prop_assert_eq!(reference.to_bits(), fused.to_bits());
    }

    #[test]
    fn integer_kernels_are_exact_across_modes(seed in 0u64..1_000_000, n in 0usize..97) {
        let mut rng = StdRng::seed_from_u64(seed);
        // i64_axpy: exact integer arithmetic, any tier.
        let acc0: Vec<i64> = codes(&mut rng, n, 1 << 20).iter().map(|&c| c as i64).collect();
        let x = codes(&mut rng, n, 1 << 20);
        let a = rng.gen_range(-(1 << 20)..(1 << 20));
        let reference = with_mode(SimdMode::Scalar, || {
            let mut acc = acc0.clone();
            simd::i64_axpy(&mut acc, a, &x);
            acc
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut acc = acc0.clone();
                simd::i64_axpy(&mut acc, a, &x);
                acc
            });
            prop_assert_eq!(&reference, &got, "i64_axpy under {:?}", mode);
        }
        // accumulate_i32_into_i64.
        let tile = codes(&mut rng, n, i32::MAX - 1);
        let spill_ref = with_mode(SimdMode::Scalar, || {
            let mut acc = acc0.clone();
            simd::accumulate_i32_into_i64(&mut acc, &tile);
            acc
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut acc = acc0.clone();
                simd::accumulate_i32_into_i64(&mut acc, &tile);
                acc
            });
            prop_assert_eq!(&spill_ref, &got, "accumulate_i32_into_i64 under {:?}", mode);
        }
    }

    #[test]
    fn madd_pairs_is_exact_across_modes(seed in 0u64..1_000_000, m in 0usize..97) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Bounded so one madd step cannot overflow the i32 accumulator:
        // |acc| + 2 * 1024 * 8192 stays far below i32::MAX.
        let acc0 = codes(&mut rng, m, 1 << 24);
        let b_lo = codes(&mut rng, m, 8192);
        let b_hi = codes(&mut rng, m, 8192);
        let pairs: Vec<i32> = b_lo.iter().zip(&b_hi).map(|(&lo, &hi)| simd::pack_i16_pair(lo, hi)).collect();
        let a_pair = simd::pack_i16_pair(rng.gen_range(-1024..1024), rng.gen_range(-1024..1024));
        let reference = with_mode(SimdMode::Scalar, || {
            let mut acc = acc0.clone();
            simd::madd_pairs(&mut acc, a_pair, &pairs);
            acc
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut acc = acc0.clone();
                simd::madd_pairs(&mut acc, a_pair, &pairs);
                acc
            });
            prop_assert_eq!(&reference, &got, "madd_pairs under {:?}", mode);
        }
    }

    #[test]
    fn block_mac_kernels_are_exact_across_modes(seed in 0u64..1_000_000, m in 1usize..33, k in 1usize..65) {
        let mut rng = StdRng::seed_from_u64(seed);
        // madd_block over an np × m panel with magnitudes that keep the whole
        // panel's accumulation within i32 (2 * np * 512 * 512 << i32::MAX).
        let np = k.div_ceil(2);
        let a_pairs: Vec<i32> = (0..np)
            .map(|_| simd::pack_i16_pair(rng.gen_range(-512..512), rng.gen_range(-512..512)))
            .collect();
        let b_pairs: Vec<i32> = (0..np * m)
            .map(|_| simd::pack_i16_pair(rng.gen_range(-512..512), rng.gen_range(-512..512)))
            .collect();
        let reference = with_mode(SimdMode::Scalar, || {
            let mut acc = vec![0i32; m];
            simd::madd_block(&mut acc, &a_pairs, &b_pairs);
            acc
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut acc = vec![0i32; m];
                simd::madd_block(&mut acc, &a_pairs, &b_pairs);
                acc
            });
            prop_assert_eq!(&reference, &got, "madd_block under {:?}", mode);
        }
        // i64_mac_row over a k × m matrix, wide magnitudes (the i64 path).
        let a_row = codes(&mut rng, k, 1 << 20);
        let b = codes(&mut rng, k * m, 1 << 20);
        let row_ref = with_mode(SimdMode::Scalar, || {
            let mut acc = vec![0i64; m];
            simd::i64_mac_row(&mut acc, &a_row, &b);
            acc
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut acc = vec![0i64; m];
                simd::i64_mac_row(&mut acc, &a_row, &b);
                acc
            });
            prop_assert_eq!(&row_ref, &got, "i64_mac_row under {:?}", mode);
        }
    }

    #[test]
    fn madd_dot_is_exact_across_modes(seed in 0u64..1_000_000, np in 0usize..97) {
        let mut rng = StdRng::seed_from_u64(seed);
        // |codes| < 4096 keeps every i32 lane within the documented bound:
        // 2 * ceil(np/8) * 4096 * 4096 < i32::MAX for np < 97.
        let a_pairs: Vec<i32> = (0..np)
            .map(|_| simd::pack_i16_pair(rng.gen_range(-4096..4096), rng.gen_range(-4096..4096)))
            .collect();
        let b_pairs: Vec<i32> = (0..np)
            .map(|_| simd::pack_i16_pair(rng.gen_range(-4096..4096), rng.gen_range(-4096..4096)))
            .collect();
        let reference = with_mode(SimdMode::Scalar, || simd::madd_dot(&a_pairs, &b_pairs));
        for mode in alternative_modes() {
            let got = with_mode(mode, || simd::madd_dot(&a_pairs, &b_pairs));
            prop_assert_eq!(reference, got, "madd_dot under {:?}", mode);
        }
    }

    #[test]
    fn boundary_conversion_kernels_are_bitwise_identical_across_modes(
        seed in 0u64..1_000_000,
        n in 0usize..97,
        frac in 0u32..15,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // A 16-bit grid with `frac` fractional bits, plus values far outside
        // the representable range (saturation) and NaN/infinite specials.
        let (max_raw, min_raw) = (32767i32, -32768i32);
        let inv_step = (frac as f32).exp2();
        let step = (-(frac as f32)).exp2();
        let mut values = floats(&mut rng, n);
        for v in values.iter_mut() {
            match rng.gen_range(0..8) {
                0 => *v = f32::NAN,
                1 => *v = f32::INFINITY * if rng.gen() { 1.0 } else { -1.0 },
                2 => *v *= 1e6,
                _ => {}
            }
        }
        let reference = with_mode(SimdMode::Scalar, || {
            let mut out = vec![0i32; n];
            simd::quantize_codes(&values, inv_step, max_raw, min_raw, &mut out);
            out
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut out = vec![0i32; n];
                simd::quantize_codes(&values, inv_step, max_raw, min_raw, &mut out);
                out
            });
            prop_assert_eq!(&reference, &got, "quantize_codes under {:?}", mode);
        }
        let code_vals = codes(&mut rng, n, 32768);
        let deq_ref = with_mode(SimdMode::Scalar, || {
            let mut out = vec![0.0f32; n];
            simd::codes_to_f32(&code_vals, step, &mut out);
            out
        });
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut out = vec![0.0f32; n];
                simd::codes_to_f32(&code_vals, step, &mut out);
                out
            });
            assert_bits_eq(&deq_ref, &got, "codes_to_f32", mode);
        }
    }

    #[test]
    fn shift_round_saturate_is_exact_across_modes(
        seed in 0u64..1_000_000,
        n in 0usize..97,
        shift in 0u32..22,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Full i32 span except i32::MIN (excluded by the kernel contract).
        let values: Vec<i32> = (0..n).map(|_| rng.gen_range(i32::MIN + 1..=i32::MAX)).collect();
        let (min_raw, max_raw) = (-32768i32, 32767i32);
        let reference = with_mode(SimdMode::Scalar, || {
            let mut out = vec![0i32; n];
            simd::shift_round_saturate_i32(&values, shift, min_raw, max_raw, &mut out);
            out
        });
        // The scalar tier must itself agree with the i64 rounding reference.
        for (i, (&v, &r)) in values.iter().zip(&reference).enumerate() {
            let half = if shift == 0 { 0 } else { 1i64 << (shift - 1) };
            let v64 = v as i64;
            let rounded = if v64 >= 0 { (v64 + half) >> shift } else { -((-v64 + half) >> shift) };
            prop_assert_eq!(r as i64, rounded.clamp(min_raw as i64, max_raw as i64), "element {}", i);
        }
        for mode in alternative_modes() {
            let got = with_mode(mode, || {
                let mut out = vec![0i32; n];
                simd::shift_round_saturate_i32(&values, shift, min_raw, max_raw, &mut out);
                out
            });
            prop_assert_eq!(&reference, &got, "shift_round_saturate_i32 under {:?}", mode);
        }
    }
}

#[test]
fn scalar_and_portable_are_always_available() {
    let modes = simd::available_modes();
    assert!(modes.contains(&SimdMode::Scalar));
    assert!(modes.contains(&SimdMode::Portable));
    // Native appears exactly when the CPU supports it.
    assert_eq!(modes.contains(&SimdMode::Native), simd::native_available());
}
