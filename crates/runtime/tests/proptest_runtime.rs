//! Property-based tests for the runtime support modules the scenario
//! benchmark harness builds on: the seeded Poisson arrival sampler and the
//! JSON value model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use runtime::json::Json;
use runtime::poisson::PoissonArrivals;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn poisson_is_deterministic_per_seed(rate in 0.5f64..1.0e5, seed in 0u64..1_000_000) {
        let a: Vec<Duration> = PoissonArrivals::new(rate, seed).unwrap().take(64).collect();
        let b: Vec<Duration> = PoissonArrivals::new(rate, seed).unwrap().take(64).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn poisson_gaps_are_positive_and_finite(rate in 1.0e-3f64..1.0e6, seed in 0u64..1_000_000) {
        let mut arrivals = PoissonArrivals::new(rate, seed).unwrap();
        for _ in 0..128 {
            let gap = arrivals.next_gap().as_secs_f64();
            prop_assert!(gap > 0.0 && gap.is_finite(), "gap {gap}");
        }
    }

    #[test]
    fn poisson_schedule_matches_cumulative_gaps(rate in 1.0f64..1.0e4, seed in 0u64..100_000) {
        let schedule = PoissonArrivals::new(rate, seed).unwrap().schedule(48);
        let mut cumulative = Duration::ZERO;
        let gaps = PoissonArrivals::new(rate, seed).unwrap();
        for (at, gap) in schedule.iter().zip(gaps) {
            cumulative += gap;
            prop_assert_eq!(*at, cumulative);
        }
    }
}

proptest! {
    // Heavier statistical test: fewer cases, many samples each.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn poisson_mean_gap_converges_to_inverse_rate(rate in 10.0f64..1.0e4, seed in 0u64..100_000) {
        const SAMPLES: usize = 20_000;
        let mut arrivals = PoissonArrivals::new(rate, seed).unwrap();
        let total: f64 = (0..SAMPLES).map(|_| arrivals.next_gap().as_secs_f64()).sum();
        let mean = total / SAMPLES as f64;
        let expected = 1.0 / rate;
        // The sample mean of n exponential draws has relative standard error
        // 1/√n ≈ 0.7% here; 5% is a ≥7σ bound, effectively flake-free.
        let rel_err = (mean - expected).abs() / expected;
        prop_assert!(rel_err < 0.05, "rate {rate}: mean {mean:.3e} vs expected {expected:.3e} ({rel_err:.4} rel)");
    }
}

/// Deterministically grows a random JSON value tree from a seeded PRNG —
/// the vendored proptest has no recursive strategy combinator, so the
/// proptest layer supplies seeds and this function supplies structure.
fn random_json(rng: &mut StdRng, depth: usize) -> Json {
    let choice: u32 = if depth == 0 { rng.gen_range(0..4) } else { rng.gen_range(0..6) };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(rng.gen()),
        2 => {
            // Mix of integers (printed without a decimal point) and
            // arbitrary finite doubles, including negatives and extremes.
            if rng.gen_bool(0.5) {
                Json::num(rng.gen_range(-1.0e15f64..1.0e15).trunc())
            } else {
                let exp = rng.gen_range(-200.0f64..200.0);
                Json::num(rng.gen_range(-1.0f64..1.0) * exp.exp2())
            }
        }
        3 => {
            let len = rng.gen_range(0usize..12);
            let text: String = (0..len)
                .map(|_| {
                    // Bias toward characters that exercise escaping.
                    match rng.gen_range(0u32..8) {
                        0 => '"',
                        1 => '\\',
                        2 => '\n',
                        3 => '\u{7}',
                        4 => 'ü',
                        5 => '😀',
                        _ => char::from_u32(rng.gen_range(32u32..127)).unwrap(),
                    }
                })
                .collect();
            Json::Str(text)
        }
        4 => {
            let len = rng.gen_range(0usize..5);
            Json::arr((0..len).map(|_| random_json(rng, depth - 1)))
        }
        _ => {
            let len = rng.gen_range(0usize..5);
            Json::obj((0..len).map(|i| (format!("k{i}"), random_json(rng, depth - 1))))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_round_trips_compact_and_pretty(seed in 0u64..10_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = random_json(&mut rng, 4);
        let compact = value.to_string_compact();
        prop_assert!(!compact.contains('\n'), "compact output must be single-line: {compact}");
        prop_assert_eq!(&Json::parse(&compact).unwrap(), &value, "compact: {}", compact);
        let pretty = value.to_string_pretty();
        prop_assert_eq!(&Json::parse(&pretty).unwrap(), &value, "pretty: {}", pretty);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backoff_is_deterministic_and_stays_inside_its_envelope(
        base_us in 0u64..50_000,
        cap_us in 1u64..500_000,
        seed in 0u64..1_000_000,
    ) {
        use runtime::backoff::Backoff;
        let base = Duration::from_micros(base_us);
        let cap = Duration::from_micros(cap_us);
        let mut a = Backoff::new(base, cap, seed);
        let mut b = Backoff::new(base, cap, seed);
        for attempt in 0..24u32 {
            let envelope = a.envelope(attempt);
            prop_assert!(envelope <= cap, "envelope {envelope:?} beyond cap {cap:?}");
            let delay = a.next_delay();
            prop_assert_eq!(delay, b.next_delay(), "sequence must be seed-deterministic");
            prop_assert!(delay <= envelope, "attempt {}: {:?} > {:?}", attempt, delay, envelope);
            prop_assert!(
                delay >= envelope / 2,
                "attempt {}: {:?} under half the envelope {:?}", attempt, delay, envelope
            );
        }
    }

    #[test]
    fn backoff_envelope_is_monotone_until_the_cap(base_us in 1u64..10_000, seed in 0u64..1_000) {
        use runtime::backoff::Backoff;
        let base = Duration::from_micros(base_us);
        let cap = Duration::from_micros(base_us * 1000);
        let backoff = Backoff::new(base, cap, seed);
        let mut previous = Duration::ZERO;
        for attempt in 0..40u32 {
            let envelope = backoff.envelope(attempt);
            prop_assert!(envelope >= previous, "envelope must never shrink");
            previous = envelope;
        }
        prop_assert_eq!(previous, cap, "the envelope must reach the cap");
    }
}
