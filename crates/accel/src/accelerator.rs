//! Top-level accelerator model: whole-frame latency and utilization reports.

use crate::resources::{ResourceEstimate, ResourceModel};
use crate::scheduler::Scheduler;
use crate::CLOCK_HZ;
use quantize::QuantScheme;
use serde::{Deserialize, Serialize};
use tiny_vbf::config::TinyVbfConfig;

/// The modelled Tiny-VBF accelerator instance.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: TinyVbfConfig,
    scheme: QuantScheme,
    scheduler: Scheduler,
    resources: ResourceModel,
    clock_hz: f64,
}

/// Latency / throughput / utilization summary for one frame size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameReport {
    /// Quantization scheme name.
    pub scheme: String,
    /// Cycles to process one depth row.
    pub cycles_per_row: u64,
    /// Cycles to process the whole frame.
    pub cycles_per_frame: u64,
    /// Frame latency in seconds at the configured clock.
    pub latency_seconds: f64,
    /// Frames per second.
    pub frames_per_second: f64,
    /// Resource estimate for this scheme.
    pub resources: ResourceEstimate,
}

impl Accelerator {
    /// Creates the paper's accelerator (4 PEs at 100 MHz, calibrated resource model).
    pub fn new(config: TinyVbfConfig, scheme: QuantScheme) -> Self {
        Self {
            config,
            scheme,
            scheduler: Scheduler::paper(),
            resources: ResourceModel::paper_calibrated(),
            clock_hz: CLOCK_HZ,
        }
    }

    /// Overrides the number of processing elements (design-space ablation).
    pub fn with_pes(mut self, num_pes: usize) -> Self {
        self.scheduler = Scheduler::with_pes(num_pes);
        self
    }

    /// Overrides the resource model.
    pub fn with_resource_model(mut self, model: ResourceModel) -> Self {
        self.resources = model;
        self
    }

    /// Overrides the clock frequency in Hz.
    ///
    /// # Panics
    ///
    /// Panics when the frequency is not positive.
    pub fn with_clock_hz(mut self, clock_hz: f64) -> Self {
        assert!(clock_hz > 0.0, "clock frequency must be positive");
        self.clock_hz = clock_hz;
        self
    }

    /// The quantization scheme being modelled.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// The model configuration being accelerated.
    pub fn config(&self) -> &TinyVbfConfig {
        &self.config
    }

    /// Produces the latency / utilization report for a `rows × cols` frame.
    pub fn frame_report(&self, rows: usize, cols: usize) -> FrameReport {
        let row_config = TinyVbfConfig { tokens: cols, ..self.config };
        let cycles_per_row = self.scheduler.row_cycles(&row_config, &self.scheme);
        let cycles_per_frame = cycles_per_row * rows as u64;
        let latency_seconds = cycles_per_frame as f64 / self.clock_hz;
        FrameReport {
            scheme: self.scheme.name.to_string(),
            cycles_per_row,
            cycles_per_frame,
            latency_seconds,
            frames_per_second: if latency_seconds > 0.0 { 1.0 / latency_seconds } else { 0.0 },
            resources: self.resources.estimate(&self.config, &self.scheme),
        }
    }

    /// Reports for every scheme of the paper on the same frame size (Table VI plus the
    /// latency column the paper discusses in the text).
    pub fn all_schemes_report(config: TinyVbfConfig, rows: usize, cols: usize) -> Vec<FrameReport> {
        QuantScheme::all()
            .into_iter()
            .map(|scheme| Accelerator::new(config, scheme).frame_report(rows, cols))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_report_has_consistent_numbers() {
        let accel = Accelerator::new(TinyVbfConfig::paper(), QuantScheme::hybrid2());
        let report = accel.frame_report(368, 128);
        assert_eq!(report.cycles_per_frame, report.cycles_per_row * 368);
        assert!((report.latency_seconds - report.cycles_per_frame as f64 / CLOCK_HZ).abs() < 1e-12);
        assert!(report.frames_per_second > 0.0);
        assert_eq!(report.scheme, "Hybrid-2");
        assert_eq!(accel.scheme().name, "Hybrid-2");
        assert_eq!(accel.config().channels, 128);
    }

    #[test]
    fn accelerator_is_faster_than_the_cpu_baseline() {
        // The paper reports 0.230 s per frame on a Xeon CPU; the accelerator at 100 MHz
        // should beat that comfortably.
        let accel = Accelerator::new(TinyVbfConfig::paper(), QuantScheme::hybrid1());
        let report = accel.frame_report(368, 128);
        assert!(report.latency_seconds < 0.230, "latency {}", report.latency_seconds);
        // …and still take a physically plausible amount of time (> 0.5 ms).
        assert!(report.latency_seconds > 5e-4, "latency {}", report.latency_seconds);
    }

    #[test]
    fn more_pes_reduce_latency() {
        let base = Accelerator::new(TinyVbfConfig::paper(), QuantScheme::hybrid2());
        let wide = Accelerator::new(TinyVbfConfig::paper(), QuantScheme::hybrid2()).with_pes(8);
        assert!(wide.frame_report(368, 128).latency_seconds < base.frame_report(368, 128).latency_seconds);
    }

    #[test]
    fn slower_clock_increases_latency() {
        let fast = Accelerator::new(TinyVbfConfig::paper(), QuantScheme::float());
        let slow = Accelerator::new(TinyVbfConfig::paper(), QuantScheme::float()).with_clock_hz(50.0e6);
        assert!(slow.frame_report(368, 128).latency_seconds > fast.frame_report(368, 128).latency_seconds);
    }

    #[test]
    fn all_schemes_report_covers_table_vi_rows() {
        let reports = Accelerator::all_schemes_report(TinyVbfConfig::paper(), 368, 128);
        assert_eq!(reports.len(), 6);
        // Latency is identical across schemes (same schedule), resources differ.
        let latency: Vec<f64> = reports.iter().map(|r| r.latency_seconds).collect();
        assert!(latency.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        let float = &reports[0];
        let hybrid2 = &reports[5];
        assert!(hybrid2.resources.lut < float.resources.lut);
    }

    #[test]
    fn analytical_resource_model_can_be_selected() {
        let accel = Accelerator::new(TinyVbfConfig::paper(), QuantScheme::w20())
            .with_resource_model(ResourceModel::analytical());
        let report = accel.frame_report(100, 64);
        assert!(report.resources.lut > 0.0);
    }

    #[test]
    #[should_panic(expected = "clock frequency must be positive")]
    fn zero_clock_panics() {
        let _ = Accelerator::new(TinyVbfConfig::paper(), QuantScheme::float()).with_clock_hz(0.0);
    }
}
