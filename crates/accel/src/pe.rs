//! Processing-element and non-linear-unit latency models.
//!
//! A processing element multiplies 16 operand pairs in parallel and reduces them through
//! a binary adder tree (Fig. 8(b)): one cycle for the multipliers plus `log2(16) = 4`
//! pipeline stages for the tree. Dot products longer than 16 are folded across multiple
//! passes with an accumulate cycle per pass.

use crate::MACS_PER_PE;

/// Latency model of one processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessingElement {
    /// Number of parallel multipliers (16 in the paper).
    pub lanes: usize,
    /// Adder-tree depth in pipeline stages.
    pub adder_tree_depth: usize,
}

impl ProcessingElement {
    /// The paper's PE: 16 multiplier lanes, 4-level adder tree.
    pub fn paper() -> Self {
        Self { lanes: MACS_PER_PE, adder_tree_depth: (MACS_PER_PE as f64).log2() as usize }
    }

    /// Cycles to compute one dot product of `length` elements (including accumulation
    /// of partial passes). A zero-length dot product costs nothing.
    pub fn dot_product_cycles(&self, length: usize) -> u64 {
        if length == 0 {
            return 0;
        }
        let passes = length.div_ceil(self.lanes) as u64;
        // Each pass: 1 multiply cycle + adder tree latency; subsequent passes accumulate
        // into the running sum (1 extra cycle each).
        passes * (1 + self.adder_tree_depth as u64) + passes.saturating_sub(1)
    }

    /// Throughput-optimal cycles for `count` independent dot products of `length`
    /// elements executed back to back on this PE (pipelined across passes).
    pub fn batched_dot_product_cycles(&self, count: usize, length: usize) -> u64 {
        if count == 0 || length == 0 {
            return 0;
        }
        let passes = length.div_ceil(self.lanes) as u64;
        // Pipelined: one pass issues per cycle once the pipeline is full.
        passes * count as u64 + self.adder_tree_depth as u64
    }
}

impl Default for ProcessingElement {
    fn default() -> Self {
        Self::paper()
    }
}

/// Latency (cycles) of the non-linear units used by the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonLinearUnit {
    /// Cycles per ReLU element.
    pub relu: u64,
    /// Cycles per exponential evaluation inside the softmax.
    pub exp: u64,
    /// Cycles per division.
    pub div: u64,
    /// Cycles per square root (used by layer normalisation).
    pub sqrt: u64,
}

impl NonLinearUnit {
    /// Latencies representative of pipelined fixed-point implementations on the ZCU104.
    pub fn paper() -> Self {
        Self { relu: 1, exp: 4, div: 8, sqrt: 8 }
    }

    /// Cycles for a row-wise softmax over `tokens` entries on a pipelined unit using the
    /// online (single-pass) formulation: the exponential and division stages each accept
    /// one element per cycle and are chained, so the cost is the element count plus the
    /// pipeline fill latency of both stages.
    pub fn softmax_cycles(&self, tokens: usize) -> u64 {
        if tokens == 0 {
            return 0;
        }
        tokens as u64 + self.exp + self.div
    }

    /// Cycles for a layer-norm over `features` entries: mean, variance, one sqrt and a
    /// normalisation multiply-add per entry.
    pub fn layernorm_cycles(&self, features: usize) -> u64 {
        let n = features as u64;
        2 * n + self.sqrt + 2 * n
    }
}

impl Default for NonLinearUnit {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pe_dimensions() {
        let pe = ProcessingElement::paper();
        assert_eq!(pe.lanes, 16);
        assert_eq!(pe.adder_tree_depth, 4);
        assert_eq!(pe, ProcessingElement::default());
    }

    #[test]
    fn dot_product_cycles_scale_with_length() {
        let pe = ProcessingElement::paper();
        assert_eq!(pe.dot_product_cycles(0), 0);
        let short = pe.dot_product_cycles(16);
        let long = pe.dot_product_cycles(128);
        assert_eq!(short, 5);
        assert!(long > short);
        // 128 elements = 8 passes: 8*5 + 7 = 47 cycles.
        assert_eq!(long, 47);
    }

    #[test]
    fn batched_execution_amortises_the_tree_latency() {
        let pe = ProcessingElement::paper();
        let sequential: u64 = (0..10).map(|_| pe.dot_product_cycles(16)).sum();
        let batched = pe.batched_dot_product_cycles(10, 16);
        assert!(batched < sequential, "batched {batched} sequential {sequential}");
        assert_eq!(pe.batched_dot_product_cycles(0, 16), 0);
    }

    #[test]
    fn nonlinear_unit_costs() {
        let nl = NonLinearUnit::paper();
        assert!(nl.softmax_cycles(128) > nl.softmax_cycles(16));
        assert!(nl.layernorm_cycles(8) > 0);
        assert_eq!(nl.softmax_cycles(0), 0);
    }
}
