//! On-chip BRAM capacity accounting.
//!
//! The accelerator stores the current row's ToF-corrected input, all network weights and
//! the intermediate activations in block RAM (Fig. 5). The ZCU104's BRAM blocks hold
//! 36 kbit each; the number of blocks a given configuration needs depends on the data
//! word lengths selected by the quantization scheme, which is why Table VI's BRAM column
//! drops from 161.5 blocks (float) to 110 (Hybrid-2).

use quantize::QuantScheme;
use tiny_vbf::config::TinyVbfConfig;

/// Capacity of one BRAM block in bits (36 kbit on UltraScale+ devices).
pub const BRAM_BLOCK_BITS: u64 = 36 * 1024;

/// Storage requirement breakdown for one accelerator configuration, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Bits needed for the network weights.
    pub weight_bits: u64,
    /// Bits needed for one row of ToF-corrected input samples.
    pub input_bits: u64,
    /// Bits needed for intermediate activations (double-buffered token matrices).
    pub intermediate_bits: u64,
}

impl MemoryBudget {
    /// Computes the storage needed by a Tiny-VBF configuration under a quantization
    /// scheme.
    pub fn for_model(config: &TinyVbfConfig, scheme: &QuantScheme) -> Self {
        let weight_count = tiny_vbf_weight_count(config) as u64;
        let weight_bits = weight_count * scheme.weight_bits() as u64;
        let input_bits = (config.tokens * config.channels) as u64 * scheme.datapath_bits() as u64;
        // Two ping-pong buffers of (tokens x model_dim) plus one (tokens x tokens)
        // attention-score buffer at the softmax width.
        let intermediate_bits = 2 * (config.tokens * config.model_dim) as u64 * scheme.datapath_bits() as u64
            + (config.tokens * config.tokens) as u64 * scheme.softmax_bits() as u64;
        Self { weight_bits, input_bits, intermediate_bits }
    }

    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.weight_bits + self.input_bits + self.intermediate_bits
    }

    /// Equivalent number of 36 kbit BRAM blocks (fractional, as Vivado reports).
    pub fn bram_blocks(&self) -> f64 {
        self.total_bits() as f64 / BRAM_BLOCK_BITS as f64
    }
}

/// Number of trainable scalar weights of a Tiny-VBF configuration (matches
/// `TinyVbf::num_weights` without instantiating the model).
pub fn tiny_vbf_weight_count(config: &TinyVbfConfig) -> usize {
    let d = config.model_dim;
    let mut count = config.channels * d + d; // encoder
    if config.positional_embedding {
        count += config.tokens * d;
    }
    for _ in 0..config.num_blocks {
        count += 2 * d; // norm1
        count += 4 * d * d; // attention projections
        count += 2 * d; // norm2
        count += d * config.mlp_dim + config.mlp_dim; // mlp in
        count += config.mlp_dim * d + d; // mlp out
    }
    count += d * config.decoder_dim + config.decoder_dim;
    count += config.decoder_dim * 2 + 2;
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiny_vbf::model::TinyVbf;

    #[test]
    fn weight_count_matches_the_real_model() {
        for config in [TinyVbfConfig::tiny_test(), TinyVbfConfig::small(), TinyVbfConfig::paper()] {
            let model = TinyVbf::new(&config).unwrap();
            assert_eq!(tiny_vbf_weight_count(&config), model.num_weights(), "{config:?}");
        }
    }

    #[test]
    fn quantization_shrinks_the_memory_budget() {
        let config = TinyVbfConfig::paper();
        let float = MemoryBudget::for_model(&config, &QuantScheme::float());
        let hybrid2 = MemoryBudget::for_model(&config, &QuantScheme::hybrid2());
        assert!(hybrid2.total_bits() < float.total_bits());
        assert!(hybrid2.weight_bits * 3 < float.weight_bits, "8-bit weights should be 4x smaller than float");
        assert!(hybrid2.bram_blocks() < float.bram_blocks());
    }

    #[test]
    fn bram_blocks_are_positive_and_reasonable() {
        let config = TinyVbfConfig::paper();
        for scheme in QuantScheme::all() {
            let budget = MemoryBudget::for_model(&config, &scheme);
            let blocks = budget.bram_blocks();
            assert!(blocks > 0.5 && blocks < 400.0, "{}: {blocks}", scheme.name);
        }
    }
}
