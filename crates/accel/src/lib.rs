//! Cycle-approximate model of the Tiny-VBF FPGA accelerator.
//!
//! The paper deploys Tiny-VBF on a Zynq UltraScale+ ZCU104 at 100 MHz with an
//! accelerator built from four processing elements (each 16 multipliers feeding an
//! adder tree), on-chip BRAM for inputs/weights/intermediates and dedicated non-linear
//! units (ReLU, softmax, division, square root). A bitstream cannot be synthesized in
//! this environment, so this crate models the accelerator analytically:
//!
//! * [`pe`] — processing-element and non-linear-unit latency models,
//! * [`memory`] — BRAM capacity/bandwidth accounting,
//! * [`scheduler`] — mapping of the Q/K/V projections, attention scores, attention
//!   output and dense layers onto the 4 PEs (Figs. 5–8) with cycle counts,
//! * [`accelerator`] — whole-network latency at 100 MHz for a frame,
//! * [`resources`] — LUT / FF / BRAM / DSP / LUTRAM / power estimates per quantization
//!   scheme, calibrated against Table VI.
//!
//! # Example
//!
//! ```
//! use accel::accelerator::Accelerator;
//! use quantize::QuantScheme;
//! use tiny_vbf::config::TinyVbfConfig;
//!
//! let accel = Accelerator::new(TinyVbfConfig::paper(), QuantScheme::hybrid2());
//! let report = accel.frame_report(368, 128);
//! assert!(report.latency_seconds > 0.0);
//! ```

#![deny(missing_docs)]

pub mod accelerator;
pub mod memory;
pub mod pe;
pub mod resources;
pub mod scheduler;

pub use accelerator::{Accelerator, FrameReport};
pub use resources::{ResourceEstimate, ResourceModel};

/// Clock frequency of the paper's implementation (Hz).
pub const CLOCK_HZ: f64 = 100.0e6;
/// Number of processing elements in the accelerator.
pub const NUM_PES: usize = 4;
/// Number of parallel multipliers inside one processing element.
pub const MACS_PER_PE: usize = 16;
