//! FPGA resource and power estimation (Table VI and Fig. 1(b)).
//!
//! Two levels are provided:
//!
//! * [`ResourceModel::paper_calibrated`] returns the paper's measured ZCU104 utilization
//!   for the six evaluated schemes verbatim (these are the reference numbers the
//!   benchmark prints next to the model's estimates), and
//! * [`ResourceModel::analytical`] estimates utilization for *any* scheme from its bit
//!   widths with a simple per-component model (datapath LUTs/FFs grow with the MAC
//!   width, weight storage with the weight width, DSP usage depends on whether a
//!   multiplier fits the 27×18 DSP48 slice, BRAM follows the memory budget).

use crate::memory::MemoryBudget;
use crate::{MACS_PER_PE, NUM_PES};
use quantize::QuantScheme;
use serde::{Deserialize, Serialize};
use tiny_vbf::config::TinyVbfConfig;

/// One row of Table VI: resource utilization of the accelerator under one scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Scheme name.
    pub scheme: String,
    /// Look-up tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// 36 kbit BRAM blocks.
    pub bram: f64,
    /// DSP48 slices.
    pub dsp: f64,
    /// LUTs used as distributed RAM.
    pub lutram: f64,
    /// Estimated total power in watts.
    pub power_w: f64,
}

impl ResourceEstimate {
    /// A scalar "total resource" figure used for the ≈50 % saving claim: the mean of
    /// LUT/FF/BRAM/DSP/LUTRAM utilization relative to a reference estimate.
    pub fn relative_utilization(&self, reference: &ResourceEstimate) -> f64 {
        let ratios = [
            self.lut / reference.lut,
            self.ff / reference.ff,
            self.bram / reference.bram,
            self.dsp / reference.dsp,
            self.lutram / reference.lutram,
        ];
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

/// How to produce resource estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceModel {
    /// Return the paper's measured Table VI numbers for the six known schemes and fall
    /// back to the analytical model otherwise.
    PaperCalibrated,
    /// Always use the analytical model.
    Analytical,
}

impl ResourceModel {
    /// The calibrated model.
    pub fn paper_calibrated() -> Self {
        ResourceModel::PaperCalibrated
    }

    /// The analytical model.
    pub fn analytical() -> Self {
        ResourceModel::Analytical
    }

    /// Estimates the utilization of the accelerator for a model configuration and
    /// quantization scheme.
    pub fn estimate(&self, config: &TinyVbfConfig, scheme: &QuantScheme) -> ResourceEstimate {
        match self {
            ResourceModel::PaperCalibrated => {
                paper_table_vi(scheme).unwrap_or_else(|| analytical_estimate(config, scheme))
            }
            ResourceModel::Analytical => analytical_estimate(config, scheme),
        }
    }

    /// Estimates every scheme of the paper, in Table VI order.
    pub fn table(&self, config: &TinyVbfConfig) -> Vec<ResourceEstimate> {
        QuantScheme::all().iter().map(|s| self.estimate(config, s)).collect()
    }
}

/// The paper's measured ZCU104 utilization (Table VI) for the six evaluated schemes.
pub fn paper_table_vi(scheme: &QuantScheme) -> Option<ResourceEstimate> {
    let (lut, ff, bram, dsp, lutram, power) = match scheme.name {
        "Float" => (124_935.0, 91_470.0, 161.5, 533.0, 17_589.0, 4.489),
        "24 bits" => (88_457.0, 50_454.0, 158.0, 279.0, 11_556.0, 4.369),
        "20 bits" => (84_594.0, 43_333.0, 156.0, 148.0, 9_442.0, 4.174),
        "16 bits" => (59_840.0, 34_920.0, 82.0, 274.0, 6_795.0, 3.989),
        "Hybrid-1" => (72_415.0, 38_287.0, 150.0, 146.0, 5_352.0, 4.229),
        "Hybrid-2" => (61_951.0, 29_105.0, 110.0, 274.0, 5_324.0, 4.174),
        _ => return None,
    };
    Some(ResourceEstimate { scheme: scheme.name.to_string(), lut, ff, bram, dsp, lutram, power_w: power })
}

/// Analytical utilization model driven by the scheme's bit widths.
pub fn analytical_estimate(config: &TinyVbfConfig, scheme: &QuantScheme) -> ResourceEstimate {
    let lanes = (NUM_PES * MACS_PER_PE) as f64;
    let datapath = scheme.datapath_bits() as f64;
    let weight = scheme.weight_bits() as f64;
    let softmax = scheme.softmax_bits() as f64;
    let is_float = scheme.is_float();

    // Datapath: each multiplier/adder lane costs LUTs/FFs proportional to its width;
    // floating point needs roughly twice the logic of same-width fixed point.
    let float_factor = if is_float { 2.1 } else { 1.0 };
    let lut_per_lane = 28.0 * datapath * float_factor;
    let ff_per_lane = 18.0 * datapath * float_factor;
    // Control, AXI interfaces and the non-linear units.
    let control_lut = 12_000.0 + 250.0 * softmax;
    let control_ff = 8_000.0 + 180.0 * softmax;
    // Weight handling (decode/align) scales with the weight width.
    let weight_lut = 900.0 * weight;
    let weight_ff = 600.0 * weight;

    let lut = lanes * lut_per_lane + control_lut + weight_lut;
    let ff = lanes * ff_per_lane + control_ff + weight_ff;

    // A DSP48E2 multiplies up to 27×18; wider products need 4 slices (or are split into
    // LUT logic when exactly at 20 bits as the paper's tool flow chose to do).
    let dsp_per_lane = if is_float {
        8.0
    } else if datapath <= 18.0 {
        4.0
    } else if datapath <= 20.0 {
        2.2
    } else {
        4.2
    };
    let dsp = lanes * dsp_per_lane + 21.0;

    let bram = MemoryBudget::for_model(config, scheme).bram_blocks().max(8.0);
    let lutram = 1_500.0 + 45.0 * datapath * if is_float { 2.0 } else { 1.0 } + 40.0 * weight;
    // Power: static ~3.2 W plus dynamic roughly proportional to switched logic width.
    let power_w = 3.2 + 0.0085 * datapath * if is_float { 1.5 } else { 1.0 } + 0.003 * softmax + 0.15;

    ResourceEstimate { scheme: scheme.name.to_string(), lut, ff, bram, dsp, lutram, power_w }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_model_reproduces_table_vi_exactly() {
        let model = ResourceModel::paper_calibrated();
        let config = TinyVbfConfig::paper();
        let float = model.estimate(&config, &QuantScheme::float());
        assert_eq!(float.lut, 124_935.0);
        assert_eq!(float.dsp, 533.0);
        let h2 = model.estimate(&config, &QuantScheme::hybrid2());
        assert_eq!(h2.ff, 29_105.0);
        assert_eq!(h2.bram, 110.0);
        assert_eq!(model.table(&config).len(), 6);
    }

    #[test]
    fn hybrid2_saves_about_half_the_resources_of_float() {
        let config = TinyVbfConfig::paper();
        let model = ResourceModel::paper_calibrated();
        let float = model.estimate(&config, &QuantScheme::float());
        let h2 = model.estimate(&config, &QuantScheme::hybrid2());
        let relative = h2.relative_utilization(&float);
        assert!(relative < 0.6, "relative utilization {relative}");
        assert!(relative > 0.3, "relative utilization {relative}");
    }

    #[test]
    fn analytical_model_follows_the_papers_ordering() {
        let config = TinyVbfConfig::paper();
        let est = |s: QuantScheme| analytical_estimate(&config, &s);
        let float = est(QuantScheme::float());
        let w24 = est(QuantScheme::w24());
        let w16 = est(QuantScheme::w16());
        let h1 = est(QuantScheme::hybrid1());
        let h2 = est(QuantScheme::hybrid2());
        // Float is the most expensive in LUT, FF, DSP and power.
        assert!(float.lut > w24.lut && w24.lut > w16.lut);
        assert!(float.ff > w24.ff && w24.ff > w16.ff);
        assert!(float.power_w > w16.power_w);
        // Hybrids cost less than float and less LUT than uniform 24-bit.
        assert!(h1.lut < float.lut && h2.lut < float.lut);
        assert!(h2.lut <= h1.lut + 1.0);
        // Hybrid-2 uses narrower datapaths than Hybrid-1 so its memory is smaller too.
        assert!(h2.bram <= h1.bram);
    }

    #[test]
    fn analytical_model_is_within_a_factor_of_the_measurements() {
        // The analytical model is not expected to match Vivado exactly, but it should
        // land within ~2.5x of every Table VI entry for LUT/FF and power.
        let config = TinyVbfConfig::paper();
        for scheme in QuantScheme::all() {
            let measured = paper_table_vi(&scheme).unwrap();
            let estimated = analytical_estimate(&config, &scheme);
            for (m, e, label) in [
                (measured.lut, estimated.lut, "lut"),
                (measured.ff, estimated.ff, "ff"),
                (measured.power_w, estimated.power_w, "power"),
            ] {
                let ratio = (e / m).max(m / e);
                assert!(ratio < 2.5, "{} {label}: measured {m} estimated {e}", scheme.name);
            }
        }
    }

    #[test]
    fn unknown_scheme_falls_back_to_analytical() {
        let config = TinyVbfConfig::paper();
        let custom = QuantScheme { name: "custom-12", ..QuantScheme::w16() };
        let model = ResourceModel::paper_calibrated();
        let estimate = model.estimate(&config, &custom);
        assert_eq!(estimate.scheme, "custom-12");
        assert!(estimate.lut > 0.0);
    }
}
