//! Scheduling of the Tiny-VBF operations onto the four processing elements.
//!
//! The accelerator computes every matrix product as a set of independent dot products
//! (one per output element) distributed round-robin over the 4 PEs (Figs. 6–8): the
//! Q/K/V projections, the attention scores `Q·Kᵀ`, the attention output `A·V`, the
//! output projection and every dense layer all reduce to this primitive. Non-linear
//! steps (softmax, LayerNorm, ReLU, tanh) run on the dedicated units while the PEs
//! stream the next tile.

use crate::pe::{NonLinearUnit, ProcessingElement};
use crate::NUM_PES;
use quantize::QuantScheme;
use tiny_vbf::config::TinyVbfConfig;

/// Cycle cost of one operation group, as scheduled on the accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpCycles {
    /// Human-readable operation label.
    pub name: String,
    /// Cycles spent on the PEs.
    pub pe_cycles: u64,
    /// Cycles spent on the non-linear units (not overlapped, conservatively).
    pub nonlinear_cycles: u64,
}

impl OpCycles {
    /// Total cycles for this group.
    pub fn total(&self) -> u64 {
        self.pe_cycles + self.nonlinear_cycles
    }
}

/// The accelerator's operation scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    pe: ProcessingElement,
    nonlinear: NonLinearUnit,
    num_pes: usize,
}

impl Scheduler {
    /// The paper's configuration: 4 PEs × 16 MACs plus the non-linear units.
    pub fn paper() -> Self {
        Self { pe: ProcessingElement::paper(), nonlinear: NonLinearUnit::paper(), num_pes: NUM_PES }
    }

    /// Creates a scheduler with a custom PE count (used for the design-space ablation).
    pub fn with_pes(num_pes: usize) -> Self {
        Self { num_pes: num_pes.max(1), ..Self::paper() }
    }

    /// Number of PEs being scheduled.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Cycles for a matrix product producing `out_rows × out_cols` dot products of
    /// length `inner`, distributed across the PEs.
    pub fn matmul_cycles(&self, out_rows: usize, out_cols: usize, inner: usize) -> u64 {
        let outputs = out_rows * out_cols;
        if outputs == 0 || inner == 0 {
            return 0;
        }
        let per_pe = outputs.div_ceil(self.num_pes);
        self.pe.batched_dot_product_cycles(per_pe, inner)
    }

    /// Non-linear work is spread over one non-linear unit per PE (Fig. 5 places the
    /// ReLU/softmax/div/sqrt units alongside the PEs), so the serial cycle count is
    /// divided by the PE count.
    fn nonlinear_parallel(&self, cycles: u64) -> u64 {
        cycles.div_ceil(self.num_pes as u64)
    }

    /// Schedule of one full Tiny-VBF depth row under the given quantization scheme.
    ///
    /// The word length only affects whether a multiplier fits in one DSP slice (the
    /// resource model's concern); cycle counts are width-independent in this
    /// architecture, matching the paper (latency is the same across schemes).
    pub fn row_schedule(&self, config: &TinyVbfConfig, _scheme: &QuantScheme) -> Vec<OpCycles> {
        let tokens = config.tokens;
        let d = config.model_dim;
        let heads = config.num_heads;
        let head_dim = d / heads.max(1);
        let mut ops = Vec::new();

        ops.push(OpCycles {
            name: "encoder projection".into(),
            pe_cycles: self.matmul_cycles(tokens, d, config.channels),
            nonlinear_cycles: 0,
        });

        for block in 0..config.num_blocks {
            ops.push(OpCycles {
                name: format!("block {block}: layer norm 1"),
                pe_cycles: 0,
                nonlinear_cycles: self.nonlinear_parallel(tokens as u64 * self.nonlinear.layernorm_cycles(d)),
            });
            ops.push(OpCycles {
                name: format!("block {block}: Q/K/V projections"),
                pe_cycles: 3 * self.matmul_cycles(tokens, d, d),
                nonlinear_cycles: 0,
            });
            ops.push(OpCycles {
                name: format!("block {block}: attention scores"),
                pe_cycles: heads as u64 * self.matmul_cycles(tokens, tokens, head_dim),
                nonlinear_cycles: 0,
            });
            ops.push(OpCycles {
                name: format!("block {block}: softmax"),
                pe_cycles: 0,
                nonlinear_cycles: self.nonlinear_parallel((tokens * heads) as u64 * self.nonlinear.softmax_cycles(tokens)),
            });
            ops.push(OpCycles {
                name: format!("block {block}: attention output"),
                pe_cycles: heads as u64 * self.matmul_cycles(tokens, head_dim, tokens)
                    + self.matmul_cycles(tokens, d, d),
                nonlinear_cycles: 0,
            });
            ops.push(OpCycles {
                name: format!("block {block}: layer norm 2 + MLP"),
                pe_cycles: self.matmul_cycles(tokens, config.mlp_dim, d) + self.matmul_cycles(tokens, d, config.mlp_dim),
                nonlinear_cycles: self.nonlinear_parallel(
                    tokens as u64 * self.nonlinear.layernorm_cycles(d)
                        + (tokens * config.mlp_dim) as u64 * self.nonlinear.relu,
                ),
            });
        }

        ops.push(OpCycles {
            name: "decoder".into(),
            pe_cycles: self.matmul_cycles(tokens, config.decoder_dim, d) + self.matmul_cycles(tokens, 2, config.decoder_dim),
            nonlinear_cycles: self.nonlinear_parallel(
                (tokens * config.decoder_dim) as u64 * self.nonlinear.relu + (tokens * 2) as u64 * self.nonlinear.div,
            ),
        });
        ops
    }

    /// Total cycles for one depth row.
    pub fn row_cycles(&self, config: &TinyVbfConfig, scheme: &QuantScheme) -> u64 {
        self.row_schedule(config, scheme).iter().map(OpCycles::total).sum()
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_cycles_scale_with_work_and_pes() {
        let four = Scheduler::paper();
        let one = Scheduler::with_pes(1);
        let small = four.matmul_cycles(16, 8, 32);
        let big = four.matmul_cycles(128, 8, 128);
        assert!(big > small);
        assert!(one.matmul_cycles(128, 8, 128) > four.matmul_cycles(128, 8, 128));
        assert_eq!(four.matmul_cycles(0, 8, 8), 0);
        assert_eq!(four.num_pes(), 4);
        assert_eq!(Scheduler::with_pes(0).num_pes(), 1);
    }

    #[test]
    fn row_schedule_covers_all_stages() {
        let scheduler = Scheduler::paper();
        let config = TinyVbfConfig::paper();
        let schedule = scheduler.row_schedule(&config, &QuantScheme::hybrid2());
        // encoder + 6 groups per block * 2 blocks + decoder
        assert_eq!(schedule.len(), 1 + 6 * config.num_blocks + 1);
        assert!(schedule.iter().all(|op| op.total() > 0));
        let names: Vec<&str> = schedule.iter().map(|op| op.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains("softmax")));
        assert!(names.iter().any(|n| n.contains("Q/K/V")));
    }

    #[test]
    fn cycle_count_is_scheme_independent_but_config_dependent() {
        let scheduler = Scheduler::paper();
        let config = TinyVbfConfig::paper();
        let a = scheduler.row_cycles(&config, &QuantScheme::float());
        let b = scheduler.row_cycles(&config, &QuantScheme::hybrid2());
        assert_eq!(a, b);
        let smaller = scheduler.row_cycles(&TinyVbfConfig::small(), &QuantScheme::float());
        assert!(smaller < a);
    }

    #[test]
    fn more_pes_reduce_row_latency() {
        let config = TinyVbfConfig::paper();
        let scheme = QuantScheme::hybrid1();
        let pe2 = Scheduler::with_pes(2).row_cycles(&config, &scheme);
        let pe4 = Scheduler::with_pes(4).row_cycles(&config, &scheme);
        let pe8 = Scheduler::with_pes(8).row_cycles(&config, &scheme);
        assert!(pe4 < pe2);
        assert!(pe8 < pe4);
    }
}
